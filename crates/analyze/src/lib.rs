//! # diffcon-analyze — static analysis for differential-constraint programs
//!
//! The serving engine treats a session's premise family and known values as
//! ground truth and pays for them on every query: each premise is another
//! lattice to cover in implication checks, another row killer in the bound
//! engine's density system, another planner dispatch.  Nothing, however,
//! ever analyzes the *program* itself — a session can accumulate premises
//! that are implied by the rest of the family, knowns that contradict each
//! other under the asserted constraints (discovered only when a `bound`
//! query finally returns infeasible), and protocol scripts that fail at
//! request N after N−1 requests already mutated state.
//!
//! This crate closes that gap with two analyzers, both pure functions with
//! no engine dependency:
//!
//! * [`premise`] — per-snapshot analysis of a premise family and its knowns:
//!   redundancy detection with implying witnesses, pre-query infeasibility
//!   detection with a minimal conflicting known set, dead-density-variable
//!   detection, and [`premise::minimal_core`], the redundancy-reduced family
//!   with a machine-checkable certificate ([`premise::check_certificate`]).
//!   Answering from the reduced core is *provably* answer-preserving — the
//!   module docs carry the argument — which is what lets a serving layer
//!   swap the core in for the raw family.
//! * [`script`] — a flow-sensitive linter for `diffcond` protocol scripts:
//!   it simulates session-registry state line by line *without executing
//!   anything* and reports use-before-load, never-set forgets, closed-slot
//!   switches, duplicate and redundant asserts, wedge-threshold mining, and
//!   dead lines after `quit` as `line:col: warn|error:` diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod premise;
pub mod script;

pub use premise::{
    analyze, check_certificate, minimal_core, Analysis, Dropped, MinimalCore, Redundancy,
};
pub use script::{Diagnostic, Linter, ScriptOp, Severity, Span};
