//! # diffcon-engine — a cached, parallel, batch implication-serving engine
//!
//! The `diffcon` crate answers one implication query at a time, from scratch:
//! every call to `implication::implies` re-enumerates lattice decompositions,
//! and every SAT-backed call re-translates every premise.  This crate is the
//! serving layer that amortizes that work across query traffic:
//!
//! * **Sessions** ([`session::Session`]) hold a universe and a premise set
//!   with incremental assert/retract.  Each mutation maintains, in `O(|C|)`,
//!   the premise set's propositional translations, its FD-fragment index,
//!   and an order-independent 64-bit digest that versions cached answers —
//!   so retracting a premise invalidates stale answers instantly and
//!   re-asserting it revalidates them.
//! * **Snapshot isolation** ([`snapshot::Snapshot`]) — every mutation
//!   publishes an immutable `Arc<Snapshot>` of the session state (premises,
//!   translations, FD index, knowns, dataset handle, digests) under a
//!   bumped epoch.  All query methods — `implies`, `implies_batch`,
//!   `bound`, `witness`, `derive` — decide against a snapshot through
//!   `&self`: any number of threads query concurrently, writers never wait
//!   for readers, and in-flight readers keep the exact state they captured.
//! * **Memoization** ([`cache::ShardedCache`]) — sharded concurrent LRU
//!   caches (`N` shards of `Mutex<LruCache>`), shared across all snapshots
//!   of a session, for full query answers, goal lattice decompositions
//!   `L(X, 𝒴)`, propositional translations, and bound intervals.  Every
//!   key is digest-versioned through one helper
//!   ([`cache::version_salt`] / [`cache::VersionedKey`]), so mutation
//!   invalidates instantly and state restoration revalidates instantly.
//! * **Batch evaluation** ([`batch`], [`session::Session::implies_batch`]) —
//!   many goals against one snapshot, fanned out across the rayon pool;
//!   workers are pure and the parallel section takes no locks.
//! * **Multi-session serving** ([`server_state::SessionRegistry`],
//!   [`server_state::Pipeline`]) — the `diffcond` server manages numbered
//!   session slots (`session new/use/close/list` verbs) and, with
//!   `--threads N`, scans requests serially while evaluating the read-only
//!   query verbs concurrently on a rayon pool against the snapshots
//!   captured at their request positions — interleaved traffic from many
//!   sessions executes in parallel with serial-equivalent answers.
//! * **Network serving** ([`net::NetServer`], [`client::Client`]) —
//!   `diffcond serve --addr HOST:PORT` exposes the same protocol over TCP
//!   through a readiness-driven reactor core: `--reactors N` event-loop
//!   threads own nonblocking connections through a vendored epoll shim,
//!   drain readiness bursts into per-connection frame buffers, feed
//!   complete frames straight into [`server_state::Pipeline`] wave
//!   evaluation, and flush replies through coalescing vectored writes with
//!   write-readiness backpressure.  Framing is negotiated per connection:
//!   newline text, or (`--binary`) the length-prefixed binary frames of
//!   [`protocol::binary`] with fixed-width mask encodings for the hot
//!   verbs.  Per-connection session namespaces, per-request admission
//!   limits, error replies (never panics or dropped loops) for malformed
//!   frames, a connection cap, and a blocking typed client (text or
//!   binary) for programs, tests, and load generators.
//! * **Observability** ([`metrics::EngineMetrics`]) — a process-wide
//!   lock-free registry of counters and stage-latency histograms with a
//!   Prometheus text exposition, plus a request-scoped flight recorder
//!   ([`metrics::FlightRecord`]): every completed query writes its trace
//!   id, connection/slot, verb, route, cache outcome, byte counts, and
//!   per-stage latency into a fixed-capacity overwrite-oldest ring, dumped
//!   live by the `debug recent` / `debug trace` verbs; per-session and
//!   per-connection cost attribution ([`metrics::SessionCosts`],
//!   [`metrics::ConnCosts`]) feeds `session list`, `stats`, and labeled
//!   exposition series; `stats recent` reports windowed live rates.
//! * **An adaptive planner** ([`planner::Planner`]) that routes each query
//!   to the cheapest sound procedure — trivial goals inline, the polynomial
//!   FD fast path when the instance lies in the single-member fragment, the
//!   Theorem 3.5 lattice check while its `2^{|S|−|X|}` enumeration bound
//!   fits a budget, and the Section 5 SAT translation past it — recording
//!   per-procedure query counts, cache hits, and latency.
//! * **Bound queries** ([`session::Session::bound`]) — a second query class
//!   served by the `diffcon-bounds` interval engine: sessions hold a sparse
//!   map of known point values `f(X) = v`
//!   ([`session::Session::set_known`] /
//!   [`session::Session::forget_known`], versioned by a
//!   knowns digest exactly like the premise digest versions implication
//!   answers), and `bound` derives the tightest provable interval for
//!   `f(Y)` under the asserted constraints, routed cached-exact →
//!   propagation → budget-relaxed.
//! * **Constraint discovery** ([`session::Session::load_records`] /
//!   [`session::Session::mine_dataset`] /
//!   [`session::Session::adopt_discovered`]) — the `diffcon-discover` data
//!   plane wired into sessions: ingest basket records into a vertically
//!   indexed dataset, mine the minimal disjunctive constraints the data
//!   satisfies (Proposition 6.3 identifies them with differential
//!   constraints), and adopt the non-redundant cover as premises so `bound`
//!   and `implies` immediately reason from what holds in the data.
//!
//! The [`protocol`] module defines the line-oriented request/response
//! protocol (grammar in its module docs) served by the `diffcond` binary:
//!
//! ```text
//! $ printf 'universe 4\nassert A -> {B}\nassert B -> {C}\nimplies A -> {C}\n' | diffcond
//! ok universe n=4 attrs=A,B,C,D
//! ok assert id=0 added=1 premises=1
//! ok assert id=1 added=1 premises=2
//! yes route=fd cached=0 us=…
//! ```
//!
//! ## Library quick start
//!
//! ```
//! use diffcon_engine::session::Session;
//! use diffcon::DiffConstraint;
//! use setlat::Universe;
//!
//! let u = Universe::of_size(4);
//! let mut session = Session::new(u.clone());
//! session.assert_constraint(&DiffConstraint::parse("A -> {B}", &u).unwrap());
//! session.assert_constraint(&DiffConstraint::parse("B -> {C}", &u).unwrap());
//!
//! let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
//! assert!(session.implies(&goal).implied);      // decided (FD fast path)
//! assert!(session.implies(&goal).cached);       // served from the answer cache
//!
//! let goals: Vec<DiffConstraint> = ["A -> {C}", "C -> {A}", "AB -> {B}"]
//!     .iter()
//!     .map(|t| DiffConstraint::parse(t, &u).unwrap())
//!     .collect();
//! let answers: Vec<bool> = session.implies_batch(&goals).iter().map(|o| o.implied).collect();
//! assert_eq!(answers, vec![true, false, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod intern;
pub mod metrics;
pub mod net;
pub mod planner;
pub mod protocol;
mod reactor;
pub mod server_state;
pub mod session;
pub mod snapshot;

pub use cache::{version_salt, CacheStats, LruCache, ShardOccupancy, ShardedCache, VersionedKey};
pub use client::{Client, ClientError};
pub use intern::{ConstraintId, ConstraintInterner};
pub use metrics::{
    http_routes, next_connection_id, CacheFamily, ConnCosts, EngineMetrics, FlightRecord,
    RecentStats, SessionCosts,
};
pub use net::{NetConfig, NetServer, ShutdownHandle};
pub use planner::{BoundStats, Planner, PlannerConfig, PlannerStats};
pub use protocol::{Reply, Request, Server, Step};
pub use server_state::{DeferredQuery, Pipeline, SessionRegistry};
pub use session::CoreApplied;
pub use session::{AdoptOutcome, BoundOutcome, QueryOutcome, Session, SessionConfig, SessionStats};
pub use snapshot::{AnalyzeOutcome, ExplainOutcome, Snapshot, SnapshotStats};
