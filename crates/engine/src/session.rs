//! Sessions: a universe plus an incrementally maintained premise set, with
//! memoization and batch evaluation layered over the one-shot procedures in
//! `diffcon`.
//!
//! A [`Session`] is the unit of engine state.  It owns:
//!
//! * the premise set, with `O(|C|)` incremental [`assert`](Session::assert_constraint)
//!   / [`retract`](Session::retract_constraint) that keep three derived
//!   structures in sync — the propositional translations (for the SAT
//!   procedure), the FD translation index (for the polynomial fragment fast
//!   path), and an order-independent 64-bit **premise digest** (XOR of
//!   constraint fingerprints) that versions every cached answer;
//! * a [`ConstraintInterner`] assigning dense ids to every constraint seen;
//! * three bounded LRU caches keyed on interned ids: full query answers
//!   (keyed additionally on the premise digest, so retracting a premise
//!   instantly invalidates — and re-asserting it instantly revalidates —
//!   prior answers), goal lattice decompositions, and propositional
//!   translations;
//! * a [`Planner`] that routes each query to the cheapest sound procedure
//!   and keeps per-procedure latency accounting.
//!
//! Queries come in two shapes: [`Session::implies`] for one goal,
//! and [`Session::implies_batch`], which plans every goal
//! serially (interning, cache lookups), fans the misses out across the rayon
//! pool through [`crate::batch`], then writes freshly derived data back into
//! the caches — so cache mutation stays on the serial side and workers share
//! nothing mutable.

use crate::batch::{self, DecisionContext, Job, JobResult};
use crate::cache::{CacheStats, LruCache};
use crate::intern::{ConstraintId, ConstraintInterner};
use crate::planner::{Planner, PlannerConfig, PlannerStats};
use diffcon::inference::{self, Derivation};
use diffcon::procedure::ProcedureKind;
use diffcon::{fd_fragment, implication, prop_bridge, DiffConstraint};
use diffcon_bounds::derive::{derive_propagated, derive_relaxed};
use diffcon_bounds::problem::{BoundsConfig, BoundsProblem, DeriveError, DeriveRoute};
use diffcon_bounds::{Interval, SideConditions};
use diffcon_discover::{miner, Dataset, Discovery, MinerConfig};
use fis::basket::BasketParseError;
use proplogic::implication::ImplicationConstraint;
use relational::fd::FunctionalDependency;
use setlat::{AttrSet, Universe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity and planner settings for a session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Bound on memoized query answers.
    pub answer_cache_capacity: usize,
    /// Bound on memoized goal lattice decompositions.
    pub lattice_cache_capacity: usize,
    /// Bound on memoized propositional translations.
    pub prop_cache_capacity: usize,
    /// Bound on memoized bound-query intervals.
    pub bound_cache_capacity: usize,
    /// Side conditions under which `bound` queries interpret the unknown set
    /// function (the default is the support-function interpretation —
    /// nonnegative density — matching the `known <set> = <support>` verbs of
    /// the wire protocol).
    pub bound_side: SideConditions,
    /// Derivation knobs for the bound engine (propagation rounds, pairwise
    /// pass); routing between the full path and the relaxation is governed
    /// by [`PlannerConfig::bound_budget`], not by
    /// [`BoundsConfig::budget_ops`].
    pub bounds: BoundsConfig,
    /// Distinct-constraint count past which the interner is compacted.
    ///
    /// The interner is append-only, so a long-lived session serving
    /// ever-distinct goals would otherwise grow without bound even though
    /// every cache is capped.  When the table exceeds this threshold it is
    /// rebuilt with only the current premises, and the id-keyed caches are
    /// cleared (their keys are stale once ids are reassigned).  This trades
    /// a rare full re-warm for a hard memory bound.
    ///
    /// The threshold is a floor, not an exact trigger: compaction only runs
    /// when it can actually shrink the table, so the engine always allows at
    /// least `2·|premises| + 16` entries.  Without that headroom a premise
    /// set at or above the threshold would trigger a cache-clearing
    /// compaction on every query.
    pub interner_compaction_threshold: usize,
    /// Procedure-routing configuration.
    pub planner: PlannerConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            answer_cache_capacity: 1 << 16,
            lattice_cache_capacity: 1 << 12,
            prop_cache_capacity: 1 << 12,
            bound_cache_capacity: 1 << 12,
            bound_side: SideConditions::support(),
            bounds: BoundsConfig::default(),
            interner_compaction_threshold: 1 << 18,
            planner: PlannerConfig::default(),
        }
    }
}

/// How one query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Whether the premises imply the goal.
    pub implied: bool,
    /// The procedure that produced the answer; `None` when the goal was
    /// trivial and answered inline.
    pub procedure: Option<ProcedureKind>,
    /// Whether the answer came from the answer cache.
    pub cached: bool,
    /// Wall-clock time spent deciding (≈ 0 for trivial goals and cache hits).
    pub elapsed: Duration,
}

impl QueryOutcome {
    /// Short name of the answering path for reports and the wire protocol.
    /// The planner emits `trivial`, `fd`, `lattice`, or `sat` (`semantic` is
    /// reachable only by driving [`crate::batch`] jobs directly; the planner
    /// never selects it because it is dominated by the lattice procedure).
    pub fn route_name(&self) -> &'static str {
        match self.procedure {
            None => "trivial",
            Some(kind) => kind.name(),
        }
    }
}

/// How one bound query was answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundOutcome {
    /// The sound interval containing `f(query)`.
    pub interval: Interval,
    /// The derivation route that produced (or originally produced, for
    /// cached answers) the interval.
    pub route: DeriveRoute,
    /// Whether the answer came from the bound cache.
    pub cached: bool,
    /// Wall-clock derivation time (≈ 0 for cache hits).
    pub elapsed: Duration,
}

impl BoundOutcome {
    /// Short name of the answering path for reports and the wire protocol:
    /// `cached`, `propagation`, or `relaxed`.
    pub fn route_name(&self) -> &'static str {
        if self.cached {
            "cached"
        } else {
            self.route.name()
        }
    }
}

/// A point-in-time view of a session's accumulated statistics.
#[derive(Debug, Clone, Copy)]
pub struct SessionStats {
    /// Per-procedure planner accounting.
    pub planner: PlannerStats,
    /// Answer-cache counters.
    pub answer_cache: CacheStats,
    /// Lattice-cache counters.
    pub lattice_cache: CacheStats,
    /// Translation-cache counters.
    pub prop_cache: CacheStats,
    /// Bound-cache counters.
    pub bound_cache: CacheStats,
    /// Current number of known point values.
    pub knowns: usize,
    /// Baskets in the loaded dataset (0 when none is loaded).
    pub dataset_baskets: usize,
    /// Current number of premises.
    pub premises: usize,
    /// Distinct constraints currently interned.
    pub interned: usize,
    /// Times the interner has been compacted (see
    /// [`SessionConfig::interner_compaction_threshold`]).
    pub interner_compactions: u64,
}

/// The outcome of adopting discovered constraints as premises.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptOutcome {
    /// The discovery that was adopted (minimal set, cover, miner stats).
    pub discovery: Discovery,
    /// How many cover constraints were newly asserted (the rest were
    /// already premises).
    pub newly_asserted: usize,
}

/// A stateful query-serving session over one universe.
#[derive(Debug)]
pub struct Session {
    universe: Universe,
    interner: ConstraintInterner,
    /// The premise set, deduplicated, in assertion order.
    premise_ids: Vec<ConstraintId>,
    premises: Vec<DiffConstraint>,
    /// Index-aligned propositional translations of `premises`.
    premise_props: Vec<ImplicationConstraint>,
    /// Index-aligned FD translations when *every* premise is single-member.
    fd_index: Option<Vec<FunctionalDependency>>,
    /// XOR of the premise fingerprints; versions the answer cache.
    premise_digest: u64,
    /// Known point values `f(X) = v`, sorted by set, for `bound` queries.
    knowns: Vec<(AttrSet, f64)>,
    /// XOR of the known-entry fingerprints; versions the bound cache
    /// together with the premise digest.
    knowns_digest: u64,
    bound_side: SideConditions,
    bounds_config: BoundsConfig,
    answer_cache: LruCache<(u64, ConstraintId), (bool, ProcedureKind)>,
    lattice_cache: LruCache<ConstraintId, Arc<[AttrSet]>>,
    prop_cache: LruCache<ConstraintId, Arc<ImplicationConstraint>>,
    /// Derived intervals, keyed by (premise digest, knowns digest, query):
    /// retracting a premise or forgetting a value instantly invalidates, and
    /// restoring the state instantly revalidates.
    bound_cache: LruCache<(u64, u64, AttrSet), (Interval, DeriveRoute)>,
    /// The loaded basket dataset, if any: the discovery subsystem's handle.
    /// Loading data touches no premise or known state, so no cache digest
    /// involves it; `adopt` flows back through
    /// [`Session::assert_constraint`], which versions everything as usual.
    dataset: Option<Dataset>,
    interner_compaction_threshold: usize,
    interner_compactions: u64,
    planner: Planner,
}

impl Session {
    /// Creates an empty session over `universe` with default configuration.
    pub fn new(universe: Universe) -> Self {
        Session::with_config(universe, SessionConfig::default())
    }

    /// Creates an empty session with explicit cache and planner settings.
    pub fn with_config(universe: Universe, config: SessionConfig) -> Self {
        Session {
            universe,
            interner: ConstraintInterner::new(),
            premise_ids: Vec::new(),
            premises: Vec::new(),
            premise_props: Vec::new(),
            fd_index: Some(Vec::new()),
            premise_digest: 0,
            knowns: Vec::new(),
            knowns_digest: 0,
            bound_side: config.bound_side,
            bounds_config: config.bounds,
            answer_cache: LruCache::new(config.answer_cache_capacity),
            lattice_cache: LruCache::new(config.lattice_cache_capacity),
            prop_cache: LruCache::new(config.prop_cache_capacity),
            bound_cache: LruCache::new(config.bound_cache_capacity),
            dataset: None,
            interner_compaction_threshold: config.interner_compaction_threshold.max(1),
            interner_compactions: 0,
            planner: Planner::new(config.planner),
        }
    }

    /// The session's universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The current premise set, in assertion order.
    pub fn premises(&self) -> &[DiffConstraint] {
        &self.premises
    }

    /// The premise ids aligned with [`Session::premises`].
    pub fn premise_ids(&self) -> &[ConstraintId] {
        &self.premise_ids
    }

    /// The order-independent digest of the current premise set.
    pub fn premise_digest(&self) -> u64 {
        self.premise_digest
    }

    /// The known point values `f(X) = v`, sorted by set.
    pub fn knowns(&self) -> &[(AttrSet, f64)] {
        &self.knowns
    }

    /// The order-independent digest of the known-value map.
    pub fn knowns_digest(&self) -> u64 {
        self.knowns_digest
    }

    /// Stable fingerprint of one known entry; XORed into the knowns digest.
    fn known_fingerprint(set: AttrSet, value: f64) -> u64 {
        set.fingerprint().rotate_left(17) ^ value.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Records `f(set) = value` for bound derivation.  Returns `true` when
    /// the set was new, `false` when an existing value was replaced.
    ///
    /// # Panics
    /// Panics if `value` is not finite or `set` lies outside the universe.
    pub fn set_known(&mut self, set: AttrSet, value: f64) -> bool {
        assert!(value.is_finite(), "known values must be finite");
        assert!(
            set.is_subset(self.universe.full_set()),
            "known set lies outside the universe"
        );
        match self.knowns.binary_search_by(|(x, _)| x.cmp(&set)) {
            Ok(pos) => {
                let old = self.knowns[pos].1;
                self.knowns_digest ^= Session::known_fingerprint(set, old);
                self.knowns_digest ^= Session::known_fingerprint(set, value);
                self.knowns[pos].1 = value;
                false
            }
            Err(pos) => {
                self.knowns.insert(pos, (set, value));
                self.knowns_digest ^= Session::known_fingerprint(set, value);
                true
            }
        }
    }

    /// Forgets a known point value.  Returns `false` when it was not known.
    pub fn forget_known(&mut self, set: AttrSet) -> bool {
        match self.knowns.binary_search_by(|(x, _)| x.cmp(&set)) {
            Ok(pos) => {
                let (_, value) = self.knowns.remove(pos);
                self.knowns_digest ^= Session::known_fingerprint(set, value);
                true
            }
            Err(_) => false,
        }
    }

    /// Derives the tightest provable interval for `f(query)` under the
    /// current premises, knowns, and side conditions, consulting and feeding
    /// the bound cache (keyed on both state digests, so premise retraction
    /// and value forgetting version answers exactly like
    /// [`Session::implies`]).
    ///
    /// # Errors
    /// [`DeriveError::Infeasible`] when the knowns contradict the premises
    /// under the side conditions; infeasible outcomes are not cached.
    pub fn bound(&mut self, query: AttrSet) -> Result<BoundOutcome, DeriveError> {
        assert!(
            query.is_subset(self.universe.full_set()),
            "query set lies outside the universe"
        );
        let key = (self.premise_digest, self.knowns_digest, query);
        if let Some(&(interval, route)) = self.bound_cache.get(&key) {
            self.planner.record_bound_cache_hit();
            return Ok(BoundOutcome {
                interval,
                route,
                cached: true,
                elapsed: Duration::ZERO,
            });
        }
        let route = self.planner.choose_bound(
            &self.universe,
            self.premises.len(),
            self.knowns.len(),
            query,
            &self.bounds_config,
        );
        let problem = BoundsProblem {
            universe: &self.universe,
            constraints: &self.premises,
            knowns: &self.knowns,
            side: self.bound_side,
        };
        let start = Instant::now();
        let result = match route {
            DeriveRoute::Propagation => derive_propagated(&problem, query, &self.bounds_config),
            DeriveRoute::Relaxed => derive_relaxed(&problem, query),
        };
        let elapsed = start.elapsed();
        self.planner.record_bound_decided(route, elapsed);
        let derived = result?;
        self.bound_cache
            .insert(key, (derived.interval, derived.route));
        Ok(BoundOutcome {
            interval: derived.interval,
            route: derived.route,
            cached: false,
            elapsed,
        })
    }

    /// The session's loaded dataset, if any.
    pub fn dataset(&self) -> Option<&Dataset> {
        self.dataset.as_ref()
    }

    /// Streams textual basket records (compact `"ACD"` / `"{}"` notation)
    /// into the session's dataset, creating it on first use.  Returns the
    /// number of baskets appended.
    ///
    /// Loading touches no premise or known state, so cached answers stay
    /// valid; only [`Session::adopt_discovered`] (which asserts premises)
    /// re-versions them.
    ///
    /// # Errors
    /// [`BasketParseError`] locating the first bad record (1-based) and its
    /// offending token.  Records before it are still appended.
    pub fn load_records<I>(&mut self, records: I) -> Result<usize, BasketParseError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        if self.dataset.is_none() {
            self.dataset = Some(Dataset::new(self.universe.clone()));
        }
        self.dataset
            .as_mut()
            .expect("dataset was just created")
            .load(records)
    }

    /// Mines the minimal satisfied disjunctive constraints of the loaded
    /// dataset (as differential constraints, Proposition 6.3) within the
    /// budgets.  `None` when no dataset has been loaded.
    pub fn mine_dataset(&self, config: &MinerConfig) -> Option<Discovery> {
        self.dataset.as_ref().map(|ds| miner::mine(ds, config))
    }

    /// Mines the dataset and asserts the discovery's non-redundant cover as
    /// premises, so subsequent `implies` and `bound` queries reason from
    /// what provably holds in the data.  `None` when no dataset has been
    /// loaded.
    pub fn adopt_discovered(&mut self, config: &MinerConfig) -> Option<AdoptOutcome> {
        let discovery = self.mine_dataset(config)?;
        let mut newly_asserted = 0usize;
        for constraint in &discovery.cover {
            let (_, added) = self.assert_constraint(constraint);
            newly_asserted += added as usize;
        }
        Some(AdoptOutcome {
            discovery,
            newly_asserted,
        })
    }

    /// Adds a premise.  Returns its id and `true`, or its existing id and
    /// `false` when the constraint (up to normalization) is already asserted.
    pub fn assert_constraint(&mut self, constraint: &DiffConstraint) -> (ConstraintId, bool) {
        let id = self.interner.intern(constraint);
        if self.premise_ids.contains(&id) {
            return (id, false);
        }
        self.premise_ids.push(id);
        self.premises.push(constraint.clone());
        self.premise_props
            .push(prop_bridge::to_implication_constraint(constraint));
        if let Some(index) = self.fd_index.as_mut() {
            match fd_fragment::to_fd(constraint) {
                Some(fd) => index.push(fd),
                None => self.fd_index = None,
            }
        }
        self.premise_digest ^= constraint.fingerprint();
        (id, true)
    }

    /// Removes a premise.  Returns `false` when it was not asserted.
    pub fn retract_constraint(&mut self, constraint: &DiffConstraint) -> bool {
        let Some(id) = self.interner.lookup(constraint) else {
            return false;
        };
        self.retract_id(id)
    }

    /// Removes a premise by id.  Returns `false` when it was not asserted.
    pub fn retract_id(&mut self, id: ConstraintId) -> bool {
        let Some(pos) = self.premise_ids.iter().position(|&p| p == id) else {
            return false;
        };
        self.premise_ids.remove(pos);
        let removed = self.premises.remove(pos);
        self.premise_props.remove(pos);
        self.premise_digest ^= removed.fingerprint();
        match self.fd_index.as_mut() {
            // Still all-fragment: the index is aligned, drop the same slot.
            Some(index) => {
                index.remove(pos);
            }
            // The retraction may have removed the last wide premise; rebuild.
            None => self.rebuild_fd_index(),
        }
        true
    }

    fn rebuild_fd_index(&mut self) {
        self.fd_index = self
            .premises
            .iter()
            .map(fd_fragment::to_fd)
            .collect::<Option<Vec<_>>>();
    }

    /// Returns `true` when the interner has outgrown its threshold *and*
    /// compaction would make progress.  The `2·|premises| + 16` floor
    /// guarantees geometric headroom between compactions, so a premise set
    /// larger than the configured threshold cannot thrash the caches.
    fn compaction_due(&self) -> bool {
        let floor = self.premises.len().saturating_mul(2).saturating_add(16);
        self.interner.len() >= self.interner_compaction_threshold.max(floor)
    }

    /// Rebuilds the interner with only the current premises and clears the
    /// id-keyed caches (their keys are stale once ids are reassigned).
    ///
    /// Must not run while previously returned ids are still in flight — the
    /// batch path therefore compacts once up front, never mid-batch.
    fn compact_interner(&mut self) {
        let mut fresh = ConstraintInterner::new();
        for (slot, premise) in self.premises.iter().enumerate() {
            self.premise_ids[slot] = fresh.intern(premise);
        }
        self.interner = fresh;
        self.answer_cache.clear();
        self.lattice_cache.clear();
        self.prop_cache.clear();
        self.interner_compactions += 1;
    }

    /// Interns a goal, compacting the interner first when it has outgrown
    /// its threshold (only for goals not already interned, so compaction is
    /// not triggered by repeat traffic).
    fn intern_goal(&mut self, goal: &DiffConstraint) -> ConstraintId {
        if self.compaction_due() && self.interner.lookup(goal).is_none() {
            self.compact_interner();
        }
        self.interner.intern(goal)
    }

    /// Decides `premises ⊨ goal`, consulting and feeding the caches.
    pub fn implies(&mut self, goal: &DiffConstraint) -> QueryOutcome {
        if goal.is_trivial() {
            self.planner.record_trivial();
            return QueryOutcome {
                implied: true,
                procedure: None,
                cached: false,
                elapsed: Duration::ZERO,
            };
        }
        let id = self.intern_goal(goal);
        let key = (self.premise_digest, id);
        if let Some(&(implied, kind)) = self.answer_cache.get(&key) {
            self.planner.record_cache_hit(kind);
            return QueryOutcome {
                implied,
                procedure: Some(kind),
                cached: true,
                elapsed: Duration::ZERO,
            };
        }
        let job = self.plan_job(goal.clone(), id);
        let ctx = DecisionContext {
            universe: &self.universe,
            premises: &self.premises,
            premise_props: &self.premise_props,
            premise_fds: self.fd_index.as_deref(),
        };
        let result = batch::decide_one(&ctx, &job);
        self.absorb_result(id, &result);
        QueryOutcome {
            implied: result.implied,
            procedure: Some(result.procedure),
            cached: false,
            elapsed: result.elapsed,
        }
    }

    /// Decides a whole batch of goals against the current premise set.
    ///
    /// Cache lookups and write-backs run serially; the cache-missing goals
    /// are decided in parallel on the rayon pool.  The returned outcomes are
    /// index-aligned with `goals`, and identical to calling
    /// [`Session::implies`] goal-by-goal.
    pub fn implies_batch(&mut self, goals: &[DiffConstraint]) -> Vec<QueryOutcome> {
        // Compact only between batches: ids handed out below must stay valid
        // for the whole batch (one batch can overshoot the threshold by at
        // most its own distinct-goal count).
        if self.compaction_due() {
            self.compact_interner();
        }
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; goals.len()];
        let mut jobs: Vec<Job> = Vec::new();
        let mut job_targets: Vec<(usize, ConstraintId)> = Vec::new();
        // Goals repeated inside this batch are decided once; the repeats
        // follow the first occurrence's job.
        let mut pending: std::collections::HashMap<ConstraintId, usize> =
            std::collections::HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new();
        // Serial prologue: trivia, interning, answer-cache probes, planning.
        for (i, goal) in goals.iter().enumerate() {
            if goal.is_trivial() {
                self.planner.record_trivial();
                outcomes[i] = Some(QueryOutcome {
                    implied: true,
                    procedure: None,
                    cached: false,
                    elapsed: Duration::ZERO,
                });
                continue;
            }
            let id = self.interner.intern(goal);
            if let Some(&job_index) = pending.get(&id) {
                followers.push((i, job_index));
                continue;
            }
            let key = (self.premise_digest, id);
            if let Some(&(implied, kind)) = self.answer_cache.get(&key) {
                self.planner.record_cache_hit(kind);
                outcomes[i] = Some(QueryOutcome {
                    implied,
                    procedure: Some(kind),
                    cached: true,
                    elapsed: Duration::ZERO,
                });
                continue;
            }
            pending.insert(id, jobs.len());
            jobs.push(self.plan_job(goal.clone(), id));
            job_targets.push((i, id));
        }
        // Parallel fan-out over the misses.
        let results: Vec<JobResult> = {
            let ctx = DecisionContext {
                universe: &self.universe,
                premises: &self.premises,
                premise_props: &self.premise_props,
                premise_fds: self.fd_index.as_deref(),
            };
            batch::decide_many(&ctx, &jobs)
        };
        // Serial epilogue: write-back and accounting.
        for ((i, id), result) in job_targets.into_iter().zip(&results) {
            self.absorb_result(id, result);
            outcomes[i] = Some(QueryOutcome {
                implied: result.implied,
                procedure: Some(result.procedure),
                cached: false,
                elapsed: result.elapsed,
            });
        }
        for (i, job_index) in followers {
            let result = &results[job_index];
            self.planner.record_cache_hit(result.procedure);
            outcomes[i] = Some(QueryOutcome {
                implied: result.implied,
                procedure: Some(result.procedure),
                cached: true,
                elapsed: Duration::ZERO,
            });
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every goal receives an outcome"))
            .collect()
    }

    /// Plans one goal: chooses the procedure and attaches cached derived data.
    fn plan_job(&mut self, goal: DiffConstraint, id: ConstraintId) -> Job {
        let kind = self.planner.choose(
            &self.universe,
            &self.premises,
            &goal,
            self.fd_index.is_some(),
        );
        let cached_lattice = if kind == ProcedureKind::Lattice {
            self.lattice_cache.get(&id).cloned()
        } else {
            None
        };
        let cached_prop = if kind == ProcedureKind::Sat {
            self.prop_cache.get(&id).cloned()
        } else {
            None
        };
        Job {
            goal,
            procedure: kind,
            cached_lattice,
            cached_prop,
        }
    }

    /// Writes a decision back into the caches and the planner's accounting.
    fn absorb_result(&mut self, id: ConstraintId, result: &JobResult) {
        if let Some(lattice) = &result.computed_lattice {
            self.lattice_cache.insert(id, Arc::clone(lattice));
        }
        if let Some(prop) = &result.computed_prop {
            self.prop_cache.insert(id, Arc::clone(prop));
        }
        self.answer_cache.insert(
            (self.premise_digest, id),
            (result.implied, result.procedure),
        );
        self.planner
            .record_decided(result.procedure, result.elapsed);
    }

    /// A refutation witness for a non-implied goal: a set in `L(goal)` not
    /// covered by any premise lattice.  `None` means the goal is implied.
    pub fn refutation_witness(&self, goal: &DiffConstraint) -> Option<AttrSet> {
        implication::refutation_witness(&self.universe, &self.premises, goal)
    }

    /// Produces a machine-checkable Figure 1 derivation of an implied goal
    /// (`None` when the goal is not implied).
    pub fn derive(&self, goal: &DiffConstraint) -> Option<Derivation> {
        inference::derive(&self.universe, &self.premises, goal)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            planner: self.planner.stats(),
            answer_cache: self.answer_cache.stats(),
            lattice_cache: self.lattice_cache.stats(),
            prop_cache: self.prop_cache.stats(),
            bound_cache: self.bound_cache.stats(),
            knowns: self.knowns.len(),
            dataset_baskets: self.dataset.as_ref().map_or(0, Dataset::len),
            premises: self.premises.len(),
            interned: self.interner.len(),
            interner_compactions: self.interner_compactions,
        }
    }

    /// Drops all cached answers and derived data (premises and knowns are
    /// kept).
    pub fn clear_caches(&mut self) {
        self.answer_cache.clear();
        self.lattice_cache.clear();
        self.prop_cache.clear();
        self.bound_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffcon::implication;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    fn example_session() -> (Session, Vec<DiffConstraint>) {
        let u = Universe::of_size(4);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let mut s = Session::new(u);
        for p in &premises {
            s.assert_constraint(p);
        }
        (s, premises)
    }

    #[test]
    fn answers_match_the_one_shot_procedure() {
        let (mut s, premises) = example_session();
        let goals = parse(
            s.universe(),
            &["A -> {C}", "C -> {A}", "AB -> {B}", "A -> {B, CD}"],
        );
        for goal in &goals {
            let expected = implication::implies(s.universe(), &premises, goal);
            assert_eq!(s.implies(goal).implied, expected, "wrong on {goal:?}");
        }
    }

    #[test]
    fn repeat_queries_hit_the_answer_cache() {
        let (mut s, _) = example_session();
        let goal = DiffConstraint::parse("A -> {C}", s.universe()).unwrap();
        let first = s.implies(&goal);
        assert!(!first.cached);
        let second = s.implies(&goal);
        assert!(second.cached);
        assert_eq!(first.implied, second.implied);
        assert_eq!(first.procedure, second.procedure);
        assert_eq!(s.stats().answer_cache.hits, 1);
    }

    #[test]
    fn trivial_goals_short_circuit() {
        let (mut s, _) = example_session();
        let goal = DiffConstraint::parse("AB -> {B}", s.universe()).unwrap();
        let outcome = s.implies(&goal);
        assert!(outcome.implied);
        assert_eq!(outcome.procedure, None);
        assert_eq!(outcome.route_name(), "trivial");
        assert_eq!(s.stats().planner.trivial, 1);
    }

    #[test]
    fn premise_mutation_versions_the_answer_cache() {
        let (mut s, premises) = example_session();
        let goal = DiffConstraint::parse("A -> {C}", s.universe()).unwrap();
        assert!(s.implies(&goal).implied);
        // Retract B → {C}: transitivity is gone, the answer must flip even
        // though the stale cached entry still exists under the old digest.
        assert!(s.retract_constraint(&premises[1]));
        let outcome = s.implies(&goal);
        assert!(!outcome.implied);
        assert!(!outcome.cached);
        // Re-assert: the digest returns to its old value, so the original
        // answer is served straight from the cache again.
        s.assert_constraint(&premises[1]);
        let outcome = s.implies(&goal);
        assert!(outcome.implied);
        assert!(
            outcome.cached,
            "digest restoration should revalidate the cache"
        );
    }

    #[test]
    fn duplicate_assert_is_a_noop() {
        let (mut s, premises) = example_session();
        let digest = s.premise_digest();
        let (_, added) = s.assert_constraint(&premises[0]);
        assert!(!added);
        assert_eq!(s.premises().len(), 2);
        assert_eq!(s.premise_digest(), digest, "digest must not XOR-cancel");
    }

    #[test]
    fn fd_index_tracks_fragment_membership() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u);
        let narrow = parse(s.universe(), &["A -> {B}"]);
        let wide = parse(s.universe(), &["B -> {C, D}"]);
        s.assert_constraint(&narrow[0]);
        let goal = DiffConstraint::parse("A -> {B}", s.universe()).unwrap();
        // ⊤-trivial goals bypass procedures, so use a non-trivial FD goal.
        let fd_goal = DiffConstraint::parse("AC -> {B}", s.universe()).unwrap();
        assert_eq!(
            s.implies(&fd_goal).procedure,
            Some(ProcedureKind::FdFragment)
        );
        // A wide premise disables the fast path…
        s.assert_constraint(&wide[0]);
        let outcome = s.implies(&goal);
        assert_ne!(outcome.procedure, Some(ProcedureKind::FdFragment));
        // …and retracting it restores the rebuilt index.
        assert!(s.retract_constraint(&wide[0]));
        let fd_goal2 = DiffConstraint::parse("AD -> {B}", s.universe()).unwrap();
        assert_eq!(
            s.implies(&fd_goal2).procedure,
            Some(ProcedureKind::FdFragment)
        );
    }

    #[test]
    fn batch_agrees_with_serial_and_preserves_order() {
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "BC -> {D, EF}", "D -> {E}"]);
        let mut batch_session = Session::new(u.clone());
        let mut serial_session = Session::new(u.clone());
        for p in &premises {
            batch_session.assert_constraint(p);
            serial_session.assert_constraint(p);
        }
        let mut gen = diffcon::random::ConstraintGenerator::new(5, &u);
        let shape = diffcon::random::ConstraintShape::default();
        // Include duplicates so the batch exercises the answer cache.
        let mut goals = gen.constraint_set(40, &shape);
        let dup = goals[3].clone();
        goals.push(dup);
        let batch_outcomes = batch_session.implies_batch(&goals);
        assert_eq!(batch_outcomes.len(), goals.len());
        for (goal, outcome) in goals.iter().zip(&batch_outcomes) {
            assert_eq!(outcome.implied, serial_session.implies(goal).implied);
            assert_eq!(
                outcome.implied,
                implication::implies(&u, &premises, goal),
                "batch wrong on {}",
                goal.format(&u)
            );
        }
        // The duplicated goal must have been served from the cache.
        assert!(batch_outcomes.last().unwrap().cached);
    }

    #[test]
    fn witness_and_derivation_are_consistent_with_answers() {
        let (mut s, _) = example_session();
        let implied = DiffConstraint::parse("A -> {C}", s.universe()).unwrap();
        let refuted = DiffConstraint::parse("C -> {A}", s.universe()).unwrap();
        assert!(s.implies(&implied).implied);
        assert_eq!(s.refutation_witness(&implied), None);
        let proof = s.derive(&implied).expect("implied goals are derivable");
        assert!(proof.verify(s.universe(), s.premises()).is_ok());
        assert!(!s.implies(&refuted).implied);
        assert!(s.refutation_witness(&refuted).is_some());
        assert!(s.derive(&refuted).is_none());
    }

    #[test]
    fn tiny_caches_still_answer_correctly() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C, DE}"]);
        let config = SessionConfig {
            answer_cache_capacity: 2,
            lattice_cache_capacity: 1,
            prop_cache_capacity: 1,
            ..SessionConfig::default()
        };
        let mut s = Session::with_config(u.clone(), config);
        for p in &premises {
            s.assert_constraint(p);
        }
        let mut gen = diffcon::random::ConstraintGenerator::new(77, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(30, &shape);
        // Query twice in interleaved order so eviction churns constantly.
        for goal in goals.iter().chain(goals.iter()) {
            assert_eq!(
                s.implies(goal).implied,
                implication::implies(&u, &premises, goal),
                "wrong under eviction on {}",
                goal.format(&u)
            );
        }
        assert!(s.stats().answer_cache.evictions > 0, "expected churn");
    }

    #[test]
    fn interner_compaction_bounds_memory_and_preserves_answers() {
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "B -> {C, DE}"]);
        let config = SessionConfig {
            interner_compaction_threshold: 8,
            ..SessionConfig::default()
        };
        let mut s = Session::with_config(u.clone(), config);
        for p in &premises {
            s.assert_constraint(p);
        }
        let mut gen = diffcon::random::ConstraintGenerator::new(3, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(100, &shape);
        for goal in &goals {
            assert_eq!(
                s.implies(goal).implied,
                implication::implies(&u, &premises, goal),
                "wrong across compaction on {}",
                goal.format(&u)
            );
            // The bound holds throughout: with 2 premises the effective
            // threshold is the progress floor 2·|premises| + 16 = 20 (the
            // configured 8 lies below it), plus the one goal just interned.
            assert!(s.stats().interned <= 21, "interner grew past its bound");
        }
        let stats = s.stats();
        assert!(
            stats.interner_compactions >= 3,
            "expected repeated compaction"
        );
        assert_eq!(stats.premises, 2);
        // Premise ids stay coherent after many compactions: mutation and
        // batch evaluation still work.
        assert!(s.retract_constraint(&premises[1]));
        assert_eq!(s.premises().len(), 1);
        let batch = s.implies_batch(&goals[..10]);
        for (goal, outcome) in goals[..10].iter().zip(&batch) {
            assert_eq!(
                outcome.implied,
                implication::implies(&u, &premises[..1], goal)
            );
        }
    }

    #[test]
    fn large_premise_sets_do_not_thrash_compaction() {
        // A premise count at/above the configured threshold must not trigger
        // a cache-clearing compaction per query (the progress floor kicks in).
        let u = Universe::of_size(6);
        let config = SessionConfig {
            interner_compaction_threshold: 4,
            ..SessionConfig::default()
        };
        let mut s = Session::with_config(u.clone(), config);
        let mut gen = diffcon::random::ConstraintGenerator::new(9, &u);
        let shape = diffcon::random::ConstraintShape::default();
        for p in &gen.constraint_set(10, &shape) {
            s.assert_constraint(p);
        }
        let goal = gen.constraint(&shape);
        s.implies(&goal);
        let warm = s.implies(&goal);
        assert!(
            warm.cached,
            "repeat query must stay cached, not be compacted away"
        );
        assert_eq!(s.stats().interner_compactions, 0);
    }

    #[test]
    fn bound_queries_use_constraints_knowns_and_the_cache() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u.clone());
        let premise = DiffConstraint::parse("A -> {B}", &u).unwrap();
        s.assert_constraint(&premise);
        assert!(s.set_known(u.parse_set("A").unwrap(), 40.0));
        let ab = u.parse_set("AB").unwrap();
        // The acceptance scenario: the constraint pins σ(AB) = σ(A).
        let first = s.bound(ab).unwrap();
        assert!(!first.cached);
        assert_eq!(first.route, DeriveRoute::Propagation);
        assert_eq!(first.route_name(), "propagation");
        assert!(first.interval.is_exact());
        assert_eq!(first.interval.lo, 40.0);
        // Second ask is a cache hit with the same interval.
        let second = s.bound(ab).unwrap();
        assert!(second.cached);
        assert_eq!(second.route_name(), "cached");
        assert_eq!(second.interval, first.interval);
        let stats = s.stats();
        assert_eq!(stats.planner.bounds.propagation, 1);
        assert_eq!(stats.planner.bounds.cache_hits, 1);
        assert_eq!(stats.knowns, 1);
        // Retracting the premise widens the interval (and misses the cache);
        // re-asserting revalidates the original cached answer.
        assert!(s.retract_constraint(&premise));
        let loose = s.bound(ab).unwrap();
        assert!(!loose.cached);
        assert_eq!(loose.interval.lo, 0.0);
        assert_eq!(loose.interval.hi, 40.0);
        s.assert_constraint(&premise);
        assert!(s.bound(ab).unwrap().cached);
        // Forgetting the known value widens again; re-knowing revalidates.
        assert!(s.forget_known(u.parse_set("A").unwrap()));
        let unknown = s.bound(ab).unwrap();
        assert_eq!(unknown.interval.hi, f64::INFINITY);
        s.set_known(u.parse_set("A").unwrap(), 40.0);
        assert!(s.bound(ab).unwrap().cached);
    }

    #[test]
    fn known_replacement_and_digest_restoration() {
        let u = Universe::of_size(3);
        let mut s = Session::new(u.clone());
        let a = u.parse_set("A").unwrap();
        let digest0 = s.knowns_digest();
        assert!(s.set_known(a, 5.0));
        let digest5 = s.knowns_digest();
        assert!(!s.set_known(a, 7.0), "replacement is not an addition");
        assert_eq!(s.knowns().len(), 1);
        assert_ne!(s.knowns_digest(), digest5);
        assert!(!s.set_known(a, 5.0));
        assert_eq!(s.knowns_digest(), digest5, "digest must restore exactly");
        assert!(s.forget_known(a));
        assert_eq!(s.knowns_digest(), digest0);
        assert!(!s.forget_known(a), "double forget reports absence");
    }

    #[test]
    fn infeasible_knowns_surface_and_are_not_cached() {
        let u = Universe::of_size(3);
        let mut s = Session::new(u.clone());
        s.set_known(u.parse_set("A").unwrap(), 3.0);
        s.set_known(u.parse_set("AB").unwrap(), 9.0);
        let q = u.parse_set("ABC").unwrap();
        assert_eq!(s.bound(q), Err(DeriveError::Infeasible));
        // Repairing the state makes the same query answerable.
        s.set_known(u.parse_set("AB").unwrap(), 2.0);
        let b = s.bound(q).unwrap();
        assert!(!b.cached);
        assert_eq!(b.interval.lo, 0.0);
        assert_eq!(b.interval.hi, 2.0);
    }

    #[test]
    fn oversized_universes_fall_back_to_the_relaxed_route() {
        let u = Universe::of_size(26);
        let mut s = Session::new(u.clone());
        s.set_known(AttrSet::EMPTY, 100.0);
        s.set_known(u.parse_set("ABCD").unwrap(), 30.0);
        let b = s.bound(u.parse_set("AB").unwrap()).unwrap();
        assert_eq!(b.route, DeriveRoute::Relaxed);
        assert_eq!(b.interval.lo, 30.0);
        assert_eq!(b.interval.hi, 100.0);
        assert_eq!(s.stats().planner.bounds.relaxed, 1);
    }

    #[test]
    fn load_mine_adopt_tightens_bounds() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u.clone());
        assert!(s.dataset().is_none());
        assert!(s.mine_dataset(&MinerConfig::default()).is_none());
        assert!(s.adopt_discovered(&MinerConfig::default()).is_none());
        // Every basket containing A contains B: the data satisfies A → {B}.
        let added = s.load_records("AB;ABC;B;C;BC".split(';')).unwrap();
        assert_eq!(added, 5);
        assert_eq!(s.stats().dataset_baskets, 5);
        let ab = u.parse_set("AB").unwrap();
        s.set_known(u.parse_set("A").unwrap(), 2.0);
        let before = s.bound(ab).unwrap().interval;
        let outcome = s.adopt_discovered(&MinerConfig::default()).unwrap();
        assert!(outcome.newly_asserted > 0);
        assert_eq!(s.premises().len(), outcome.newly_asserted);
        // Adopted premises hold on the data, so σ(AB) = σ(A) is now pinned.
        let after = s.bound(ab).unwrap().interval;
        assert!(
            after.lo >= before.lo && after.hi <= before.hi,
            "adoption widened the bound"
        );
        assert!(after.is_exact());
        assert_eq!(after.lo, 2.0);
        // Re-adopting asserts nothing new.
        let again = s.adopt_discovered(&MinerConfig::default()).unwrap();
        assert_eq!(again.newly_asserted, 0);
    }

    #[test]
    fn load_errors_locate_records_and_keep_the_session_usable() {
        let u = Universe::of_size(3);
        let mut s = Session::new(u);
        let err = s.load_records(["AB", "AZ"]).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "Z");
        // The record before the failure was ingested.
        assert_eq!(s.dataset().unwrap().len(), 1);
        assert_eq!(s.load_records(["C"]).unwrap(), 1);
        assert_eq!(s.stats().dataset_baskets, 2);
    }

    #[test]
    fn stats_reflect_activity() {
        let (mut s, _) = example_session();
        let goals = parse(s.universe(), &["A -> {C}", "C -> {A}"]);
        for g in &goals {
            s.implies(g);
            s.implies(g);
        }
        let stats = s.stats();
        assert_eq!(stats.premises, 2);
        assert!(stats.interned >= 4);
        assert_eq!(stats.planner.total_queries(), 4);
        assert_eq!(stats.answer_cache.hits, 2);
        s.clear_caches();
        let g = &goals[0];
        assert!(!s.implies(g).cached);
    }
}
