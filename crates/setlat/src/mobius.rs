//! Möbius / zeta transforms: the relationship between a set function and its
//! *density function* (Remark 2.3 of the paper).
//!
//! For `f ∈ F(S)`, the density function `d_f` is the unique function with
//!
//! ```text
//! d_f(X) = Σ_{X ⊆ U ⊆ S} (-1)^{|U|-|X|} f(U)        (Möbius inversion, eq. (4))
//! f(X)   = Σ_{X ⊆ U ⊆ S} d_f(U)                      (zeta transform,   eq. (5))
//! ```
//!
//! Both directions are implemented with the standard `O(n·2^n)` "superset-sum"
//! dynamic programs ([`density_function`], [`from_density`]) as well as naive
//! `O(3^n)`-ish reference implementations used in tests
//! ([`density_function_naive`], [`from_density_naive`]).

use crate::attrset::AttrSet;
use crate::powerset::supersets_within;
use crate::setfn::SetFunction;

/// Computes the density function `d_f` (the Möbius inverse of `f`) using the
/// fast superset-sum transform in `O(n · 2^n)` time.
pub fn density_function(f: &SetFunction) -> SetFunction {
    let n = f.universe_size();
    let mut d = f.clone();
    let table = d.values_mut();
    for i in 0..n {
        let bit = 1usize << i;
        for mask in 0..table.len() {
            if mask & bit == 0 {
                table[mask] -= table[mask | bit];
            }
        }
    }
    d
}

/// Reconstructs `f` from its density function `d` using the fast superset-sum
/// zeta transform in `O(n · 2^n)` time: `f(X) = Σ_{X ⊆ U} d(U)`.
pub fn from_density(d: &SetFunction) -> SetFunction {
    let n = d.universe_size();
    let mut f = d.clone();
    let table = f.values_mut();
    for i in 0..n {
        let bit = 1usize << i;
        for mask in 0..table.len() {
            if mask & bit == 0 {
                table[mask] += table[mask | bit];
            }
        }
    }
    f
}

/// Naive `Σ_{X ⊆ U ⊆ S} (-1)^{|U|-|X|} f(U)` evaluation of the density at one set.
pub fn density_at_naive(f: &SetFunction, x: AttrSet) -> f64 {
    let n = f.universe_size();
    let mut acc = 0.0;
    for u in supersets_within(x, n) {
        let sign = if (u.len() - x.len()).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        acc += sign * f.get(u);
    }
    acc
}

/// Naive density function computed set-by-set; used as a reference in tests.
pub fn density_function_naive(f: &SetFunction) -> SetFunction {
    SetFunction::from_fn(f.universe_size(), |x| density_at_naive(f, x))
}

/// Naive zeta evaluation `f(X) = Σ_{X ⊆ U ⊆ S} d(U)` at one set.
pub fn zeta_at_naive(d: &SetFunction, x: AttrSet) -> f64 {
    let n = d.universe_size();
    supersets_within(x, n).map(|u| d.get(u)).sum()
}

/// Naive reconstruction of `f` from its density, set-by-set; reference for tests.
pub fn from_density_naive(d: &SetFunction) -> SetFunction {
    SetFunction::from_fn(d.universe_size(), |x| zeta_at_naive(d, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn example_22_function() -> (Universe, SetFunction) {
        // An arbitrary but fixed function over S = {A,B,C,D} used to check the
        // identities of Example 2.4 numerically.
        let u = Universe::of_size(4);
        let f = SetFunction::from_fn(4, |x| (x.bits() as f64).sin() + x.len() as f64);
        (u, f)
    }

    #[test]
    fn fast_density_matches_naive() {
        let (_u, f) = example_22_function();
        let fast = density_function(&f);
        let naive = density_function_naive(&f);
        assert!(fast.max_abs_diff(&naive) < 1e-12);
    }

    #[test]
    fn fast_zeta_matches_naive() {
        let (_u, f) = example_22_function();
        let d = density_function(&f);
        let fast = from_density(&d);
        let naive = from_density_naive(&d);
        assert!(fast.max_abs_diff(&naive) < 1e-12);
    }

    #[test]
    fn mobius_then_zeta_is_identity() {
        let (_u, f) = example_22_function();
        let d = density_function(&f);
        let back = from_density(&d);
        assert!(back.max_abs_diff(&f) < 1e-12);
    }

    #[test]
    fn zeta_then_mobius_is_identity() {
        let d = SetFunction::from_fn(5, |x| (x.bits() % 7) as f64 - 3.0);
        let f = from_density(&d);
        let back = density_function(&f);
        assert!(back.max_abs_diff(&d) < 1e-12);
    }

    #[test]
    fn example_2_4_density_of_a() {
        // Example 2.4: d_f(A) = f(A) − f(AB) − f(AC) − f(AD)
        //                      + f(ABC) + f(ABD) + f(ACD) − f(ABCD).
        let (u, f) = example_22_function();
        let d = density_function(&f);
        let g = |names: &str| f.get(u.parse_set(names).unwrap());
        let expected =
            g("A") - g("AB") - g("AC") - g("AD") + g("ABC") + g("ABD") + g("ACD") - g("ABCD");
        let actual = d.get(u.parse_set("A").unwrap());
        assert!((expected - actual).abs() < 1e-12);
    }

    #[test]
    fn example_2_4_reconstruction_of_a() {
        // Example 2.4: f(A) = d_f(A) + d_f(AB) + d_f(AC) + d_f(AD)
        //                    + d_f(ABC) + d_f(ABD) + d_f(ACD) + d_f(ABCD).
        let (u, f) = example_22_function();
        let d = density_function(&f);
        let g = |names: &str| d.get(u.parse_set(names).unwrap());
        let expected =
            g("A") + g("AB") + g("AC") + g("AD") + g("ABC") + g("ABD") + g("ACD") + g("ABCD");
        let actual = f.get(u.parse_set("A").unwrap());
        assert!((expected - actual).abs() < 1e-12);
    }

    #[test]
    fn point_mass_density_is_point() {
        // The counterexample function of Theorem 3.5: f^U has density c at U, 0 elsewhere.
        let target = AttrSet::from_indices([0, 2]);
        let f = SetFunction::point_mass(4, target, 3.0);
        let d = density_function(&f);
        for (x, v) in d.iter() {
            if x == target {
                assert!((v - 3.0).abs() < 1e-12);
            } else {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn remark_3_6_example() {
        // Remark 3.6: S = {A}, f(∅) = 0, f(A) = 1 gives d_f(∅) = −1, d_f(A) = 1.
        let mut f = SetFunction::zeros(1);
        f.set(AttrSet::singleton(0), 1.0);
        let d = density_function(&f);
        assert!((d.get(AttrSet::EMPTY) - (-1.0)).abs() < 1e-12);
        assert!((d.get(AttrSet::singleton(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_empty_universe() {
        let f = SetFunction::constant(0, 7.0);
        let d = density_function(&f);
        assert_eq!(d.get(AttrSet::EMPTY), 7.0);
        assert!(from_density(&d).max_abs_diff(&f) < 1e-12);
    }
}
