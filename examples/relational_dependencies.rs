//! Relational scenario (Section 7 of the paper): Simpson functions, positive
//! boolean dependencies, and the polynomial functional-dependency fragment.
//!
//! Run with `cargo run --example relational_dependencies`.
//!
//! The workflow:
//!   1. build a relation with planted functional dependencies and wrap it in a
//!      probability distribution;
//!   2. verify Proposition 7.2/7.3 on it: the Simpson function is a frequency
//!      function, and it satisfies a differential constraint exactly when the
//!      relation satisfies the corresponding positive boolean dependency;
//!   3. reason about dependencies: decide implications with the general
//!      procedure and, for the single-member fragment, with the polynomial
//!      attribute-closure procedure (the paper's concluding observation).

use diffcon::{fd_fragment, implication, rel_bridge, DiffConstraint};
use relational::boolean_dep::BooleanDependency;
use relational::distribution::ProbabilisticRelation;
use relational::fd::FunctionalDependency;
use relational::generator::relation_with_fds;
use relational::simpson;
use setlat::{Family, Universe};

fn main() {
    // S = {A, B, C, D, E}: plant A → B, B → C and DE → A.
    let u = Universe::of_size(5);
    let planted = vec![
        FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
        FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("C").unwrap()),
        FunctionalDependency::new(u.parse_set("DE").unwrap(), u.parse_set("A").unwrap()),
    ];
    let relation = relation_with_fds(7, 5, 60, 4, &planted);
    println!(
        "Relation over {} attributes with {} tuples; planted FDs: A→B, B→C, DE→A",
        relation.arity(),
        relation.len()
    );
    let pr = ProbabilisticRelation::uniform(relation.clone());

    // ── Proposition 7.2: the Simpson function is a frequency function ────────
    println!(
        "Simpson density nonnegative (frequency function): {}",
        simpson::simpson_is_frequency_function(&pr)
    );

    // ── Proposition 7.3: Simpson satisfaction ⇔ boolean-dependency satisfaction ─
    let checks = ["A -> {B}", "B -> {A}", "A -> {B, DE}", "D -> {E, A}"];
    println!("\nSatisfaction (Simpson function vs boolean dependency):");
    for text in checks {
        let c = DiffConstraint::parse(text, &u).unwrap();
        let via_simpson = rel_bridge::simpson_satisfies(&pr, &c);
        let via_bool = BooleanDependency::new(c.lhs, c.rhs.clone()).satisfied_by(&relation);
        assert_eq!(via_simpson, via_bool);
        println!("  {:<14} satisfied: {}", c.format(&u), via_simpson);
    }

    // ── Implication: general procedure vs the polynomial FD fragment ─────────
    let premises: Vec<DiffConstraint> = planted
        .iter()
        .map(rel_bridge::from_functional_dependency)
        .collect();
    println!("\nImplication from the planted dependencies:");
    let goals = [
        ("A -> {C}", true),
        ("DE -> {BC}", true),
        ("C -> {A}", false),
        ("ADE -> {BC}", true),
    ];
    for (text, _expected) in goals {
        let goal = DiffConstraint::parse(text, &u).unwrap();
        let general = implication::implies(&u, &premises, &goal);
        let poly = if fd_fragment::set_in_fragment(&premises) && fd_fragment::in_fragment(&goal) {
            fd_fragment::implies_polynomial(&premises, &goal)
        } else {
            general
        };
        assert_eq!(general, poly);
        println!(
            "  C ⊨ {:<14} {}  (general and polynomial procedures agree)",
            goal.format(&u),
            general
        );
    }

    // ── Attribute closures (the engine behind the polynomial procedure) ──────
    println!("\nAttribute closures under the planted dependencies:");
    for x in ["A", "DE", "C"] {
        let set = u.parse_set(x).unwrap();
        let closure = fd_fragment::closure(&premises, set);
        println!("  {}⁺ = {}", u.format_set(set), u.format_set(closure));
    }

    // ── A general (non-FD) dependency: boolean disjunction ───────────────────
    let disjunctive = DiffConstraint::new(
        u.parse_set("A").unwrap(),
        Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("DE").unwrap()]),
    );
    println!(
        "\nThe non-functional dependency {} is implied by A → {{B}} (addition rule): {}",
        disjunctive.format(&u),
        implication::implies(&u, &premises, &disjunctive)
    );
}
