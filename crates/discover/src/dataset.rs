//! Datasets: a basket database paired with its vertical index.
//!
//! A [`Dataset`] owns the horizontal [`BasketDb`] (the ground truth the
//! paper's Section 6 semantics are defined over) and keeps a columnar
//! [`VerticalIndex`] in sync with it, so every support or cover query issued
//! by the miner — and by the serving layer's `dataset` statistics — runs at
//! bitmap-intersection speed instead of re-scanning the baskets.
//!
//! Ingestion is record-oriented and streaming: [`Dataset::load`] consumes an
//! iterator of textual basket records (`"AB"`, `"{}"`, …), appending each to
//! both representations, and reports failures as [`BasketParseError`]s that
//! carry the 1-based record number and the offending token.

use fis::basket::{BasketDb, BasketParseError};
use fis::eclat::TidSet;
use fis::vertical::VerticalIndex;
use setlat::{AttrSet, Universe};

/// A basket database plus its incrementally maintained vertical index.
#[derive(Debug, Clone)]
pub struct Dataset {
    universe: Universe,
    db: BasketDb,
    index: VerticalIndex,
}

impl Dataset {
    /// An empty dataset over `universe`.
    pub fn new(universe: Universe) -> Self {
        let n = universe.len();
        Dataset {
            universe,
            db: BasketDb::new(n),
            index: VerticalIndex::new(n),
        }
    }

    /// Wraps an existing database, building its index in one pass.
    ///
    /// # Panics
    /// Panics if the database's universe size differs from `universe`.
    pub fn from_db(universe: Universe, db: BasketDb) -> Self {
        assert_eq!(
            universe.len(),
            db.universe_size(),
            "database universe size does not match the dataset universe"
        );
        let index = VerticalIndex::build(&db);
        Dataset {
            universe,
            db,
            index,
        }
    }

    /// Appends one basket to both representations.
    ///
    /// # Panics
    /// Panics if the basket contains items outside the universe.
    pub fn push(&mut self, basket: AttrSet) {
        self.db.push(basket);
        self.index.push(basket);
    }

    /// Streams textual basket records (each in the compact `"ACD"` / `"{}"`
    /// notation, via [`fis::basket::parse_records`]) into the dataset,
    /// skipping records that trim to nothing.  Returns the number of baskets
    /// appended.
    ///
    /// # Errors
    /// [`BasketParseError`] locating the first bad record (1-based, counting
    /// skipped blanks) and its offending token; records before it are still
    /// appended, so a caller that wants all-or-nothing ingestion should
    /// stage into a fresh [`Dataset`] first.
    pub fn load<I>(&mut self, records: I) -> Result<usize, BasketParseError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        // The record iterator must not borrow `self` (each parsed basket is
        // pushed immediately), so it parses against a clone of the universe
        // — cheap next to the per-record work, and what keeps ingestion
        // genuinely streaming: O(1) buffering, and a malformed record stops
        // the scan right there.
        let universe = self.universe.clone();
        let mut added = 0usize;
        for basket in fis::basket::parse_records(&universe, records) {
            self.push(basket?);
            added += 1;
        }
        Ok(added)
    }

    /// Loads line-oriented basket text (one basket per line).
    ///
    /// # Errors
    /// See [`Dataset::load`]; the error's `line` is the 1-based line number.
    pub fn load_text(&mut self, text: &str) -> Result<usize, BasketParseError> {
        self.load(text.lines())
    }

    /// The dataset's universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The horizontal database.
    pub fn db(&self) -> &BasketDb {
        &self.db
    }

    /// The vertical index.
    pub fn index(&self) -> &VerticalIndex {
        &self.index
    }

    /// The number of baskets.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Returns `true` iff no basket has been loaded.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// The support `s_B(X)` via the vertical index.
    pub fn support(&self, x: AttrSet) -> usize {
        self.index.support(x)
    }

    /// The cover `B(X)` as a tidset via the vertical index.
    pub fn cover(&self, x: AttrSet) -> TidSet {
        self.index.cover(x)
    }

    /// The set of items occurring in at least one basket.
    pub fn occurring_items(&self) -> AttrSet {
        self.db.occurring_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_keeps_both_representations_in_sync() {
        let u = Universe::of_size(4);
        let mut ds = Dataset::new(u.clone());
        assert!(ds.is_empty());
        let added = ds.load("AB;ABC;{};B".split(';')).unwrap();
        assert_eq!(added, 4);
        assert_eq!(ds.len(), 4);
        for x in u.all_subsets() {
            assert_eq!(
                ds.support(x),
                ds.db().support(x),
                "index out of sync at {x:?}"
            );
        }
        // Appending more keeps the sync.
        let added = ds.load_text("ACD\nB\n\nD").unwrap();
        assert_eq!(added, 3);
        for x in u.all_subsets() {
            assert_eq!(ds.support(x), ds.db().support(x));
        }
        assert_eq!(ds.occurring_items(), u.full_set());
    }

    #[test]
    fn load_errors_locate_the_record() {
        let u = Universe::of_size(3);
        let mut ds = Dataset::new(u);
        let err = ds.load(["AB", "C", "AQ"]).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.token, "Q");
        // Records before the failure were appended.
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn from_db_matches_incremental() {
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB").unwrap();
        let wrapped = Dataset::from_db(u.clone(), db.clone());
        let mut incremental = Dataset::new(u.clone());
        incremental.load_text("AB\nABC\nACD\nB").unwrap();
        for x in u.all_subsets() {
            assert_eq!(wrapped.support(x), incremental.support(x));
        }
        assert_eq!(
            wrapped
                .cover(u.parse_set("AB").unwrap())
                .iter()
                .collect::<Vec<_>>(),
            db.cover(u.parse_set("AB").unwrap())
        );
    }
}
