//! Property tests for the static analyzer (ISSUE 10).
//!
//! Two guarantees are exercised, each against the serving engine itself as
//! the oracle:
//!
//! 1. **Core-reduction transparency** (1000 cases): answering from the
//!    premise family reduced by [`diffcon_analyze::minimal_core`] — what
//!    `analyze apply` installs — never changes any `implies` answer or any
//!    `bound` interval relative to the full family.
//! 2. **Infeasibility coincidence**: the analyzer's query-time-free
//!    infeasibility verdict holds *exactly* when some `bound` query over
//!    the same state fails with [`DeriveError::Infeasible`] — no false
//!    alarms, no missed conflicts.

use diffcon::random::{ConstraintGenerator, ConstraintShape};
use diffcon::DiffConstraint;
use diffcon_bounds::DeriveError;
use diffcon_engine::Session;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use setlat::{AttrSet, Universe};

/// A session holding exactly the given premises and knowns, with no cache
/// history.
fn fresh_session(
    universe: &Universe,
    premises: &[DiffConstraint],
    knowns: &[(AttrSet, f64)],
) -> Session {
    let mut s = Session::new(universe.clone());
    for p in premises {
        s.assert_constraint(p);
    }
    for &(x, v) in knowns {
        s.set_known(x, v);
    }
    s
}

/// Random premises and knowns for a universe of `n` attributes, all derived
/// deterministically from `seed`.
fn random_state(seed: u64, n: usize) -> (Vec<DiffConstraint>, Vec<(AttrSet, f64)>) {
    let universe = Universe::of_size(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = ConstraintGenerator::new(rng.gen_range(0..u64::MAX), &universe);
    let shape = ConstraintShape::default();
    let premises: Vec<DiffConstraint> = (0..rng.gen_range(0..7))
        .map(|_| gen.constraint(&shape))
        .collect();
    // Small integer values over a narrow range make accidental conflicts
    // (monotonicity violations between nested sets) genuinely reachable.
    let knowns: Vec<(AttrSet, f64)> = (0..rng.gen_range(0..5))
        .map(|_| {
            (
                AttrSet::from_bits(rng.gen_range(0..(1u64 << n))),
                rng.gen_range(0..6) as f64,
            )
        })
        .collect();
    (premises, knowns)
}

/// Core reduction is answer-transparent: every `implies` answer and every
/// `bound` outcome (interval or infeasibility) is identical when answered
/// from the reduced core.
fn check_core_equivalence(seed: u64, n: usize) {
    let universe = Universe::of_size(n);
    let (premises, knowns) = random_state(seed, n);
    let full = fresh_session(&universe, &premises, &knowns);

    let core = diffcon_analyze::minimal_core(&universe, full.premises());
    assert!(
        diffcon_analyze::check_certificate(&universe, &core),
        "certificate failed on {premises:?}"
    );
    let reduced = fresh_session(&universe, &core.core, &knowns);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut gen = ConstraintGenerator::new(rng.gen_range(0..u64::MAX), &universe);
    let shape = ConstraintShape::default();
    for _ in 0..8 {
        let goal = gen.constraint(&shape);
        assert_eq!(
            full.implies(&goal).implied,
            reduced.implies(&goal).implied,
            "core reduction changed `implies {goal:?}` (dropped {:?})",
            core.dropped
        );
    }
    for bits in 0..(1u64 << n) {
        let query = AttrSet::from_bits(bits);
        match (full.bound(query), reduced.bound(query)) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.interval, b.interval,
                "core reduction changed `bound {query:?}` (dropped {:?})",
                core.dropped
            ),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!(
                "core reduction flipped feasibility at {query:?}: full={a:?} reduced={b:?} \
                 (dropped {:?})",
                core.dropped
            ),
        }
    }
}

/// The analyzer's infeasibility verdict coincides exactly with the engine:
/// `analysis.conflict.is_some()` ⟺ some query's `bound` is `Infeasible`.
fn check_infeasibility_coincides(seed: u64, n: usize) {
    let universe = Universe::of_size(n);
    let (premises, knowns) = random_state(seed, n);
    let session = fresh_session(&universe, &premises, &knowns);

    let analysis = session.snapshot().analyze().analysis;
    let engine_infeasible = (0..(1u64 << n))
        .any(|bits| session.bound(AttrSet::from_bits(bits)) == Err(DeriveError::Infeasible));
    assert_eq!(
        analysis.conflict.is_some(),
        engine_infeasible,
        "analyzer verdict diverged from the engine on premises={premises:?} knowns={knowns:?}"
    );
    if let Some(conflict) = &analysis.conflict {
        // The reported minimal conflict must itself be infeasible: keeping
        // only those knowns still triggers `Infeasible` somewhere.
        let narrowed = fresh_session(&universe, &premises, conflict);
        assert!(
            (0..(1u64 << n)).any(|bits| {
                narrowed.bound(AttrSet::from_bits(bits)) == Err(DeriveError::Infeasible)
            }),
            "reported conflict {conflict:?} is not actually infeasible"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// ISSUE 10 satellite (c): answering from `minimal_core()` never changes
    /// `implies`/`bound` answers versus the full-family oracle, 1000 cases.
    #[test]
    fn minimal_core_preserves_answers(seed in any::<u64>(), n in 2usize..=5) {
        check_core_equivalence(seed, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// ISSUE 10 satellite (c): the analyzer's infeasibility verdict
    /// coincides exactly with the engine's infeasible `bound` result.
    #[test]
    fn infeasibility_verdict_coincides_with_engine(seed in any::<u64>(), n in 2usize..=5) {
        check_infeasibility_coincides(seed, n);
    }
}

/// `analyze apply` through the protocol front door: the session answers
/// identically after its premise family is swapped for the minimal core.
#[test]
fn apply_core_preserves_answers_through_session() {
    for seed in 0..40u64 {
        let n = 2 + (seed % 4) as usize;
        let universe = Universe::of_size(n);
        let (premises, knowns) = random_state(seed.wrapping_mul(0xA24B_AED4_963E_E407), n);
        let mut session = fresh_session(&universe, &premises, &knowns);
        let before: Vec<Result<_, _>> = (0..(1u64 << n))
            .map(|bits| session.bound(AttrSet::from_bits(bits)).map(|o| o.interval))
            .collect();
        let applied = session.apply_core().expect("certificate verifies");
        assert_eq!(applied.after, session.premises().len());
        assert_eq!(applied.before - applied.dropped, applied.after);
        let after: Vec<Result<_, _>> = (0..(1u64 << n))
            .map(|bits| session.bound(AttrSet::from_bits(bits)).map(|o| o.interval))
            .collect();
        assert_eq!(
            before, after,
            "apply_core changed bound answers at seed {seed}"
        );
    }
}
