//! The readiness-driven reactor core behind [`crate::net::NetServer`]: a
//! small number of event-loop threads multiplexing every accepted
//! connection over nonblocking sockets and a vendored `epoll` instance,
//! instead of one blocking thread per connection.
//!
//! # Why a reactor
//!
//! The thread-per-connection server spent most of its samples parked in
//! blocking reads and paid a full wake/park round trip per request — the
//! *transport tax* the profiler surfaced as two thirds of connection-thread
//! time.  The reactor turns that inside out: one thread waits once for the
//! whole ready set, drains every readable connection into its frame buffer,
//! feeds the complete frames straight into that connection's [`Pipeline`],
//! and only then flushes replies — so a readiness burst with k pipelined
//! requests becomes one batched evaluation wave and a handful of syscalls,
//! not k wakeups.
//!
//! # Event-loop shape
//!
//! Each reactor owns an [`Epoll`] instance (level-triggered — correctness
//! under partial drains and backpressure needs no re-arm bookkeeping), a
//! connection slab indexed by epoll token, and a [`UnixStream`] waker pair
//! through which the accept loop injects new connections and the shutdown
//! path stops the loop.  One iteration:
//!
//! 1. `epoll_wait` for the ready set (one `reactor.wait` profile stage, one
//!    `diffcond_reactor_wakeups_total` tick, the batch size recorded in
//!    `diffcond_reactor_ready_batch`).
//! 2. For every ready connection: flush its output buffer if writable,
//!    then drain its socket to `WOULD_BLOCK` and parse/serve every complete
//!    frame (text lines or [`protocol::binary`] frames, negotiated by the
//!    first bytes).
//! 3. **Eager idle flush**: every connection the burst touched that still
//!    has pending deferred queries is flushed ([`Pipeline::finish`]) before
//!    the reactor waits again — a strict request/response client's queue
//!    wait is the parse-to-flush gap, not a polling interval.
//! 4. Output buffers are written out with vectored (`writev`) syscalls; a
//!    `WOULD_BLOCK` arms writable readiness instead of blocking the loop.
//!
//! # Backpressure
//!
//! Replies coalesce in a per-connection chunk list ([`OutBuf`]).  Past a
//! high-water mark the reactor stops *reading* that connection (its
//! requests stay in the kernel socket buffer, which eventually stalls the
//! sender) until the backlog drains below a low-water mark — a slow reader
//! costs bounded memory and never stalls the reactor or its neighbours.

use crate::metrics::{ConnCosts, EngineMetrics};
use crate::net::{ActiveGuard, NetConfig};
use crate::protocol::{self, binary, Reply};
use crate::server_state::Pipeline;
use diffcon_obs::profile::{self, StageTag};
use diffcon_obs::Gauge;
use epoll::{Epoll, Events, Interest};
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Profiling tag for the blocked heart of the loop: a reactor sampled in
/// `reactor.wait` is idle in `epoll_wait`, covering every client's
/// think-time at once.
static STAGE_REACTOR_WAIT: StageTag = StageTag::new("reactor.wait");
/// Profiling tag for socket drains and request parsing.
static STAGE_NET_READ: StageTag = StageTag::new("net.read");
/// Profiling tag for reply encoding and vectored flushes.
static STAGE_NET_WRITE: StageTag = StageTag::new("net.write");

/// Epoll token of the waker's read end; connection tokens are slab indices,
/// which can never reach this.
const WAKER_TOKEN: u64 = u64::MAX;
/// Bytes per nonblocking read into a connection's frame buffer.
const READ_CHUNK: usize = 64 * 1024;
/// Ready events fetched per `epoll_wait`.
const EVENT_CAPACITY: usize = 1024;
/// Output-buffer size at which the reactor stops reading a connection's
/// requests (a slow reader costs bounded memory, never reactor stalls).
const OUT_HIGH_WATER: usize = 1 << 20;
/// Output-buffer size below which reading is re-armed (hysteresis, so a
/// connection hovering at the mark does not flap its epoll interest).
const OUT_LOW_WATER: usize = 256 * 1024;
/// Reply chunk granularity of [`OutBuf`].
const OUT_CHUNK: usize = 32 * 1024;
/// Output backlog at which a *mid-burst* flush is attempted, so clients
/// start draining replies while the reactor is still parsing and deciding
/// the rest of a large pipelined burst (server decide work and client
/// reply-drain work overlap instead of alternating in lockstep phases).
const OUT_EAGER_FLUSH: usize = 2 * OUT_CHUNK;
/// Most chunks handed to one vectored write.
const MAX_IOVECS: usize = 64;

/// The accept-loop-facing half of one reactor: the injection inbox, the
/// waker that interrupts `epoll_wait`, and the load gauge the least-loaded
/// dispatch reads.
pub(crate) struct ReactorShared {
    index: usize,
    epoll: Epoll,
    inbox: Mutex<Vec<(TcpStream, ActiveGuard)>>,
    waker_tx: UnixStream,
    waker_rx: UnixStream,
    stop: AtomicBool,
    load: AtomicUsize,
}

impl ReactorShared {
    /// Builds the epoll instance and waker pair for reactor `index`.
    pub(crate) fn new(index: usize) -> io::Result<Arc<ReactorShared>> {
        let epoll = Epoll::new()?;
        let (waker_tx, waker_rx) = UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        epoll.add(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        Ok(Arc::new(ReactorShared {
            index,
            epoll,
            inbox: Mutex::new(Vec::new()),
            waker_tx,
            waker_rx,
            stop: AtomicBool::new(false),
            load: AtomicUsize::new(0),
        }))
    }

    /// Connections this reactor is serving or has queued for adoption.
    pub(crate) fn load(&self) -> usize {
        self.load.load(Ordering::Relaxed)
    }

    /// Hands an accepted connection to this reactor (called from the accept
    /// loop; the admission guard rides along so teardown is accounted no
    /// matter where the connection dies).
    pub(crate) fn inject(&self, stream: TcpStream, guard: ActiveGuard) {
        self.load.fetch_add(1, Ordering::Relaxed);
        self.inbox
            .lock()
            // A poisoned inbox only means another thread panicked mid-push;
            // the Vec itself is still structurally sound, so keep serving.
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push((stream, guard));
        self.wake();
    }

    /// Flags the event loop to exit and interrupts its `epoll_wait`.
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake();
    }

    /// Interrupts `epoll_wait`.  A full pipe means a wake is already
    /// pending, so the error is ignored.
    fn wake(&self) {
        let _ = (&self.waker_tx).write(&[1]);
    }

    /// Drains pending wake bytes so level-triggered readiness stops firing.
    fn drain_waker(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n == sink.len()) {}
    }
}

/// Decrements the owning reactor's load gauge on connection teardown.
struct LoadGuard(Arc<ReactorShared>);

impl Drop for LoadGuard {
    fn drop(&mut self) {
        self.0.load.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Wire framing of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Framing {
    /// First bytes not seen yet (only under `serve --binary`): waiting to
    /// see whether they are [`binary::MAGIC`].
    Negotiating,
    /// Newline-delimited text lines (the default).
    Text,
    /// Length-prefixed binary frames ([`protocol::binary`]).
    Binary,
}

/// A connection's coalescing output buffer: replies accumulate in a chunk
/// list and leave through vectored writes, so one flush syscall carries a
/// whole burst's replies.
#[derive(Default)]
struct OutBuf {
    chunks: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of the front chunk already written.
    head: usize,
    /// Unwritten bytes across all chunks.
    len: usize,
}

impl OutBuf {
    fn append(&mut self, bytes: &[u8]) {
        self.len += bytes.len();
        match self.chunks.back_mut() {
            Some(tail) if tail.len() < OUT_CHUNK => tail.extend_from_slice(bytes),
            _ => {
                let mut chunk = Vec::with_capacity(OUT_CHUNK.max(bytes.len()));
                chunk.extend_from_slice(bytes);
                self.chunks.push_back(chunk);
            }
        }
    }

    /// Writes as much as the socket accepts with vectored syscalls.
    /// `Ok(true)` means drained; `Ok(false)` means the socket would block
    /// (arm writable readiness and come back).
    fn flush(&mut self, stream: &TcpStream, metrics: &EngineMetrics) -> io::Result<bool> {
        while self.len > 0 {
            let mut slices = Vec::with_capacity(self.chunks.len().min(MAX_IOVECS));
            for (slot, chunk) in self.chunks.iter().take(MAX_IOVECS).enumerate() {
                let from = if slot == 0 { self.head } else { 0 };
                slices.push(IoSlice::new(&chunk[from..]));
            }
            let written = match (&*stream).write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(written) => written,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            };
            metrics.reactor_writev_bytes.record(written as u64);
            self.consume(written);
        }
        Ok(true)
    }

    /// Advances past `written` flushed bytes, releasing drained chunks.
    fn consume(&mut self, mut written: usize) {
        self.len -= written;
        while written > 0 {
            let Some(front) = self.chunks.front() else {
                // The kernel never reports more written than was submitted;
                // if accounting ever disagreed, stopping here self-heals.
                return;
            };
            let front_len = front.len() - self.head;
            if written < front_len {
                self.head += written;
                return;
            }
            written -= front_len;
            self.head = 0;
            self.chunks.pop_front();
        }
    }
}

/// One multiplexed connection: socket, negotiated framing, in-flight frame
/// buffer, output backlog, and its private protocol pipeline.
struct Conn {
    stream: TcpStream,
    framing: Framing,
    /// Raw request bytes; `[parse_at..]` is the unparsed tail.
    inbuf: Vec<u8>,
    parse_at: usize,
    /// Mid-discard of an over-cap text line: bytes dropped so far.
    discarding: Option<usize>,
    out: OutBuf,
    /// Reply-encode scratch, reused across replies.
    scratch: Vec<u8>,
    pipeline: Pipeline,
    costs: Arc<ConnCosts>,
    read_armed: bool,
    write_armed: bool,
    peer_eof: bool,
    /// No more requests will be served; close once `out` drains.
    closing: bool,
    /// Connection IO failed; drop without flushing.
    dead: bool,
    /// Member of the current burst's touched set.
    touched: bool,
    _active: ActiveGuard,
    _load: LoadGuard,
}

impl Conn {
    /// `true` when the slot can be torn down.
    fn reapable(&self) -> bool {
        self.dead || (self.closing && self.out.len == 0)
    }

    /// Reconciles the socket's epoll interest with the connection state:
    /// read while serving and under the output high-water mark (with
    /// hysteresis), write while a backlog is pending.
    fn sync_interest(&mut self, epoll: &Epoll, token: u64) {
        let backlogged = if self.read_armed {
            self.out.len >= OUT_HIGH_WATER
        } else {
            self.out.len >= OUT_LOW_WATER
        };
        let want_read = !self.closing && !self.dead && !self.peer_eof && !backlogged;
        let want_write = !self.dead && self.out.len > 0;
        if (want_read, want_write) == (self.read_armed, self.write_armed) {
            return;
        }
        let interest = Interest {
            read: want_read,
            write: want_write,
            edge: false,
        };
        if self.epoll_update(epoll, token, interest).is_err() {
            self.dead = true;
            return;
        }
        self.read_armed = want_read;
        self.write_armed = want_write;
    }

    fn epoll_update(&self, epoll: &Epoll, token: u64, interest: Interest) -> io::Result<()> {
        epoll.modify(self.stream.as_raw_fd(), token, interest)
    }

    /// Drains the socket to `WOULD_BLOCK` (or the backpressure mark),
    /// parsing and serving every complete frame as it lands.  `read_buf` is
    /// the reactor's shared read scratch — bytes land there first and only
    /// the received prefix is copied into the connection's frame buffer.
    fn on_readable(&mut self, config: &NetConfig, metrics: &EngineMetrics, read_buf: &mut [u8]) {
        let read_stage = profile::stage(&STAGE_NET_READ);
        loop {
            if self.out.len >= OUT_HIGH_WATER || self.closing || self.dead {
                break;
            }
            match (&self.stream).read(read_buf) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&read_buf[..n]);
                    self.parse(config, metrics);
                    // Stream a growing reply backlog out mid-burst: the
                    // peer drains replies concurrently with the decides
                    // still ahead.  `WOULD_BLOCK` here is fine — the
                    // burst-end flush and writable readiness take over.
                    if self.out.len >= OUT_EAGER_FLUSH && !self.dead {
                        let write_stage = profile::stage(&STAGE_NET_WRITE);
                        if self.out.flush(&self.stream, metrics).is_err() {
                            self.dead = true;
                        }
                        drop(write_stage);
                    }
                    if n < read_buf.len() {
                        // Likely drained; if more arrived meanwhile the
                        // level-triggered epoll reports it again.
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        drop(read_stage);
        if self.peer_eof && !self.closing && !self.dead {
            self.on_eof(config, metrics);
        }
    }

    /// Parses every complete frame buffered so far and compacts the buffer.
    fn parse(&mut self, config: &NetConfig, metrics: &EngineMetrics) {
        if self.framing == Framing::Negotiating {
            self.negotiate(metrics);
        }
        match self.framing {
            Framing::Negotiating => return,
            Framing::Text => self.parse_text(config, metrics),
            Framing::Binary => self.parse_binary(config, metrics),
        }
        if self.parse_at > 0 {
            self.inbuf.drain(..self.parse_at);
            self.parse_at = 0;
        }
    }

    /// Resolves the framing from the connection's first bytes: exactly
    /// [`binary::MAGIC`] switches to binary (answering [`binary::ACK`]);
    /// anything else — including a magic prefix that diverges — is text.
    fn negotiate(&mut self, metrics: &EngineMetrics) {
        let Some(&first) = self.inbuf.first() else {
            return;
        };
        if first != binary::MAGIC[0] {
            self.framing = Framing::Text;
            return;
        }
        if self.inbuf.len() < binary::MAGIC.len() {
            return; // Need the rest of the handshake (or EOF resolves it).
        }
        if self.inbuf[..binary::MAGIC.len()] == binary::MAGIC {
            self.parse_at = binary::MAGIC.len();
            self.framing = Framing::Binary;
            let handshake = binary::MAGIC.len() as u64;
            metrics.bytes_read.add(handshake);
            self.costs.bytes_read.add(handshake);
            self.out.append(&binary::ACK);
            let ack = binary::ACK.len() as u64;
            metrics.bytes_written.add(ack);
            self.costs.bytes_written.add(ack);
        } else {
            self.framing = Framing::Text;
        }
    }

    /// Serves every complete text line in the buffer (the framing semantics
    /// of [`crate::net`]'s `read_frame`, applied to a slice).
    fn parse_text(&mut self, config: &NetConfig, metrics: &EngineMetrics) {
        let max = config.max_request_bytes;
        while self.parse_at < self.inbuf.len() && !self.closing && !self.dead {
            let scan_start = Instant::now();
            // Finish an in-progress oversized-line discard first.
            if let Some(dropped) = self.discarding {
                match find_newline(&self.inbuf[self.parse_at..]) {
                    Some(pos) => {
                        self.parse_at += pos + 1;
                        self.discarding = None;
                        metrics.framing_errors.inc();
                        let (replies, _) =
                            self.pipeline
                                .push_reply(Reply::err(protocol::oversized_request(
                                    dropped + pos,
                                    max,
                                )));
                        emit_replies(
                            self.framing,
                            &mut self.out,
                            &mut self.scratch,
                            &self.costs,
                            metrics,
                            replies,
                        );
                        continue;
                    }
                    None => {
                        self.discarding = Some(dropped + self.inbuf.len() - self.parse_at);
                        self.parse_at = self.inbuf.len();
                        return;
                    }
                }
            }
            let Some(pos) = find_newline(&self.inbuf[self.parse_at..]) else {
                let buffered = self.inbuf.len() - self.parse_at;
                if buffered > max {
                    // Over the cap with no newline in sight: discard without
                    // buffering further, counting the dropped bytes.
                    self.discarding = Some(buffered);
                    self.parse_at = self.inbuf.len();
                }
                return;
            };
            let (replies, quit) = if pos > max {
                metrics.framing_errors.inc();
                self.pipeline
                    .push_reply(Reply::err(protocol::oversized_request(pos, max)))
            } else {
                let line = &self.inbuf[self.parse_at..self.parse_at + pos];
                let bytes_in = line.len() as u64 + 1;
                let frame_ns = scan_start.elapsed().as_nanos() as u64;
                metrics.frame_ns.record(frame_ns);
                metrics.frames.inc();
                metrics.bytes_read.add(bytes_in);
                self.costs.requests.inc();
                self.costs.bytes_read.add(bytes_in);
                match protocol::decode_request(line) {
                    Ok(text) => self.pipeline.push_line_io(text, bytes_in, frame_ns),
                    Err(message) => {
                        metrics.framing_errors.inc();
                        self.pipeline.push_reply(Reply::err(message))
                    }
                }
            };
            self.parse_at += pos + 1;
            emit_replies(
                self.framing,
                &mut self.out,
                &mut self.scratch,
                &self.costs,
                metrics,
                replies,
            );
            if quit {
                // Anything pipelined after `quit` is deliberately ignored.
                self.finish_and_close(metrics);
            }
        }
    }

    /// Serves every complete binary frame in the buffer.
    fn parse_binary(&mut self, config: &NetConfig, metrics: &EngineMetrics) {
        while self.parse_at < self.inbuf.len() && !self.closing && !self.dead {
            let scan_start = Instant::now();
            match binary::decode_request(&self.inbuf[self.parse_at..], config.max_request_bytes) {
                binary::Decoded::Incomplete => return,
                binary::Decoded::Fatal(message) => {
                    // A corrupt length-prefixed stream cannot resync: one
                    // err at its position in the order, then close.
                    metrics.framing_errors.inc();
                    let (replies, _) = self.pipeline.push_reply(Reply::err(message));
                    emit_replies(
                        self.framing,
                        &mut self.out,
                        &mut self.scratch,
                        &self.costs,
                        metrics,
                        replies,
                    );
                    self.finish_and_close(metrics);
                    return;
                }
                binary::Decoded::Frame(frame, used) => {
                    let frame_ns = scan_start.elapsed().as_nanos() as u64;
                    metrics.frame_ns.record(frame_ns);
                    metrics.frames.inc();
                    metrics.bytes_read.add(used as u64);
                    self.costs.requests.inc();
                    self.costs.bytes_read.add(used as u64);
                    let (replies, quit) =
                        self.pipeline.push_binary_io(&frame, used as u64, frame_ns);
                    self.parse_at += used;
                    emit_replies(
                        self.framing,
                        &mut self.out,
                        &mut self.scratch,
                        &self.costs,
                        metrics,
                        replies,
                    );
                    if quit {
                        self.finish_and_close(metrics);
                    }
                }
            }
        }
    }

    /// Clean end of input: serve a final unterminated text line if one is
    /// buffered (the last request of a piped script), release pending
    /// waves, and close once the output drains.  A binary frame truncated
    /// by disconnect is not salvageable and just ends the connection.
    fn on_eof(&mut self, config: &NetConfig, metrics: &EngineMetrics) {
        if self.framing == Framing::Negotiating {
            // Disconnect inside the handshake: whatever arrived is a
            // malformed text fragment; serve it as such.
            self.framing = Framing::Text;
        }
        if self.framing == Framing::Text && self.discarding.is_none() {
            self.parse_text(config, metrics);
            if !self.closing && self.parse_at < self.inbuf.len() {
                let line = self.inbuf.split_off(self.parse_at);
                let bytes_in = line.len() as u64 + 1;
                metrics.frames.inc();
                metrics.bytes_read.add(bytes_in);
                self.costs.requests.inc();
                self.costs.bytes_read.add(bytes_in);
                let (replies, _) = match protocol::decode_request(&line) {
                    Ok(text) => self.pipeline.push_line_io(text, bytes_in, 0),
                    Err(message) => {
                        metrics.framing_errors.inc();
                        self.pipeline.push_reply(Reply::err(message))
                    }
                };
                emit_replies(
                    self.framing,
                    &mut self.out,
                    &mut self.scratch,
                    &self.costs,
                    metrics,
                    replies,
                );
            }
        }
        if !self.closing {
            self.finish_and_close(metrics);
        }
    }

    /// Releases everything the pipeline still holds and marks the
    /// connection closing (teardown happens once the output drains).
    fn finish_and_close(&mut self, metrics: &EngineMetrics) {
        let replies = self.pipeline.finish();
        emit_replies(
            self.framing,
            &mut self.out,
            &mut self.scratch,
            &self.costs,
            metrics,
            replies,
        );
        self.closing = true;
    }

    /// Burst-end hook: flush pending waves eagerly so a waiting strict
    /// client is answered before the reactor sleeps.
    fn end_burst(&mut self, metrics: &EngineMetrics) {
        if !self.dead && !self.closing && self.pipeline.pending() > 0 {
            metrics.idle_flushes.inc();
            let replies = self.pipeline.finish();
            emit_replies(
                self.framing,
                &mut self.out,
                &mut self.scratch,
                &self.costs,
                metrics,
                replies,
            );
        }
        if self.out.len > 0 && !self.dead {
            let write_stage = profile::stage(&STAGE_NET_WRITE);
            if self.out.flush(&self.stream, metrics).is_err() {
                self.dead = true;
            }
            drop(write_stage);
        }
    }
}

/// Finds the next `\n` in `haystack`.
fn find_newline(haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == b'\n')
}

/// Encodes released replies into the connection's output buffer (silent
/// replies are skipped) with reply-stage accounting, one sample per reply:
/// each non-silent reply's encode-and-buffer latency feeds the `reply`
/// stage histogram and its flight record, and the encoded bytes are charged
/// to both the global counters and the connection's.
fn emit_replies(
    framing: Framing,
    out: &mut OutBuf,
    scratch: &mut Vec<u8>,
    costs: &ConnCosts,
    metrics: &EngineMetrics,
    replies: Vec<Reply>,
) {
    if replies.is_empty() {
        return;
    }
    let write_stage = profile::stage(&STAGE_NET_WRITE);
    for mut reply in replies {
        if reply.text.is_empty() {
            continue;
        }
        let start = Instant::now();
        scratch.clear();
        if framing == Framing::Binary {
            binary::encode_reply(&reply.text, scratch);
        } else {
            scratch.extend_from_slice(reply.text.as_bytes());
            scratch.push(b'\n');
        }
        out.append(scratch);
        let reply_ns = start.elapsed().as_nanos() as u64;
        let bytes = scratch.len() as u64;
        metrics.reply_ns.record(reply_ns);
        metrics.bytes_written.add(bytes);
        costs.bytes_written.add(bytes);
        if let Some(record) = reply.take_flight() {
            record.commit(reply_ns, bytes);
        }
    }
    drop(write_stage);
}

/// Adopts an accepted connection into the slab and registers its socket
/// with the epoll instance.  Failure just drops the connection (the guards
/// release its admission slot and load count); the return value is whether
/// the connection is now live.
fn register_conn(
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    shared: &Arc<ReactorShared>,
    stream: TcpStream,
    active: ActiveGuard,
    config: &NetConfig,
    metrics: &EngineMetrics,
) -> bool {
    let load = LoadGuard(Arc::clone(shared));
    // One request/one reply traffic benefits from immediate segments.
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    metrics.connections.inc();
    let mut pipeline = Pipeline::new(config.session, config.threads.max(1));
    pipeline.set_slow_query_us(config.slow_query_us);
    // Per-connection cost attribution, keyed by the pipeline's server
    // connection id (the same id its flight records and trace ids carry).
    let costs = Arc::new(ConnCosts::default());
    metrics.register_connection(pipeline.server().connection_id(), Arc::clone(&costs));
    let token = match free.pop() {
        Some(token) => token,
        None => {
            conns.push(None);
            conns.len() - 1
        }
    };
    if shared
        .epoll
        .add(stream.as_raw_fd(), token as u64, Interest::READ)
        .is_err()
    {
        free.push(token);
        return false;
    }
    conns[token] = Some(Conn {
        stream,
        framing: if config.binary {
            Framing::Negotiating
        } else {
            Framing::Text
        },
        inbuf: Vec::new(),
        parse_at: 0,
        discarding: None,
        out: OutBuf::default(),
        scratch: Vec::new(),
        pipeline,
        costs,
        read_armed: true,
        write_armed: false,
        peer_eof: false,
        closing: false,
        dead: false,
        touched: false,
        _active: active,
        _load: load,
    });
    true
}

/// The reactor event loop: runs until [`ReactorShared::request_stop`],
/// serving every connection injected through [`ReactorShared::inject`].
pub(crate) fn run(shared: Arc<ReactorShared>, config: NetConfig) {
    profile::set_thread_class("reactor");
    let metrics = EngineMetrics::global();
    let live_gauge: Arc<Gauge> = metrics.register_reactor(shared.index);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = Events::with_capacity(EVENT_CAPACITY);
    let mut touched: Vec<usize> = Vec::new();
    let mut read_buf = vec![0u8; READ_CHUNK];
    let mut live: u64 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        let wait_stage = profile::stage(&STAGE_REACTOR_WAIT);
        let waited = shared.epoll.wait(&mut events, None);
        drop(wait_stage);
        if waited.is_err() {
            // An unusable epoll instance is unrecoverable for this reactor;
            // its connections are dropped (and their slots released).
            break;
        }
        metrics.reactor_wakeups.inc();
        metrics.reactor_ready_batch.record(events.len() as u64);
        touched.clear();
        for event in events.iter() {
            if event.token == WAKER_TOKEN {
                shared.drain_waker();
                let adopted: Vec<_> = shared
                    .inbox
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .drain(..)
                    .collect();
                for (stream, guard) in adopted {
                    if register_conn(
                        &mut conns, &mut free, &shared, stream, guard, &config, metrics,
                    ) {
                        live += 1;
                    }
                }
                live_gauge.set(live);
                continue;
            }
            let token = event.token as usize;
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            if !conn.touched {
                conn.touched = true;
                touched.push(token);
            }
            if event.is_error() && (conn.closing || conn.peer_eof) {
                // Error/hangup on a connection already past serving: the
                // peer cannot receive the backlog, so drop it.  A *live*
                // connection discovers errors through its read and write
                // paths instead, so buffered requests and replies are
                // served right up to the failure.
                conn.dead = true;
                continue;
            }
            if event.writable() && conn.out.len > 0 {
                let write_stage = profile::stage(&STAGE_NET_WRITE);
                if conn.out.flush(&conn.stream, metrics).is_err() {
                    conn.dead = true;
                }
                drop(write_stage);
                if conn.dead {
                    continue;
                }
            }
            if event.readable() && !conn.peer_eof && !conn.closing {
                conn.on_readable(&config, metrics, &mut read_buf);
            }
        }
        // Burst end: eager-flush every touched connection's pending waves,
        // push their output, reconcile interest, and reap the finished.
        for &token in &touched {
            let fd = {
                let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                    continue;
                };
                conn.touched = false;
                conn.end_burst(metrics);
                if !conn.reapable() {
                    conn.sync_interest(&shared.epoll, token as u64);
                }
                if !conn.reapable() {
                    continue;
                }
                conn.stream.as_raw_fd()
            };
            let _ = shared.epoll.delete(fd);
            conns[token] = None;
            free.push(token);
            live = live.saturating_sub(1);
            live_gauge.set(live);
        }
    }
    // Shutdown: a final best-effort flush, then drop every connection
    // (closing its sessions and releasing its admission slot).
    for conn in conns.iter_mut().flatten() {
        if !conn.dead && conn.out.len > 0 {
            let _ = conn.out.flush(&conn.stream, metrics);
        }
    }
    live_gauge.set(0);
}
