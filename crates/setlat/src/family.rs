//! Families of subsets: the `𝒴` in a differential constraint `X → 𝒴`.
//!
//! A [`Family`] is a finite *set* of subsets of the universe `S`.  It is kept
//! sorted and deduplicated so that two families with the same members compare
//! equal and hash identically.

use crate::attrset::AttrSet;
use crate::universe::Universe;
use std::fmt;

/// A set `𝒴` of subsets of the universe `S`.
///
/// Families are value types: construction normalizes the member list (sorted,
/// deduplicated) so `Eq`/`Hash`/`Ord` reflect set equality of the members.
///
/// The paper uses the notation `⋃𝒴` for the union of all members
/// ([`Family::union_all`]) and works extensively with families whose members
/// are singletons (`Ū = {{u} | u ∈ U}`, see [`Family::of_singletons`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Family {
    members: Vec<AttrSet>,
}

impl Family {
    /// The empty family `∅` (no members at all).
    ///
    /// Note the distinction the paper draws between the empty family and the
    /// family `{∅}` containing the empty set: `𝒲(∅) = {∅}` but a family that
    /// contains `∅` as a member makes every constraint with that right-hand side
    /// trivial only when `∅ ⊆ X`, i.e. always.
    pub fn empty() -> Self {
        Family {
            members: Vec::new(),
        }
    }

    /// Builds a family from an iterator of member sets, normalizing order and
    /// removing duplicates.
    pub fn from_sets<I: IntoIterator<Item = AttrSet>>(iter: I) -> Self {
        let mut members: Vec<AttrSet> = iter.into_iter().collect();
        members.sort();
        members.dedup();
        Family { members }
    }

    /// The family of singletons `{{u} | u ∈ U}` of a set `U` (written `Ū` in
    /// Section 4.2 of the paper).
    pub fn of_singletons(set: AttrSet) -> Self {
        Family::from_sets(set.iter().map(AttrSet::singleton))
    }

    /// The family `{Y}` with a single member.
    pub fn single(y: AttrSet) -> Self {
        Family { members: vec![y] }
    }

    /// Number of members `|𝒴|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` iff the family has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` iff `y` is a member of the family.
    pub fn contains(&self, y: AttrSet) -> bool {
        self.members.binary_search(&y).is_ok()
    }

    /// The members, sorted.
    pub fn members(&self) -> &[AttrSet] {
        &self.members
    }

    /// Iterates over the members, in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = AttrSet> + '_ {
        self.members.iter().copied()
    }

    /// The union of all members, `⋃𝒴`.  For the empty family this is `∅`.
    pub fn union_all(&self) -> AttrSet {
        self.members
            .iter()
            .fold(AttrSet::EMPTY, |acc, &m| acc.union(m))
    }

    /// Returns the family `𝒴 ∪ {Z}`.
    pub fn with_member(&self, z: AttrSet) -> Family {
        let mut members = self.members.clone();
        if let Err(pos) = members.binary_search(&z) {
            members.insert(pos, z);
        }
        Family { members }
    }

    /// Returns the family `𝒴 − {Z}`.
    pub fn without_member(&self, z: AttrSet) -> Family {
        let mut members = self.members.clone();
        if let Ok(pos) = members.binary_search(&z) {
            members.remove(pos);
        }
        Family { members }
    }

    /// Returns the union of two families (as sets of sets).
    pub fn union(&self, other: &Family) -> Family {
        Family::from_sets(self.iter().chain(other.iter()))
    }

    /// Returns `true` iff some member of the family is empty.
    ///
    /// A constraint `X → 𝒴` with `∅ ∈ 𝒴` is always trivial.
    pub fn has_empty_member(&self) -> bool {
        self.members.first().is_some_and(|m| m.is_empty())
    }

    /// Returns `true` iff some member of the family is a subset of `x`.
    ///
    /// This is exactly the paper's triviality condition for `X → 𝒴`
    /// (Definition 3.1): `X → 𝒴` is trivial iff `Y ⊆ X` for some `Y ∈ 𝒴`.
    pub fn some_member_subset_of(&self, x: AttrSet) -> bool {
        self.members.iter().any(|&y| y.is_subset(x))
    }

    /// Returns `true` iff some member of the family is a subset of `u`.
    ///
    /// This is the key membership test of Proposition 2.9: a set `U` with
    /// `X ⊆ U` belongs to `L(X, 𝒴)` iff **no** member of `𝒴` is contained in `U`.
    pub fn some_member_contained_in(&self, u: AttrSet) -> bool {
        self.members.iter().any(|&y| y.is_subset(u))
    }

    /// Returns the family `{Y ∩ W | Y ∈ 𝒴}` of member-wise intersections with `W`
    /// (used in the proof of Proposition 4.6).
    pub fn intersect_members_with(&self, w: AttrSet) -> Family {
        Family::from_sets(self.iter().map(|y| y.intersect(w)))
    }

    /// Returns `true` iff every member consists of a single attribute.
    pub fn all_singletons(&self) -> bool {
        self.members.iter().all(|m| m.len() == 1)
    }

    /// A stable 64-bit fingerprint of the family.
    ///
    /// Because construction normalizes the member list, two families with the
    /// same members always produce the same fingerprint, across processes and
    /// runs.  The members' own fingerprints are folded in order with distinct
    /// multipliers so that `{{A}, {BC}}` and `{{AB}, {C}}` — identical as bit
    /// unions — fingerprint differently.  Used by the interning and caching
    /// layers of the query engine.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0x243F6A8885A308D3 ^ (self.members.len() as u64);
        for &m in &self.members {
            acc = acc
                .rotate_left(17)
                .wrapping_mul(0x100000001B3)
                .wrapping_add(m.fingerprint());
        }
        // Final avalanche so short families still fill all 64 bits.
        AttrSet::from_bits(acc).fingerprint()
    }

    /// Formats the family in the paper's notation, e.g. `"{B, CD}"`.
    pub fn format(&self, universe: &Universe) -> String {
        let items: Vec<String> = self
            .members
            .iter()
            .map(|&m| universe.format_set(m))
            .collect();
        format!("{{{}}}", items.join(", "))
    }
}

impl fmt::Debug for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Family{:?}", self.members)
    }
}

impl FromIterator<AttrSet> for Family {
    fn from_iter<T: IntoIterator<Item = AttrSet>>(iter: T) -> Self {
        Family::from_sets(iter)
    }
}

impl<'a> IntoIterator for &'a Family {
    type Item = AttrSet;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, AttrSet>>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let u = abcd();
        let f1 = Family::from_sets([
            u.parse_set("CD").unwrap(),
            u.parse_set("B").unwrap(),
            u.parse_set("B").unwrap(),
        ]);
        let f2 = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 2);
    }

    #[test]
    fn empty_vs_containing_empty() {
        let f = Family::empty();
        assert!(f.is_empty());
        assert!(!f.has_empty_member());
        let g = Family::single(AttrSet::EMPTY);
        assert!(!g.is_empty());
        assert!(g.has_empty_member());
    }

    #[test]
    fn union_all() {
        let u = abcd();
        let f = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]);
        assert_eq!(f.union_all(), u.parse_set("BCD").unwrap());
        assert_eq!(Family::empty().union_all(), AttrSet::EMPTY);
    }

    #[test]
    fn of_singletons() {
        let u = abcd();
        let f = Family::of_singletons(u.parse_set("ACD").unwrap());
        assert_eq!(f.len(), 3);
        assert!(f.all_singletons());
        assert!(f.contains(u.parse_set("A").unwrap()));
        assert!(f.contains(u.parse_set("C").unwrap()));
        assert!(f.contains(u.parse_set("D").unwrap()));
    }

    #[test]
    fn with_without_member() {
        let u = abcd();
        let f = Family::single(u.parse_set("B").unwrap());
        let g = f.with_member(u.parse_set("CD").unwrap());
        assert_eq!(g.len(), 2);
        assert_eq!(g.with_member(u.parse_set("B").unwrap()), g);
        assert_eq!(g.without_member(u.parse_set("CD").unwrap()), f);
        assert_eq!(f.without_member(u.parse_set("AC").unwrap()), f);
    }

    #[test]
    fn triviality_condition() {
        let u = abcd();
        // A → {AB, CD} is not trivial; AB → {AB, CD} and ABC → {AB} are trivial.
        let fam = Family::from_sets([u.parse_set("AB").unwrap(), u.parse_set("CD").unwrap()]);
        assert!(!fam.some_member_subset_of(u.parse_set("A").unwrap()));
        assert!(fam.some_member_subset_of(u.parse_set("AB").unwrap()));
        assert!(fam.some_member_subset_of(u.parse_set("ABC").unwrap()));
    }

    #[test]
    fn member_containment_test() {
        let u = abcd();
        let fam = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]);
        assert!(!fam.some_member_contained_in(u.parse_set("AC").unwrap()));
        assert!(fam.some_member_contained_in(u.parse_set("ACD").unwrap()));
        assert!(fam.some_member_contained_in(u.parse_set("AB").unwrap()));
    }

    #[test]
    fn intersect_members() {
        let u = abcd();
        let fam = Family::from_sets([u.parse_set("AB").unwrap(), u.parse_set("CD").unwrap()]);
        let w = u.parse_set("BC").unwrap();
        let projected = fam.intersect_members_with(w);
        assert!(projected.contains(u.parse_set("B").unwrap()));
        assert!(projected.contains(u.parse_set("C").unwrap()));
        assert_eq!(projected.len(), 2);
    }

    #[test]
    fn family_union() {
        let u = abcd();
        let f = Family::single(u.parse_set("A").unwrap());
        let g = Family::single(u.parse_set("B").unwrap());
        let h = f.union(&g);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn formatting() {
        let u = abcd();
        let fam = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]);
        assert_eq!(fam.format(&u), "{B, CD}");
        assert_eq!(Family::empty().format(&u), "{}");
    }

    #[test]
    fn fingerprints_respect_set_equality() {
        let u = abcd();
        let f1 = Family::from_sets([u.parse_set("CD").unwrap(), u.parse_set("B").unwrap()]);
        let f2 = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]);
        assert_eq!(f1.fingerprint(), f2.fingerprint());
        // Same union of bits, different members ⇒ different fingerprints.
        let g1 = Family::from_sets([u.parse_set("A").unwrap(), u.parse_set("BC").unwrap()]);
        let g2 = Family::from_sets([u.parse_set("AB").unwrap(), u.parse_set("C").unwrap()]);
        assert_ne!(g1.fingerprint(), g2.fingerprint());
        // The empty family and {∅} differ too.
        assert_ne!(
            Family::empty().fingerprint(),
            Family::single(AttrSet::EMPTY).fingerprint()
        );
        // Distinct across many random families.
        let mut fps: Vec<u64> = (0u64..512)
            .map(|m| {
                Family::from_sets([
                    AttrSet::from_bits(m & 0xF),
                    AttrSet::from_bits((m >> 4) & 0x1F),
                ])
                .fingerprint()
            })
            .collect();
        fps.sort();
        fps.dedup();
        assert!(fps.len() > 300, "families collide too much: {}", fps.len());
    }
}
