//! Basket (transaction) databases.
//!
//! A [`BasketDb`] is the "list of baskets `B` over a set of items `S`" of the
//! paper's Section 6: an ordered multiset of itemsets.  The two fundamental
//! quantities derived from it are
//!
//! * the *cover* `B(X) = {i | X ⊆ B[i]}` — the positions of the baskets
//!   containing `X`; and
//! * the *support* `s_B(X) = |B(X)|` — how many baskets contain `X`.
//!
//! Covers are represented as sorted `Vec<usize>` of basket indices, which keeps
//! the disjunctive-constraint check `B(X) = ⋃_Y B(X ∪ Y)` (Definition 6.1) a
//! simple sorted-set comparison.

use setlat::{AttrSet, Universe};
use std::fmt;

/// A list of baskets (transactions) over an item universe.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BasketDb {
    universe_size: usize,
    baskets: Vec<AttrSet>,
}

impl BasketDb {
    /// Creates an empty database over a universe of `n` items.
    pub fn new(universe_size: usize) -> Self {
        BasketDb {
            universe_size,
            baskets: Vec::new(),
        }
    }

    /// Creates a database from a list of baskets.
    ///
    /// # Panics
    /// Panics if a basket contains an item outside the universe.
    pub fn from_baskets<I: IntoIterator<Item = AttrSet>>(universe_size: usize, baskets: I) -> Self {
        let baskets: Vec<AttrSet> = baskets.into_iter().collect();
        let full = AttrSet::full(universe_size);
        for (i, b) in baskets.iter().enumerate() {
            assert!(
                b.is_subset(full),
                "basket #{i} ({b:?}) contains items outside a universe of {universe_size}"
            );
        }
        BasketDb {
            universe_size,
            baskets,
        }
    }

    /// Parses a database from the paper's compact notation: one basket per
    /// line, e.g. `"AB\nACD\nB"`.  Empty lines denote empty baskets only when
    /// written as `"{}"`; otherwise they are skipped.
    pub fn parse(universe: &Universe, text: &str) -> Result<Self, setlat::universe::UniverseError> {
        let mut baskets = Vec::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            baskets.push(universe.parse_set(trimmed)?);
        }
        Ok(BasketDb::from_baskets(universe.len(), baskets))
    }

    /// Appends a basket.
    ///
    /// # Panics
    /// Panics if the basket contains items outside the universe.
    pub fn push(&mut self, basket: AttrSet) {
        assert!(
            basket.is_subset(AttrSet::full(self.universe_size)),
            "basket {basket:?} contains items outside the universe"
        );
        self.baskets.push(basket);
    }

    /// The number of items in the universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The number of baskets `|B|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.baskets.len()
    }

    /// Returns `true` iff there are no baskets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.baskets.is_empty()
    }

    /// The baskets, in list order.
    pub fn baskets(&self) -> &[AttrSet] {
        &self.baskets
    }

    /// The basket at position `i`.
    pub fn basket(&self, i: usize) -> AttrSet {
        self.baskets[i]
    }

    /// The cover `B(X) = {i | X ⊆ B[i]}`, as a sorted vector of basket indices.
    pub fn cover(&self, x: AttrSet) -> Vec<usize> {
        self.baskets
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if x.is_subset(b) { Some(i) } else { None })
            .collect()
    }

    /// The support `s_B(X) = |B(X)|`.
    pub fn support(&self, x: AttrSet) -> usize {
        self.baskets.iter().filter(|&&b| x.is_subset(b)).count()
    }

    /// The relative support `s_B(X) / |B|` (0 for an empty database).
    pub fn relative_support(&self, x: AttrSet) -> f64 {
        if self.baskets.is_empty() {
            0.0
        } else {
            self.support(x) as f64 / self.baskets.len() as f64
        }
    }

    /// The exact-multiplicity count `d^B(X) = |{i | B[i] = X}|` — how many times
    /// `X` occurs as a basket (not merely inside one).  Section 6.1 of the paper
    /// shows this equals the density of the support function.
    pub fn exact_count(&self, x: AttrSet) -> usize {
        self.baskets.iter().filter(|&&b| b == x).count()
    }

    /// Returns `true` iff `X` is frequent at absolute threshold `kappa`.
    pub fn is_frequent(&self, x: AttrSet, kappa: usize) -> bool {
        self.support(x) >= kappa
    }

    /// The set of distinct items occurring in at least one basket.
    pub fn occurring_items(&self) -> AttrSet {
        self.baskets
            .iter()
            .fold(AttrSet::EMPTY, |acc, &b| acc.union(b))
    }

    /// Formats the database, one basket per line, using the universe's notation.
    pub fn format(&self, universe: &Universe) -> String {
        self.baskets
            .iter()
            .map(|&b| universe.format_set(b))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Debug for BasketDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BasketDb({} baskets over {} items)",
            self.baskets.len(),
            self.universe_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> (Universe, BasketDb) {
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD").unwrap();
        (u, db)
    }

    #[test]
    fn parse_and_counts() {
        let (u, db) = sample_db();
        assert_eq!(db.len(), 5);
        assert_eq!(db.universe_size(), 4);
        assert_eq!(db.support(u.parse_set("A").unwrap()), 4);
        assert_eq!(db.support(u.parse_set("AB").unwrap()), 3);
        assert_eq!(db.support(u.parse_set("CD").unwrap()), 2);
        assert_eq!(db.support(AttrSet::EMPTY), 5);
        assert_eq!(db.support(u.parse_set("ABCD").unwrap()), 1);
    }

    #[test]
    fn cover_indices() {
        let (u, db) = sample_db();
        assert_eq!(db.cover(u.parse_set("AB").unwrap()), vec![0, 1, 4]);
        assert_eq!(db.cover(u.parse_set("D").unwrap()), vec![2, 4]);
        assert_eq!(db.cover(AttrSet::EMPTY), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exact_count_vs_support() {
        let (u, db) = sample_db();
        assert_eq!(db.exact_count(u.parse_set("AB").unwrap()), 1);
        assert_eq!(db.exact_count(u.parse_set("B").unwrap()), 1);
        assert_eq!(db.exact_count(u.parse_set("AD").unwrap()), 0);
        // exact_count ≤ support always.
        for x in u.all_subsets() {
            assert!(db.exact_count(x) <= db.support(x));
        }
    }

    #[test]
    fn relative_support() {
        let (u, db) = sample_db();
        assert!((db.relative_support(u.parse_set("A").unwrap()) - 0.8).abs() < 1e-12);
        let empty = BasketDb::new(3);
        assert_eq!(empty.relative_support(AttrSet::EMPTY), 0.0);
    }

    #[test]
    fn frequency_threshold() {
        let (u, db) = sample_db();
        assert!(db.is_frequent(u.parse_set("AB").unwrap(), 3));
        assert!(!db.is_frequent(u.parse_set("AB").unwrap(), 4));
    }

    #[test]
    fn occurring_items() {
        let u = Universe::of_size(5);
        let db = BasketDb::parse(&u, "AB\nC").unwrap();
        assert_eq!(db.occurring_items(), u.parse_set("ABC").unwrap());
    }

    #[test]
    fn push_and_format_roundtrip() {
        let u = Universe::of_size(3);
        let mut db = BasketDb::new(3);
        db.push(u.parse_set("AB").unwrap());
        db.push(u.parse_set("C").unwrap());
        let text = db.format(&u);
        let reparsed = BasketDb::parse(&u, &text).unwrap();
        assert_eq!(db, reparsed);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_universe_basket_panics() {
        let mut db = BasketDb::new(2);
        db.push(AttrSet::from_indices([5]));
    }

    #[test]
    fn monotonicity_of_support() {
        // The Apriori rule: X ⊆ Y implies s(X) ≥ s(Y).
        let (u, db) = sample_db();
        for x in u.all_subsets() {
            for y in u.all_subsets() {
                if x.is_subset(y) {
                    assert!(db.support(x) >= db.support(y));
                }
            }
        }
    }
}
