//! Mining the minimal satisfied disjunctive constraints of a dataset.
//!
//! # What is mined
//!
//! By Proposition 6.3 a basket database satisfies the disjunctive constraint
//! `X ⇒disj 𝒴` iff its support function satisfies the differential
//! constraint `X → 𝒴`, so the miner emits its finds directly as
//! [`DiffConstraint`]s, ready to be asserted as engine premises.
//!
//! The search space is the **canonical** constraints up to the configured
//! budgets: `|X| ≤ max_lhs`, `|𝒴| ≤ max_rhs`, every member of `𝒴` nonempty
//! and disjoint from `X`, and `𝒴` an antichain (no member contains another).
//! Every disjunctive constraint is semantically equal to exactly one
//! canonical constraint — dropping `X` from a member and dropping a member
//! that contains another both preserve the constraint's lattice
//! `L(X, 𝒴)`, and a nontrivial canonical constraint is uniquely determined
//! by its lattice — so nothing is lost by canonicalizing, and "the same
//! constraint twice" cannot happen.
//!
//! A satisfied canonical constraint is **minimal** when no *other* satisfied
//! canonical constraint within the budgets implies it (single-premise
//! differential implication, Theorem 3.5 — which by Proposition 6.4 is the
//! same relation as disjunctive-constraint implication).  The minimal
//! constraints are exactly the informative ones: everything else satisfied
//! within the budgets is a weakening of one of them.
//!
//! # How it is mined
//!
//! [`mine`] enumerates left-hand sides by increasing size through the
//! dataset's vertical index and prunes by support monotonicity: if
//! `s(X − {i}) = s(X)` for some `i ∈ X` then `X − {i} → 𝒴` is satisfied
//! whenever `X → 𝒴` is and implies it, so no minimal constraint lives at
//! `X` and the whole branch is skipped.  Zero-support sets contribute the
//! strongest constraint of all, `X → {}` (`f(X) = 0`).  For surviving `X`
//! the consequent families grow one member at a time in canonical order;
//! a member is only added when it covers a basket no earlier member covers
//! (irredundancy — a family with a contribution-free member is implied by
//! the same family without it), and a family that reaches full cover is
//! recorded and never extended (lattice monotonicity: every extension is a
//! weakening).  A final pass removes the candidates implied by another
//! candidate, which provably removes everything non-minimal.
//!
//! [`mine_bruteforce`] is the reference the property suite compares
//! against: enumerate *every* canonical constraint in the budgets, test
//! satisfaction by scanning the horizontal database (through
//! [`fis::DisjunctiveConstraint`], an independent implementation), and
//! filter to the minimal ones by pairwise implication.

use crate::dataset::Dataset;
use diffcon::{implication, DiffConstraint};
use fis::basket::BasketDb;
use fis::eclat::TidSet;
use fis::DisjunctiveConstraint;
use setlat::{powerset, AttrSet, Family, Universe};

/// Largest universe a serving layer should accept discovery requests on.
///
/// The miner's member pool enumerates `2^{|S|−|X|}` subsets per antecedent
/// regardless of budgets, and measured release-mode cost grows roughly 8×
/// per two added attributes (seconds at 14, minutes at 16, hours by 20).
/// Large *antecedent* budgets are safe past this cap — the
/// support-monotonicity prune saturates the `|X|` axis (measured ~8 s at
/// `max_lhs = 14`, `n = 14`, 200 baskets) — but the family budget is not;
/// see [`MAX_MINE_RHS_WORK`].
pub const MAX_MINE_UNIVERSE: usize = 14;

/// Bound on `max_rhs × |S|` for one mining request.
///
/// The family DFS explores up to `pool^{max_rhs}` combinations over a pool
/// of up to `2^{|S|}` members, so the universe cap alone does not bound it:
/// measured on 200 random baskets, `mine 2 3` at 14 attributes and
/// `mine 2 4` at 10 attributes both run past 20 s while every combination
/// with `max_rhs × |S| ≤ 33` finishes in a few seconds (`3 × 11` ≈ 4 s is
/// the measured worst).  Serving layers refuse requests above the bound up
/// front.
pub const MAX_MINE_RHS_WORK: usize = 33;

/// Search budgets for the miner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinerConfig {
    /// Largest antecedent size `|X|` explored.
    pub max_lhs: usize,
    /// Largest consequent family size `|𝒴|` explored.
    pub max_rhs: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            max_lhs: 2,
            max_rhs: 2,
        }
    }
}

/// Work counters for one mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Left-hand sides enumerated (within the `max_lhs` budget).
    pub lhs_considered: usize,
    /// Left-hand sides skipped by the support-monotonicity prune.
    pub lhs_pruned: usize,
    /// Family-search nodes visited.
    pub families_explored: usize,
    /// Satisfied candidates collected before minimization.
    pub candidates: usize,
    /// Single-premise implication checks spent on minimization.
    pub implication_checks: usize,
    /// Premise-set implication checks spent on the non-redundant cover.
    pub cover_checks: usize,
}

/// The outcome of a mining run.
#[derive(Debug, Clone, PartialEq)]
pub struct Discovery {
    /// The minimal satisfied canonical constraints within the budgets, in
    /// canonical order (see [`canonical_order`]).
    pub minimal: Vec<DiffConstraint>,
    /// A non-redundant cover of `minimal`: constraints already implied (as a
    /// set, via the engine's implication decider) by the earlier ones are
    /// dropped.  Asserting the cover gives the same deductive power as
    /// asserting everything in `minimal`.
    pub cover: Vec<DiffConstraint>,
    /// Work counters.
    pub stats: MinerStats,
}

/// The canonical ordering of mined constraints: by antecedent size, then
/// antecedent mask, then family size, then member masks.  Simpler (and
/// typically stronger) constraints sort first, which makes the greedy
/// non-redundant cover deterministic and small.
pub fn canonical_order(a: &DiffConstraint, b: &DiffConstraint) -> std::cmp::Ordering {
    (a.lhs.len(), a.lhs.bits(), a.rhs.len())
        .cmp(&(b.lhs.len(), b.lhs.bits(), b.rhs.len()))
        .then_with(|| a.rhs.members().cmp(b.rhs.members()))
}

/// Mines the minimal satisfied disjunctive constraints of `dataset` (as
/// differential constraints) within the budgets, plus their non-redundant
/// cover.
pub fn mine(dataset: &Dataset, config: &MinerConfig) -> Discovery {
    let universe = dataset.universe();
    let n = universe.len();
    let mut stats = MinerStats::default();
    let mut candidates: Vec<DiffConstraint> = Vec::new();

    for size in 0..=config.max_lhs.min(n) {
        for x in powerset::subsets_of_size(n, size) {
            stats.lhs_considered += 1;
            let cover_x = dataset.cover(x);
            // Support-monotonicity prune: a redundant attribute in X means
            // every constraint at X is implied by the same constraint at
            // X − {i}, so no minimal constraint lives here.
            if x.iter()
                .any(|i| dataset.support(x.without(i)) == cover_x.len())
            {
                stats.lhs_pruned += 1;
                continue;
            }
            if cover_x.is_empty() {
                // X is a minimal zero-support set: f(X) = 0, the strongest
                // constraint with antecedent X.
                candidates.push(DiffConstraint::new(x, Family::empty()));
                continue;
            }
            if config.max_rhs == 0 {
                continue;
            }
            // Candidate members: nonempty subsets of S − X that cover at
            // least one basket of cover(X), in canonical (size, mask) order.
            let rest = x.complement_in(n);
            let mut pool: Vec<(AttrSet, TidSet)> = Vec::new();
            for y in powerset::subsets(rest) {
                if y.is_empty() {
                    continue;
                }
                let mut contribution = dataset.cover(y);
                contribution.intersect_in_place(&cover_x);
                if !contribution.is_empty() {
                    pool.push((y, contribution));
                }
            }
            pool.sort_by_key(|(y, _)| (y.len(), y.bits()));
            let mut chosen: Vec<AttrSet> = Vec::new();
            search_families(
                x,
                &pool,
                0,
                &mut chosen,
                &cover_x,
                config.max_rhs,
                &mut candidates,
                &mut stats,
            );
        }
    }

    candidates.sort_by(canonical_order);
    stats.candidates = candidates.len();

    // Minimization: drop every candidate implied by another candidate.  Any
    // satisfied in-budget canonical constraint is implied by some candidate
    // (redundant families by an irredundant subfamily, pruned antecedents by
    // the same family on the pruned-to antecedent), and single-premise
    // implication is transitive, so checking against candidates alone is
    // exact.
    let minimal: Vec<DiffConstraint> = candidates
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            !candidates.iter().enumerate().any(|(j, other)| {
                *i != j
                    && other.lhs.is_subset(c.lhs)
                    // Necessary for L(c) ⊆ L(other): the minimum X of L(c)
                    // must itself lie in L(other).
                    && !other.rhs.some_member_subset_of(c.lhs)
                    && {
                        stats.implication_checks += 1;
                        implication::implies(universe, std::slice::from_ref(other), c)
                    }
            })
        })
        .map(|(_, c)| c.clone())
        .collect();

    // Greedy non-redundant cover in canonical order, deduplicated with the
    // engine's own (premise-set) implication decider.
    let mut cover: Vec<DiffConstraint> = Vec::new();
    for c in &minimal {
        stats.cover_checks += 1;
        if !implication::implies(universe, &cover, c) {
            cover.push(c.clone());
        }
    }

    Discovery {
        minimal,
        cover,
        stats,
    }
}

/// Depth-first family search for one antecedent: extend the family in pool
/// order, requiring every member to newly cover at least one basket, and
/// record (without extending) as soon as the whole cover is reached.
#[allow(clippy::too_many_arguments)]
fn search_families(
    x: AttrSet,
    pool: &[(AttrSet, TidSet)],
    start: usize,
    chosen: &mut Vec<AttrSet>,
    uncovered: &TidSet,
    remaining: usize,
    candidates: &mut Vec<DiffConstraint>,
    stats: &mut MinerStats,
) {
    stats.families_explored += 1;
    if uncovered.is_empty() {
        // Satisfied.  Extensions are weakenings (lattice monotonicity), so
        // this branch ends here.
        candidates.push(DiffConstraint::new(
            x,
            Family::from_sets(chosen.iter().copied()),
        ));
        return;
    }
    if remaining == 0 {
        return;
    }
    for (i, (y, contribution)) in pool.iter().enumerate().skip(start) {
        // Canonical families are antichains; the pool order makes a
        // subset-after-superset pick impossible and the progress test below
        // rejects superset-after-subset picks, but keep the intent explicit.
        if chosen.iter().any(|&c| c.is_subset(*y) || y.is_subset(c)) {
            continue;
        }
        let next_uncovered = uncovered.difference(contribution);
        if next_uncovered.len() == uncovered.len() {
            // No new basket covered: the member would be redundant, and a
            // family with a redundant member is implied by the family
            // without it.
            continue;
        }
        chosen.push(*y);
        search_families(
            x,
            pool,
            i + 1,
            chosen,
            &next_uncovered,
            remaining - 1,
            candidates,
            stats,
        );
        chosen.pop();
    }
}

/// Reference implementation: enumerate every canonical constraint within the
/// budgets, test satisfaction by scanning the horizontal database, and keep
/// the ones not implied by another satisfied one.  Exponential everywhere —
/// for the property suite and small experiments only.
pub fn mine_bruteforce(
    universe: &Universe,
    db: &BasketDb,
    config: &MinerConfig,
) -> Vec<DiffConstraint> {
    let n = universe.len();
    let mut satisfied: Vec<DiffConstraint> = Vec::new();
    for x in universe.all_subsets() {
        if x.len() > config.max_lhs {
            continue;
        }
        let rest = x.complement_in(n);
        let mut pool: Vec<AttrSet> = powerset::subsets(rest).filter(|y| !y.is_empty()).collect();
        pool.sort_by_key(|y| (y.len(), y.bits()));
        let mut chosen: Vec<AttrSet> = Vec::new();
        enumerate_canonical(db, x, &pool, 0, &mut chosen, config.max_rhs, &mut satisfied);
    }
    let minimal: Vec<DiffConstraint> = satisfied
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            !satisfied.iter().enumerate().any(|(j, other)| {
                *i != j && implication::implies(universe, std::slice::from_ref(other), c)
            })
        })
        .map(|(_, c)| c.clone())
        .collect();
    let mut minimal = minimal;
    minimal.sort_by(canonical_order);
    minimal
}

/// Enumerates every canonical family over `pool` (including the empty one)
/// and records the satisfied constraints.
fn enumerate_canonical(
    db: &BasketDb,
    x: AttrSet,
    pool: &[AttrSet],
    start: usize,
    chosen: &mut Vec<AttrSet>,
    remaining: usize,
    satisfied: &mut Vec<DiffConstraint>,
) {
    let family = Family::from_sets(chosen.iter().copied());
    let disjunctive = DisjunctiveConstraint::new(x, family.clone());
    if disjunctive.satisfied_by(db) {
        satisfied.push(DiffConstraint::new(x, family));
    }
    if remaining == 0 {
        return;
    }
    for (i, &y) in pool.iter().enumerate().skip(start) {
        if chosen.iter().any(|&c| c.is_subset(y) || y.is_subset(c)) {
            continue;
        }
        chosen.push(y);
        enumerate_canonical(db, x, pool, i + 1, chosen, remaining - 1, satisfied);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(text: &str, n: usize) -> Dataset {
        let u = Universe::of_size(n);
        let db = BasketDb::parse(&u, text).unwrap();
        Dataset::from_db(u, db)
    }

    fn parse(u: &Universe, text: &str) -> DiffConstraint {
        DiffConstraint::parse(text, u).unwrap()
    }

    #[test]
    fn textbook_example() {
        // Every basket containing A contains B or CD; D never occurs alone
        // with B absent, etc.  The headline find must be A → {B, CD}-style
        // structure; concretely check soundness and a known member.
        let ds = dataset("AB\nABC\nACD\nB\nABCD", 4);
        let discovery = mine(&ds, &MinerConfig::default());
        // Soundness: every mined constraint holds on the data.
        for c in &discovery.minimal {
            let d = DisjunctiveConstraint::new(c.lhs, c.rhs.clone());
            assert!(
                d.satisfied_by(ds.db()),
                "unsound find {}",
                c.format(ds.universe())
            );
        }
        // The headline find: every basket contains B or ACD, and nothing
        // stronger in budget subsumes it.
        let target = parse(ds.universe(), " -> {B, ACD}");
        assert!(
            discovery.minimal.contains(&target),
            "expected {} among {:?}",
            target.format(ds.universe()),
            discovery
                .minimal
                .iter()
                .map(|c| c.format(ds.universe()))
                .collect::<Vec<_>>()
        );
        // The paper-style A → {B, CD} holds on the data but is a weakening
        // of the headline find, so minimization must have dropped it — while
        // the mined set still implies it.
        let weaker = parse(ds.universe(), "A -> {B, CD}");
        assert!(DisjunctiveConstraint::new(weaker.lhs, weaker.rhs.clone()).satisfied_by(ds.db()));
        assert!(!discovery.minimal.contains(&weaker));
        assert!(implication::implies(
            ds.universe(),
            &discovery.minimal,
            &weaker
        ));
        // The cover is a subset of the minimal set with full deductive power.
        for c in &discovery.cover {
            assert!(discovery.minimal.contains(c));
        }
        for c in &discovery.minimal {
            assert!(
                implication::implies(ds.universe(), &discovery.cover, c),
                "cover loses {}",
                c.format(ds.universe())
            );
        }
    }

    #[test]
    fn matches_bruteforce_on_examples() {
        for text in ["AB\nABC\nACD\nB\nABCD", "AB\nAC\nABC\nBD\nD", "A\nB\nC", ""] {
            let ds = dataset(text, 4);
            let config = MinerConfig::default();
            let mined = mine(&ds, &config);
            let brute = mine_bruteforce(ds.universe(), ds.db(), &config);
            assert_eq!(mined.minimal, brute, "mismatch on {text:?}");
        }
    }

    #[test]
    fn empty_dataset_mines_the_empty_set_constraint() {
        let ds = dataset("", 3);
        let discovery = mine(&ds, &MinerConfig::default());
        // f(∅) = 0 implies every other satisfied constraint.
        assert_eq!(
            discovery.minimal,
            vec![DiffConstraint::new(AttrSet::EMPTY, Family::empty())]
        );
        assert_eq!(discovery.cover, discovery.minimal);
    }

    #[test]
    fn zero_support_sets_mine_as_negative_border() {
        // D never occurs: D → {} is minimal; AD → {} is not (implied).
        let ds = dataset("AB\nABC\nB", 4);
        let discovery = mine(
            &ds,
            &MinerConfig {
                max_lhs: 2,
                max_rhs: 1,
            },
        );
        let u = ds.universe();
        let d_zero = DiffConstraint::new(u.parse_set("D").unwrap(), Family::empty());
        assert!(discovery.minimal.contains(&d_zero));
        let ad_zero = DiffConstraint::new(u.parse_set("AD").unwrap(), Family::empty());
        assert!(!discovery.minimal.contains(&ad_zero));
    }

    #[test]
    fn budgets_are_respected() {
        let ds = dataset("AB\nABC\nACD\nB\nABCD\nBD", 4);
        for max_lhs in 0..=2 {
            for max_rhs in 0..=2 {
                let config = MinerConfig { max_lhs, max_rhs };
                let discovery = mine(&ds, &config);
                for c in &discovery.minimal {
                    assert!(c.lhs.len() <= max_lhs);
                    assert!(c.rhs.len() <= max_rhs);
                    for y in c.rhs.iter() {
                        assert!(!y.is_empty());
                        assert!(y.is_disjoint(c.lhs));
                    }
                }
            }
        }
    }

    #[test]
    fn stats_reflect_pruning() {
        let ds = dataset("AB\nABC\nACD\nB\nABCD", 4);
        let discovery = mine(&ds, &MinerConfig::default());
        assert!(discovery.stats.lhs_considered >= 11);
        assert!(
            discovery.stats.lhs_pruned > 0,
            "AB-style redundant antecedents must be pruned"
        );
        assert!(discovery.stats.candidates >= discovery.minimal.len());
        assert!(discovery.stats.families_explored > 0);
    }
}
