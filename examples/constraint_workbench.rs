//! A small "constraint workbench": load a set of differential constraints from
//! text, normalize it, and explore what it entails.
//!
//! Run with `cargo run --example constraint_workbench` (uses a built-in
//! constraint file), or pass a path to a file with one constraint per line:
//! `cargo run --example constraint_workbench -- my_constraints.txt`.
//!
//! The workbench demonstrates the "database administrator" workflow the paper's
//! theory enables:
//!   * redundancy removal (an irredundant cover of the constraint set);
//!   * witness and atomic decompositions of each constraint (Definition 4.4);
//!   * the implied single-member constraints (the FD-like consequences),
//!     computed in polynomial time when the set lies in the fragment;
//!   * interactive-style implication queries with either a machine-checked
//!     derivation or an explicit counterexample as evidence.

use diffcon::parser::parse_constraint_set;
use diffcon::prelude::*;
use diffcon::{counterexample, decompose, fd_fragment};
use setlat::Universe;

const DEFAULT_CONSTRAINTS: &str = "\
# Constraints over S = {A, B, C, D, E}
A -> {B, CD}
B -> {C}
A -> {C, D}
CD -> {E}
AB -> {C}
";

fn main() {
    let u = Universe::of_size(5);
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEFAULT_CONSTRAINTS.to_string(),
    };
    let constraints = parse_constraint_set(&text, &u).expect("valid constraint syntax");
    println!(
        "Loaded {} constraints over S = {{A,…,E}}:",
        constraints.len()
    );
    for c in &constraints {
        println!("  {}", c.format(&u));
    }

    // ── Redundancy removal ────────────────────────────────────────────────────
    let cover = implication::irredundant_cover(&u, &constraints);
    println!(
        "\nIrredundant cover ({} of {} constraints retained):",
        cover.len(),
        constraints.len()
    );
    for c in &cover {
        println!("  {}", c.format(&u));
    }
    assert!(implication::equivalent_sets(&u, &cover, &constraints));

    // ── Decompositions ────────────────────────────────────────────────────────
    println!("\nWitness decompositions (Definition 4.4):");
    for c in &cover {
        let parts = decompose::minimal_decomposition(c);
        let rendered: Vec<String> = parts.iter().map(|p| p.format(&u)).collect();
        println!("  {}  ⇝  {}", c.format(&u), rendered.join("  ;  "));
    }

    // ── FD-like consequences ──────────────────────────────────────────────────
    println!("\nImplied single-member constraints with singleton dependents:");
    if fd_fragment::set_in_fragment(&cover) {
        for c in fd_fragment::implied_singleton_constraints(&u, &cover) {
            println!("  {}", c.format(&u));
        }
    } else {
        // Outside the fragment we fall back to the general procedure, restricted
        // to small left-hand sides to keep the listing readable.
        let mut count = 0;
        for lhs in u.all_subsets().filter(|s| s.len() <= 2) {
            for a in 0..u.len() {
                if lhs.contains(a) {
                    continue;
                }
                let goal =
                    DiffConstraint::new(lhs, setlat::Family::single(setlat::AttrSet::singleton(a)));
                if implication::implies(&u, &cover, &goal) {
                    println!("  {}", goal.format(&u));
                    count += 1;
                }
            }
        }
        println!("  ({count} consequences with |X| ≤ 2)");
    }

    // ── Implication queries with evidence ─────────────────────────────────────
    let queries = ["A -> {E}", "B -> {E}", "E -> {A}", "AB -> {D, E}"];
    println!("\nImplication queries:");
    for q in queries {
        let goal = DiffConstraint::parse(q, &u).unwrap();
        if let Some(proof) = inference::derive(&u, &cover, &goal) {
            proof.verify(&u, &cover).expect("proofs verify");
            println!(
                "  ⊨ {}   (derivation with {} steps, depth {})",
                goal.format(&u),
                proof.size(),
                proof.depth()
            );
        } else {
            let ce = counterexample::find(&u, &cover, &goal).expect("refuted");
            println!(
                "  ⊭ {}   (counterexample: density concentrated on {})",
                goal.format(&u),
                u.format_set(ce.witness_set)
            );
        }
    }
}
