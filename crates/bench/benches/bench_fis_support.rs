//! E5 — Section 6: support-function construction, Apriori vs Eclat mining, and
//! disjunctive-constraint checking on Quest-style synthetic baskets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::fis_bridge;
use diffcon::DiffConstraint;
use diffcon_bench::workloads;
use fis::{apriori, eclat, support};
use setlat::Universe;

fn bench_fis_support(c: &mut Criterion) {
    let table_db = workloads::fis_workload(5, 10, 200);
    workloads::table_apriori_counts(&table_db, &[10, 20, 40, 80]).eprint();

    let mut group = c.benchmark_group("E5_fis_support");
    group.sample_size(15);
    for &baskets in &[100usize, 400, 1600] {
        let db = workloads::fis_workload(9, 12, baskets);
        group.bench_with_input(
            BenchmarkId::new("support_function", baskets),
            &db,
            |b, db| b.iter(|| support::support_function(db)),
        );
        let kappa = baskets / 10;
        group.bench_with_input(BenchmarkId::new("apriori", baskets), &db, |b, db| {
            b.iter(|| apriori::apriori(db, kappa).num_frequent())
        });
        group.bench_with_input(BenchmarkId::new("eclat", baskets), &db, |b, db| {
            b.iter(|| eclat::eclat(db, kappa).len())
        });
        let u = Universe::of_size(12);
        let constraints: Vec<DiffConstraint> = vec![
            DiffConstraint::parse("A -> {B, CD}", &u).unwrap(),
            DiffConstraint::parse("B -> {C}", &u).unwrap(),
            DiffConstraint::parse("EF -> {G, H}", &u).unwrap(),
        ];
        group.bench_with_input(
            BenchmarkId::new("constraint_check", baskets),
            &db,
            |b, db| {
                b.iter(|| {
                    constraints
                        .iter()
                        .filter(|c| fis_bridge::support_function_satisfies(db, c))
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fis_support);
criterion_main!(benches);
