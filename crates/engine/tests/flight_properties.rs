//! Flight-recorder invariants, exercised end to end through the protocol:
//!
//! * `debug recent` returns the most recent records newest-first, and every
//!   query this connection issued is present with its reply's trace id;
//! * trace ids are unique across concurrent TCP connections and strictly
//!   monotone within each connection;
//! * a live dump taken while another thread is writing records always
//!   parses — the seqlock ring never hands out a torn record.
//!
//! The flight ring is a process-wide global shared by every test in this
//! binary, so assertions filter by connection id (`trace >> 32`) where they
//! depend on *which* records appear, and validate format only where they
//! depend on *all* records.  Total traffic across the binary stays far
//! below the ring capacity (1024), so nothing tested here is ever evicted.

use diffcon_engine::{Client, NetConfig, NetServer, Server, SessionConfig};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(10);

/// Known verb and route vocabularies — a dumped record must use one of each.
const VERBS: &[&str] = &[
    "?", "implies", "batch", "bound", "witness", "derive", "explain", "mine",
];
const ROUTES: &[&str] = &[
    "?",
    "trivial",
    "fd",
    "lattice",
    "semantic",
    "sat",
    "cached",
    "propagation",
    "relaxed",
    "batch",
    "witness",
    "derive",
    "mine",
];

/// Extracts `key=value` from a reply or a rendered record.
fn field<'a>(text: &'a str, key: &str) -> &'a str {
    text.split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("field {key} missing in `{text}`"))
}

/// Splits a `debug recent` reply into rendered records (newest first) and
/// checks the advertised count matches.  Each record is returned as the
/// full `trace=… … epoch=…` token run.
fn parse_dump(reply: &str) -> Vec<String> {
    assert!(reply.starts_with("flight n="), "got: {reply}");
    let n: usize = field(reply, "n").parse().expect("n numeric");
    let records: Vec<String> = match reply.find("trace=") {
        Some(at) => reply[at..].split(" | ").map(str::to_string).collect(),
        None => Vec::new(),
    };
    assert_eq!(records.len(), n, "n= disagrees with record count: {reply}");
    records
}

/// Asserts one rendered record is complete and internally consistent:
/// all fourteen fields present, numerics numeric, verb/route from the
/// known vocabularies.  A torn read would fail here — a half-written
/// record decodes to out-of-range verb/route indices (rendered `?` is
/// only legal together with a zero trace, which `parse_dump` never
/// yields for committed records) or garbage numerics.
fn assert_wellformed(record: &str) {
    for key in [
        "trace",
        "conn",
        "slot",
        "cached",
        "in",
        "out",
        "frame_us",
        "queue_us",
        "plan_us",
        "decide_us",
        "reply_us",
        "epoch",
    ] {
        let value = field(record, key);
        assert!(
            value.parse::<u64>().is_ok(),
            "{key}={value} not numeric in `{record}`"
        );
    }
    let verb = field(record, "verb");
    assert!(VERBS.contains(&verb), "unknown verb {verb} in `{record}`");
    let route = field(record, "route");
    assert!(
        ROUTES.contains(&route),
        "unknown route {route} in `{record}`"
    );
    let trace: u64 = field(record, "trace").parse().unwrap();
    let conn: u64 = field(record, "conn").parse().unwrap();
    assert_eq!(trace >> 32, conn, "trace origin != conn in `{record}`");
}

/// `debug recent` holds every query this connection just ran, newest
/// first, with trace ids strictly decreasing down the dump and matching
/// the ids the replies advertised.
#[test]
fn debug_recent_is_newest_first_and_complete() {
    let mut server = Server::new(SessionConfig::default());
    server.handle_line("universe 4");
    server.handle_line("assert A->{B}");
    server.handle_line("assert B->{C}");
    let mut issued: Vec<u64> = Vec::new();
    for goal in ["A->{C}", "A->{B}", "B->{C}", "C->{A}", "A->{C}", "AB->{C}"] {
        let reply = server.handle_line(&format!("explain {goal}")).text;
        issued.push(field(&reply, "trace").parse().expect("trace numeric"));
    }
    let conn = issued[0] >> 32;
    let dump = server.handle_line("debug recent 1024").text;
    let ours: Vec<u64> = parse_dump(&dump)
        .iter()
        .inspect(|record| assert_wellformed(record))
        .map(|record| field(record, "trace").parse::<u64>().unwrap())
        .filter(|trace| trace >> 32 == conn)
        .collect();
    // Newest first: our records appear as the issued sequence reversed.
    let mut expected = issued.clone();
    expected.reverse();
    assert_eq!(ours, expected, "dump: {dump}");
    // And `debug trace` finds each one individually.
    for trace in issued {
        let one = server.handle_line(&format!("debug trace {trace}")).text;
        assert!(one.starts_with("flight n=1 "), "got: {one}");
        assert_eq!(field(&one, "trace"), trace.to_string());
        assert_eq!(field(&one, "verb"), "explain");
    }
}

fn spawn_server() -> (SocketAddr, diffcon_engine::ShutdownHandle) {
    let server = NetServer::bind("127.0.0.1:0", NetConfig::default()).expect("loopback bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect_timeout(&addr, DEADLINE).expect("connect");
    client.set_read_timeout(Some(DEADLINE)).expect("timeout");
    client
}

/// Across two live TCP connections, trace ids never collide, and within
/// each connection they are strictly increasing in issue order.
#[test]
fn trace_ids_are_unique_and_monotone_per_connection() {
    let (addr, handle) = spawn_server();
    let mut traces: Vec<Vec<u64>> = Vec::new();
    for _ in 0..2 {
        let mut client = connect(addr);
        client.request("universe 4").expect("universe");
        client.request("assert A->{B}").expect("assert");
        let mut own = Vec::new();
        for goal in ["A->{B}", "B->{A}", "A->{B}", "AB->{B}", "C->{D}"] {
            let reply = client.request(&format!("explain {goal}")).expect("explain");
            own.push(field(&reply, "trace").parse::<u64>().expect("trace"));
        }
        traces.push(own);
        client.quit().expect("quit");
    }
    handle.shutdown();
    let mut seen = HashSet::new();
    for own in &traces {
        for window in own.windows(2) {
            assert!(window[0] < window[1], "not monotone: {traces:?}");
        }
        for trace in own {
            assert!(seen.insert(*trace), "trace {trace} repeated: {traces:?}");
        }
    }
    let origins: HashSet<u64> = traces.iter().map(|own| own[0] >> 32).collect();
    assert_eq!(origins.len(), 2, "connections share an origin: {traces:?}");
}

/// Dumping the ring while another thread commits records never yields a
/// torn record: every dump parses and every record is well-formed.
#[test]
fn live_dump_never_tears() {
    let writer = std::thread::spawn(|| {
        let mut server = Server::new(SessionConfig::default());
        server.handle_line("universe 5");
        server.handle_line("assert A->{B}");
        for round in 0..60 {
            for goal in ["A->{B}", "B->{C}", "AC->{B}", "D->{E}"] {
                server.handle_line(&format!("implies {goal}"));
            }
            if round % 16 == 0 {
                std::thread::yield_now();
            }
        }
    });
    let mut reader = Server::new(SessionConfig::default());
    for _ in 0..200 {
        let dump = reader.handle_line("debug recent 20").text;
        for record in parse_dump(&dump) {
            assert_wellformed(&record);
        }
    }
    writer.join().expect("writer thread");
}
