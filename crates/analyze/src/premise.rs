//! Premise-core analysis: redundancy, infeasibility, and dead density
//! variables, with machine-checkable certificates.
//!
//! # Why dropping redundant premises preserves every answer
//!
//! Call a premise `p` *redundant* in the family `C` when `C ∖ {p} ⊨ p`.  By
//! Theorem 3.5 the implication decider is complete for semantic implication,
//! and single-direction coverage gives the key structural fact: `C' ⊨ p` iff
//! `L(p) ⊆ ⋃_{c ∈ C'} L(c)`.  So when [`minimal_core`] drops `p`, the
//! lattice `L(p)` is entirely inside the union of the remaining premises'
//! lattices, and the *zeroed region* `⋃_{c} L(c)` — the only thing either
//! decision procedure consumes — is unchanged:
//!
//! * **implication** answers `C ⊨ g ⟺ L(g) ⊆ ⋃ L(c)`, a function of the
//!   zeroed region only;
//! * **bounds** build the linear system over the *alive* density variables
//!   (the complement of the zeroed region), so the system — and with it
//!   every derived interval and every infeasibility verdict — is identical.
//!
//! The engine's `analyze apply` leans on exactly this: answering from the
//! reduced core is answer-equivalent, for `implies` and `bound` alike, and
//! the property suite pins it against the full-family oracle.
//!
//! # Certificates
//!
//! Trust in the reduction should not require re-running the analyzer:
//! [`MinimalCore`] carries, for every dropped premise, a *witness* subfamily
//! of the final core that implies it.  [`check_certificate`] re-verifies
//! each witness with one [`diffcon::implication::implies`] call per dropped
//! premise (plus the core's own irredundancy), so any consumer can validate
//! the reduction independently.

use diffcon::{density, implication, DiffConstraint};
use diffcon_bounds::derive::check_feasibility;
use diffcon_bounds::problem::PROPAGATION_UNIVERSE_CAP;
use diffcon_bounds::{BoundsConfig, BoundsProblem};
use setlat::{AttrSet, Universe};

/// One redundant premise: implied by the rest of the family, with a shrunk
/// witness subfamily that suffices on its own.
#[derive(Debug, Clone, PartialEq)]
pub struct Redundancy {
    /// Index of the premise in the analyzed family.
    pub index: usize,
    /// The redundant premise itself.
    pub premise: DiffConstraint,
    /// A subfamily of the *other* premises implying it (greedily shrunk, so
    /// dropping any witness member breaks the implication).
    pub witness: Vec<DiffConstraint>,
}

/// One premise dropped by [`minimal_core`], with its implying witness drawn
/// from the final core.
#[derive(Debug, Clone, PartialEq)]
pub struct Dropped {
    /// The dropped premise.
    pub premise: DiffConstraint,
    /// A subfamily of the final core implying the dropped premise.
    pub witness: Vec<DiffConstraint>,
}

/// The redundancy-reduced premise family plus its drop certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimalCore {
    /// The irredundant core, in original assertion order.
    pub core: Vec<DiffConstraint>,
    /// Every dropped premise with its implying witness (see
    /// [`check_certificate`]).
    pub dropped: Vec<Dropped>,
}

/// The full premise-program analysis of one frozen state.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Premises analyzed.
    pub premises: usize,
    /// Premises implied by the rest of the family, each with a witness.
    pub redundant: Vec<Redundancy>,
    /// `Some(minimal conflicting known set)` when the knowns contradict the
    /// premises under the side conditions *before any query is asked*;
    /// `None` when the state is feasible (as far as
    /// [`check_feasibility`] can tell).
    pub conflict: Option<Vec<(AttrSet, f64)>>,
    /// Density variables zeroed by the constraints yet still carried by some
    /// known's equation — pure dead weight in every bound derivation.
    pub dead_vars: usize,
    /// Up to [`DEAD_EXAMPLES`] example dead variables (as attribute sets).
    pub dead_examples: Vec<AttrSet>,
}

/// How many dead density variables [`Analysis::dead_examples`] lists.
pub const DEAD_EXAMPLES: usize = 4;

/// Analyzes one frozen premise/known state: redundancy with witnesses,
/// pre-query infeasibility with a minimal conflicting known set, and dead
/// density variables.  Pure — the state is never mutated, so a serving
/// layer can run this against an immutable snapshot.
pub fn analyze(problem: &BoundsProblem<'_>, config: &BoundsConfig) -> Analysis {
    let (dead_vars, dead_examples) = dead_density(problem);
    Analysis {
        premises: problem.constraints.len(),
        redundant: redundant_premises(problem.universe, problem.constraints),
        conflict: minimal_conflict(problem, config),
        dead_vars,
        dead_examples,
    }
}

/// The premises implied by the rest of the family, each with a greedily
/// shrunk witness subfamily.
pub fn redundant_premises(universe: &Universe, premises: &[DiffConstraint]) -> Vec<Redundancy> {
    (0..premises.len())
        .filter_map(|i| {
            let rest: Vec<DiffConstraint> = premises
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, p)| p.clone())
                .collect();
            implication::implies(universe, &rest, &premises[i]).then(|| Redundancy {
                index: i,
                premise: premises[i].clone(),
                witness: shrink_witness(universe, rest, &premises[i]),
            })
        })
        .collect()
}

/// Greedily removes witness members while the remainder still implies the
/// goal.  The caller guarantees the initial witness implies the goal.
fn shrink_witness(
    universe: &Universe,
    mut witness: Vec<DiffConstraint>,
    goal: &DiffConstraint,
) -> Vec<DiffConstraint> {
    let mut i = 0;
    while i < witness.len() {
        let candidate = witness.remove(i);
        if implication::implies(universe, &witness, goal) {
            continue;
        }
        witness.insert(i, candidate);
        i += 1;
    }
    witness
}

/// Reduces the family to an irredundant core by sequential removal (the
/// same order-dependent reduction as [`implication::irredundant_cover`]),
/// recording every dropped premise with a witness subfamily of the *final*
/// core that implies it.
///
/// Witnesses against the final core are sound even though drops interleave:
/// semantic implication is transitive, and every premise removed along the
/// way is implied by the survivors at its removal time, hence (inductively)
/// by the final core.
pub fn minimal_core(universe: &Universe, premises: &[DiffConstraint]) -> MinimalCore {
    let mut core: Vec<DiffConstraint> = premises.to_vec();
    let mut removed: Vec<DiffConstraint> = Vec::new();
    let mut i = 0;
    while i < core.len() {
        let candidate = core.remove(i);
        if implication::implies(universe, &core, &candidate) {
            removed.push(candidate);
        } else {
            core.insert(i, candidate);
            i += 1;
        }
    }
    let dropped = removed
        .into_iter()
        .map(|premise| {
            let witness = shrink_witness(universe, core.clone(), &premise);
            Dropped { premise, witness }
        })
        .collect();
    MinimalCore { core, dropped }
}

/// Verifies a [`MinimalCore`] certificate from scratch: every witness is a
/// subfamily of the core and implies its dropped premise, and the core
/// itself is irredundant (no member implied by the others).
pub fn check_certificate(universe: &Universe, result: &MinimalCore) -> bool {
    let witnesses_hold = result.dropped.iter().all(|d| {
        d.witness.iter().all(|w| result.core.contains(w))
            && implication::implies(universe, &d.witness, &d.premise)
    });
    let core_irredundant = (0..result.core.len()).all(|i| {
        let rest: Vec<DiffConstraint> = result
            .core
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, p)| p.clone())
            .collect();
        !implication::implies(universe, &rest, &result.core[i])
    });
    witnesses_hold && core_irredundant
}

/// Pre-query infeasibility with a deletion-minimal conflicting known set:
/// `None` when the knowns are jointly satisfiable, otherwise a subset that
/// is still infeasible but becomes feasible if any single member is
/// removed.
pub fn minimal_conflict(
    problem: &BoundsProblem<'_>,
    config: &BoundsConfig,
) -> Option<Vec<(AttrSet, f64)>> {
    if check_feasibility(problem, config).is_ok() {
        return None;
    }
    let mut kept: Vec<(AttrSet, f64)> = problem.knowns.to_vec();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept.remove(i);
        let trial = BoundsProblem {
            knowns: &kept,
            ..*problem
        };
        if check_feasibility(&trial, config).is_ok() {
            kept.insert(i, candidate);
            i += 1;
        }
    }
    Some(kept)
}

/// Counts the density variables zeroed by the constraints that still appear
/// in some known's superset row, with up to [`DEAD_EXAMPLES`] examples.
/// Returns `(0, [])` past [`PROPAGATION_UNIVERSE_CAP`] — the dense alive
/// table is off-limits there, matching the bound engine's own routing.
fn dead_density(problem: &BoundsProblem<'_>) -> (usize, Vec<AttrSet>) {
    let n = problem.universe.len();
    if n > PROPAGATION_UNIVERSE_CAP || problem.knowns.is_empty() || problem.constraints.is_empty() {
        return (0, Vec::new());
    }
    let alive = density::alive_table(problem.universe, problem.constraints);
    let mut count = 0;
    let mut examples = Vec::new();
    for mask in 0..(1u64 << n) {
        if alive[mask as usize] {
            continue;
        }
        let set = AttrSet::from_bits(mask);
        if problem.knowns.iter().any(|&(x, _)| x.is_subset(set)) {
            count += 1;
            if examples.len() < DEAD_EXAMPLES {
                examples.push(set);
            }
        }
    }
    (count, examples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffcon_bounds::SideConditions;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    fn knowns(u: &Universe, entries: &[(&str, f64)]) -> Vec<(AttrSet, f64)> {
        entries
            .iter()
            .map(|(s, v)| (u.parse_set(s).unwrap(), *v))
            .collect()
    }

    fn problem<'a>(
        u: &'a Universe,
        constraints: &'a [DiffConstraint],
        k: &'a [(AttrSet, f64)],
    ) -> BoundsProblem<'a> {
        BoundsProblem {
            universe: u,
            constraints,
            knowns: k,
            side: SideConditions::support(),
        }
    }

    #[test]
    fn transitive_closure_premise_is_redundant_with_witness() {
        let u = Universe::of_size(4);
        let c = parse(&u, &["A -> {B}", "B -> {C}", "A -> {C}"]);
        let redundant = redundant_premises(&u, &c);
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].index, 2);
        // The witness is the transitivity pair, shrunk to exactly it.
        assert_eq!(redundant[0].witness.len(), 2);
        assert!(implication::implies(
            &u,
            &redundant[0].witness,
            &redundant[0].premise
        ));
    }

    #[test]
    fn irredundant_family_reports_nothing() {
        let u = Universe::of_size(4);
        let c = parse(&u, &["A -> {B}", "C -> {D}"]);
        assert!(redundant_premises(&u, &c).is_empty());
        let core = minimal_core(&u, &c);
        assert_eq!(core.core, c);
        assert!(core.dropped.is_empty());
        assert!(check_certificate(&u, &core));
    }

    #[test]
    fn minimal_core_certificate_checks_out() {
        let u = Universe::of_size(5);
        // A chain plus two consequences of it.
        let c = parse(
            &u,
            &["A -> {B}", "B -> {C}", "A -> {C}", "C -> {D}", "B -> {D}"],
        );
        let core = minimal_core(&u, &c);
        assert_eq!(core.core.len() + core.dropped.len(), c.len());
        assert!(core.dropped.len() >= 2);
        assert!(check_certificate(&u, &core));
        // A corrupted certificate fails: swap a witness for an empty one.
        let mut bad = core.clone();
        bad.dropped[0].witness.clear();
        assert!(!check_certificate(&u, &bad));
    }

    #[test]
    fn duplicate_premise_is_dropped_from_the_core() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["A -> {B}", "A -> {B}"]);
        let core = minimal_core(&u, &c);
        assert_eq!(core.core.len(), 1);
        assert_eq!(core.dropped.len(), 1);
        assert!(check_certificate(&u, &core));
    }

    #[test]
    fn feasible_state_has_no_conflict() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["A -> {B}"]);
        let k = knowns(&u, &[("A", 4.0), ("AB", 4.0)]);
        let analysis = analyze(&problem(&u, &c, &k), &BoundsConfig::default());
        assert_eq!(analysis.conflict, None);
        assert_eq!(analysis.premises, 1);
    }

    #[test]
    fn minimal_conflict_pinpoints_the_contradiction() {
        let u = Universe::of_size(3);
        let c = parse(&u, &["A -> {B}"]);
        // f(∅) is irrelevant; A → {B} forces f(A) = f(AB), so 5 ≠ 3 is the
        // two-element conflict.
        let k = knowns(&u, &[("", 100.0), ("A", 5.0), ("AB", 3.0)]);
        let conflict = minimal_conflict(&problem(&u, &c, &k), &BoundsConfig::default()).unwrap();
        assert_eq!(conflict.len(), 2);
        let sets: Vec<AttrSet> = conflict.iter().map(|&(x, _)| x).collect();
        assert!(sets.contains(&u.parse_set("A").unwrap()));
        assert!(sets.contains(&u.parse_set("AB").unwrap()));
        // Minimality: removing either member restores feasibility.
        for i in 0..conflict.len() {
            let mut rest = conflict.clone();
            rest.remove(i);
            assert!(
                check_feasibility(&problem(&u, &c, &rest), &BoundsConfig::default()).is_ok(),
                "conflict set is not minimal"
            );
        }
    }

    #[test]
    fn dead_density_variables_are_counted() {
        let u = Universe::of_size(3);
        // A → {} kills the whole row [A, S]: every variable above A is dead.
        let c = parse(&u, &["A -> {}"]);
        let k = knowns(&u, &[("A", 0.0)]);
        let analysis = analyze(&problem(&u, &c, &k), &BoundsConfig::default());
        // Row [A, ABC] has 4 variables, all dead, all carried by the known.
        assert_eq!(analysis.dead_vars, 4);
        assert!(!analysis.dead_examples.is_empty());
        assert!(analysis
            .dead_examples
            .iter()
            .all(|s| u.parse_set("A").unwrap().is_subset(*s)));
        // The zero-valued known on a killed row is consistent.
        assert_eq!(analysis.conflict, None);
    }

    #[test]
    fn no_constraints_means_no_dead_variables() {
        let u = Universe::of_size(3);
        let k = knowns(&u, &[("A", 4.0)]);
        let analysis = analyze(&problem(&u, &[], &k), &BoundsConfig::default());
        assert_eq!(analysis.dead_vars, 0);
        assert!(analysis.dead_examples.is_empty());
    }
}
