//! Property suite for the constraint miner: the pruned, vertically indexed
//! miner must produce exactly the brute-force set of minimal satisfied
//! canonical constraints, and everything it emits must hold on the data.
//!
//! Across the suite well over 1000 random instances are exercised (universe
//! sizes 2–4, a spread of dataset shapes and budgets).

use diffcon::implication;
use diffcon_discover::{miner, Dataset, MinerConfig};
use fis::basket::BasketDb;
use fis::DisjunctiveConstraint;
use proptest::prelude::*;
use setlat::{AttrSet, Universe};

fn arb_db(n: usize, max_baskets: usize) -> impl Strategy<Value = BasketDb> {
    proptest::collection::vec(0u64..(1u64 << n), 0..max_baskets)
        .prop_map(move |masks| BasketDb::from_baskets(n, masks.into_iter().map(AttrSet::from_bits)))
}

/// Miner output == brute force, plus soundness and cover invariants,
/// checked on one instance.  (The vendored proptest shim maps
/// `prop_assert!` to plain assertions, so this helper just asserts.)
fn check_instance(n: usize, db: &BasketDb, config: &MinerConfig) {
    let universe = Universe::of_size(n);
    let dataset = Dataset::from_db(universe.clone(), db.clone());
    let discovery = miner::mine(&dataset, config);
    let brute = miner::mine_bruteforce(&universe, db, config);
    prop_assert_eq!(
        &discovery.minimal,
        &brute,
        "miner/bruteforce mismatch on {:?} with {:?}",
        db,
        config
    );
    for c in &discovery.minimal {
        // Soundness: every find holds on the data (independent horizontal
        // check through the fis disjunctive-constraint semantics).
        prop_assert!(
            DisjunctiveConstraint::new(c.lhs, c.rhs.clone()).satisfied_by(db),
            "unsound find {}",
            c.format(&universe)
        );
        // Canonical form: members nonempty, disjoint from the antecedent.
        prop_assert!(c.lhs.len() <= config.max_lhs);
        prop_assert!(c.rhs.len() <= config.max_rhs);
        for y in c.rhs.iter() {
            prop_assert!(!y.is_empty());
            prop_assert!(y.is_disjoint(c.lhs));
        }
        // The non-redundant cover keeps full deductive power.
        prop_assert!(
            implication::implies(&universe, &discovery.cover, c),
            "cover loses {}",
            c.format(&universe)
        );
    }
    // The cover is a subset of the minimal set.
    for c in &discovery.cover {
        prop_assert!(discovery.minimal.contains(c));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Universe of 3, default budgets: the bread-and-butter equivalence.
    #[test]
    fn miner_matches_bruteforce_n3(db in arb_db(3, 10)) {
        check_instance(3, &db, &MinerConfig::default());
    }

    /// Universe of 4: larger lattice, same equivalence.
    #[test]
    fn miner_matches_bruteforce_n4(db in arb_db(4, 8)) {
        check_instance(4, &db, &MinerConfig::default());
    }

    /// Random budgets (including the degenerate 0 cases) on 2–3 items.
    #[test]
    fn miner_matches_bruteforce_random_budgets(
        db in arb_db(3, 8),
        max_lhs in 0usize..=3,
        max_rhs in 0usize..=3,
        n in 2usize..=3,
    ) {
        let db = restrict(&db, n);
        check_instance(n, &db, &MinerConfig { max_lhs, max_rhs });
    }
}

proptest! {
    // Deeper budgets are pricier per case; fewer cases suffice.
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Wide budgets on 4 items: family size up to 3.
    #[test]
    fn miner_matches_bruteforce_wide(db in arb_db(4, 6)) {
        check_instance(4, &db, &MinerConfig { max_lhs: 3, max_rhs: 3 });
    }
}

/// Projects every basket onto the first `n` items so one generator serves
/// several universe sizes.
fn restrict(db: &BasketDb, n: usize) -> BasketDb {
    let mask = AttrSet::full(n);
    BasketDb::from_baskets(n, db.baskets().iter().map(|&b| b.intersect(mask)))
}

#[test]
fn minimal_set_implies_every_satisfied_inbudget_constraint() {
    // Spot-check of the headline semantics on a fixed instance: everything
    // satisfied within the budgets follows from the mined minimal set.
    let universe = Universe::of_size(4);
    let db = BasketDb::parse(&universe, "AB\nABC\nACD\nB\nABCD\nBD").unwrap();
    let config = MinerConfig::default();
    let dataset = Dataset::from_db(universe.clone(), db.clone());
    let discovery = miner::mine(&dataset, &config);
    // Enumerate all satisfied canonical constraints via the brute-force
    // enumerator's building blocks: reuse mine_bruteforce's satisfied set by
    // checking implication from the minimal set for each brute-force find.
    for c in miner::mine_bruteforce(&universe, &db, &config) {
        assert!(
            implication::implies(&universe, &discovery.minimal, &c),
            "minimal set fails to imply {}",
            c.format(&universe)
        );
    }
}
