//! Shared workload construction and reporting for the benchmark harness.
//!
//! The paper (*Differential Constraints*, PODS 2005) has no empirical section,
//! so each "experiment" in `EXPERIMENTS.md` measures a behaviour the paper
//! asserts analytically — the coNP blow-up of the general implication problem,
//! the polynomial behaviour of the FD fragment, the cost of the lattice
//! decision procedure, the savings of concise representations, and the
//! equivalence of the decision procedures across domains.  This crate holds
//! the workload generators and plain-text report tables used by the Criterion
//! benches in `benches/`, so that the numbers reported in `EXPERIMENTS.md` can
//! be regenerated from a single place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;

pub use report::{JsonReport, Table};
