//! # fis — frequent-itemset substrate
//!
//! Section 6 of *Differential Constraints* (Sayrafi & Van Gucht, PODS 2005)
//! connects differential constraints to the frequent-itemset (FIS) problem:
//! the support function `s_B` of a list of baskets `B` is a *frequency
//! function* (its density is nonnegative), a basket list satisfies the
//! disjunctive constraint `X ⇒disj 𝒴` iff `s_B` satisfies the differential
//! constraint `X → 𝒴` (Proposition 6.3), and the implication problems coincide
//! (Proposition 6.4).  Section 6.1.1 then applies this to *concise
//! representations* of frequent itemsets (the `FDFree`/`Bd⁻` representation of
//! Bykowski & Rigotti).
//!
//! This crate provides the machinery those sections rely on:
//!
//! * [`basket`] — transaction (basket) databases over an item universe;
//! * [`support`] — support functions, exact-multiplicity functions and their
//!   densities (the identity `d_{s_B} = d^B` of Section 6.1);
//! * [`apriori`] — the levelwise Apriori algorithm, including the negative
//!   border it explores;
//! * [`eclat`] — a vertical (tidset-intersection) miner used as a baseline;
//! * [`border`] — positive and negative borders of the frequent itemsets;
//! * [`disjunctive`] — disjunctive constraints and rules, disjunctive and
//!   disjunctive-free itemsets (Definitions 6.1 and 6.2);
//! * [`condensed`] — the `FDFree`/`Bd⁻` condensed representation and support
//!   reconstruction from it;
//! * [`vertical`] — a columnar per-item tidset index giving
//!   intersection-speed support and cover queries (the levelwise miners
//!   route their candidate counting through it);
//! * [`generator`] — synthetic basket generators (Quest-style and
//!   constraint-planted) used by the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod basket;
pub mod border;
pub mod condensed;
pub mod disjunctive;
pub mod eclat;
pub mod generator;
pub mod ndi;
pub mod support;
pub mod vertical;

pub use basket::{BasketDb, BasketParseError};
pub use disjunctive::DisjunctiveConstraint;
pub use vertical::VerticalIndex;
