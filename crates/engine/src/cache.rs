//! A bounded least-recently-used cache with hit/miss/eviction accounting.
//!
//! The engine memoizes three kinds of derived data — lattice decompositions,
//! propositional translations, and full query answers — all behind instances
//! of this one cache.  It is a classic slab-backed LRU: a `HashMap` from key
//! to slot index plus an intrusive doubly-linked recency list threaded
//! through a slot vector, so `get`, `insert` and eviction are all `O(1)`
//! expected.
//!
//! A capacity of `0` disables the cache entirely (every `get` misses, every
//! `insert` is a no-op), which the engine's tests use to prove answers do not
//! depend on caching.
//!
//! On top of the plain [`LruCache`] this module provides the concurrent
//! serving primitives of the snapshot architecture:
//!
//! * [`ShardedCache`] — `N` shards of `Mutex<LruCache>` addressed by key
//!   hash, so concurrent readers of a snapshot contend only when they hash
//!   to the same shard, with [`ShardedCache::stats`] aggregating the
//!   per-shard counters;
//! * [`VersionedKey`] — the one digest-versioning helper every query-path
//!   cache uses: a key salted with the session-state digests
//!   ([`version_salt`]), whose `Hash` touches only the salt and a
//!   precomputed payload fingerprint (two `u64`s) so hot-path lookups never
//!   rehash a constraint structure, while `Eq` still compares the payload
//!   structurally so fingerprint collisions cannot alias answers.

use crate::metrics::{CacheCounters, CacheFamily, EngineMetrics};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Counters describing how a cache has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// Entries displaced by inserts at capacity.
    pub evictions: u64,
    /// Present-but-rejected entries: a fingerprint-addressed lookup found
    /// the key but the stored payload failed verification (see
    /// [`LruCache::get_if`]), forcing a recomputation.  Collisions are a
    /// subset of `misses`.
    pub collisions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when the cache has never been queried.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set (shard aggregation).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.collisions += other.collisions;
    }

    /// The counter movement since `earlier` (saturating, so a snapshot pair
    /// read under concurrent traffic can never underflow).
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            collisions: self.collisions.saturating_sub(earlier.collisions),
        }
    }
}

/// A bounded LRU map from `K` to `V`.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Usage counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(&self.slots[slot].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` and projects the value through `f`.  Only a
    /// *verified* hit (`f` returning `Some`) is counted and promoted; a
    /// present-but-rejected entry is recorded as a miss and keeps its
    /// recency, so stats match what the caller actually served and a
    /// colliding entry earns no recency credit.
    pub fn get_if<Q, R>(&mut self, key: &Q, f: impl FnOnce(&V) -> Option<R>) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.map.get(key).copied() {
            Some(slot) => match f(&self.slots[slot].value) {
                Some(projected) => {
                    self.stats.hits += 1;
                    self.detach(slot);
                    self.attach_front(slot);
                    Some(projected)
                }
                None => {
                    self.stats.misses += 1;
                    self.stats.collisions += 1;
                    None
                }
            },
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or counters.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|&slot| &self.slots[slot].value)
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when at
    /// capacity.  Replacing an existing key promotes it.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    /// Drops every entry (counters are kept; they describe the lifetime of
    /// the cache, not its current contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// A key usable in a [`ShardedCache`]: hashable for the in-shard map, plus
/// a cheap 64-bit hint that picks the shard without running a full hasher.
///
/// The hint needs only enough mixing to spread across a handful of shards
/// (the cache finishes it with a Fibonacci multiply-shift); for
/// [`VersionedKey`] it is the already-premixed salt/fingerprint word, so a
/// hot-path lookup runs exactly one SipHash (the shard map's own), not two.
pub trait ShardKey: Hash + Eq + Clone {
    /// A well-spread 64-bit digest of the key.
    fn shard_hint(&self) -> u64;
}

impl ShardKey for u64 {
    fn shard_hint(&self) -> u64 {
        *self
    }
}

impl ShardKey for VersionedKey {
    fn shard_hint(&self) -> u64 {
        self.premix()
    }
}

/// A concurrent bounded LRU: `N` shards of `Mutex<LruCache>`, addressed by
/// the key's shard hint.  Readers of different shards never contend;
/// recency and eviction are maintained per shard, so the bound is exactly
/// `capacity` overall (split as evenly as the shard count allows) and the
/// eviction order is approximately-LRU.
///
/// `get` returns an owned clone of the value — every engine cache stores
/// either `Copy` data or an `Arc` — so no lock is held after the call
/// returns.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Box<[Mutex<LruCache<K, V>>]>,
    /// When set, every operation's counter movement is mirrored into these
    /// process-wide [`EngineMetrics`] counters (resolved once at
    /// construction, so the per-operation publish never touches the
    /// registry's `OnceLock`).  Untagged caches skip the bookkeeping
    /// entirely.
    counters: Option<&'static CacheCounters>,
}

impl<K: ShardKey, V: Clone> ShardedCache<K, V> {
    /// Creates a cache of `shards` shards bounding exactly `capacity`
    /// entries in total: the remainder of an uneven split goes one entry at
    /// a time to the leading shards, so [`ShardedCache::capacity`] equals
    /// the request.  A zero `capacity` disables the cache (as for
    /// [`LruCache`]); `shards` is clamped to `1..=capacity` so a shard
    /// never has capacity zero unless the whole cache is disabled.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let (base, extra) = (capacity / shards, capacity % shards);
        ShardedCache {
            shards: (0..shards)
                .map(|i| Mutex::new(LruCache::new(base + usize::from(i < extra))))
                .collect(),
            counters: None,
        }
    }

    /// Like [`ShardedCache::new`], additionally attributing every
    /// operation's hit/miss/eviction/collision movement to `family` in the
    /// process-wide metrics registry ([`EngineMetrics::global`]).  The
    /// engine's session caches are all family-tagged; untagged caches
    /// record nothing globally.
    pub fn named(family: CacheFamily, shards: usize, capacity: usize) -> Self {
        ShardedCache {
            counters: Some(EngineMetrics::global().cache(family)),
            ..ShardedCache::new(shards, capacity)
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards (exactly the `capacity` requested at
    /// construction).
    pub fn capacity(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).capacity())
            .sum()
    }

    /// Live entries across shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// Returns `true` iff no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated usage counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for i in 0..self.shards.len() {
            total.absorb(self.lock(i).stats());
        }
        total
    }

    /// Per-shard occupancy skew: the least and most populated shard.  A
    /// large spread under a warm workload means the shard hash is uneven
    /// for the key population (or the shard count outstrips the traffic),
    /// which is the signal `--cache-shards` tuning needs.
    pub fn occupancy(&self) -> ShardOccupancy {
        let mut occupancy = ShardOccupancy {
            min: usize::MAX,
            max: 0,
        };
        for i in 0..self.shards.len() {
            let len = self.lock(i).len();
            occupancy.min = occupancy.min.min(len);
            occupancy.max = occupancy.max.max(len);
        }
        occupancy
    }

    /// Looks up `key` in its shard, promoting it on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.lock(self.shard_of(key));
        let Some(counters) = self.counters else {
            return shard.get(key).cloned();
        };
        let before = shard.stats();
        let result = shard.get(key).cloned();
        counters.absorb_delta(shard.stats().since(before));
        result
    }

    /// Looks up `key` and projects the stored value through `f` while the
    /// shard lock is held.  `f` returning `None` (the engine uses it to
    /// verify a stored payload against the query before trusting a
    /// fingerprint-addressed entry) is a genuine miss: counted as one, not
    /// promoted, and nothing is cloned either way.
    pub fn get_if<R>(&self, key: &K, f: impl FnOnce(&V) -> Option<R>) -> Option<R> {
        let mut shard = self.lock(self.shard_of(key));
        let Some(counters) = self.counters else {
            return shard.get_if(key, f);
        };
        let before = shard.stats();
        let result = shard.get_if(key, f);
        counters.absorb_delta(shard.stats().since(before));
        result
    }

    /// Inserts `key → value` into its shard, evicting that shard's LRU entry
    /// at capacity.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.lock(self.shard_of(&key));
        let Some(counters) = self.counters else {
            shard.insert(key, value);
            return;
        };
        let before = shard.stats();
        shard.insert(key, value);
        counters.absorb_delta(shard.stats().since(before));
    }

    /// Drops every entry in every shard (counters are kept).
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.lock(i).clear();
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        // Fibonacci multiply-shift finishes the key's hint: the high bits
        // are well mixed even for sequential hints, and no hasher runs.
        let mixed = key.shard_hint().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) % self.shards.len() as u64) as usize
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, LruCache<K, V>> {
        // Lock poisoning cannot corrupt an LRU (every method leaves it
        // consistent or panics before mutating), so a poisoned shard is
        // still served rather than cascading the panic across readers.
        match self.shards[shard].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Per-shard occupancy skew of a [`ShardedCache`]
/// (see [`ShardedCache::occupancy`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Entries in the least populated shard.
    pub min: usize,
    /// Entries in the most populated shard.
    pub max: usize,
}

/// Combines the session-state digests into the one salt that versions every
/// cached answer: the premise digest XOR the (rotated) knowns digest.
///
/// The rotation keeps the two digest spaces from cancelling symmetrically
/// (`premises = D, knowns = ∅` must not collide with `premises = ∅,
/// knowns = D`).  Implication answers depend only on the premise set, so the
/// answer cache passes `knowns_digest = 0`; the bound cache passes both.
/// Either way, retracting a premise (or forgetting a known) changes the salt
/// and therefore instantly invalidates — and restoring the state instantly
/// revalidates — every affected entry.
pub fn version_salt(premise_digest: u64, knowns_digest: u64) -> u64 {
    premise_digest ^ knowns_digest.rotate_left(21)
}

/// A digest-versioned cache key: the state salt ([`version_salt`]) combined
/// with a stable 64-bit fingerprint of the payload (a goal constraint, a
/// query set).
///
/// The key is two plain words — `Copy`, allocation-free, hashed as a single
/// premixed `u64` — so a hot-path lookup never rehashes (or clones) the
/// payload structure.  Fingerprints are not injective, so a colliding
/// payload *can* map to the same key; the engine therefore stores the
/// payload beside the cached value and verifies equality on every hit
/// (see [`ShardedCache::get_if`]), which keeps collisions harmless: they
/// cost a recomputation, never a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionedKey {
    salt: u64,
    fingerprint: u64,
}

impl VersionedKey {
    /// Builds a key from the state salt and the payload's stable
    /// fingerprint.
    pub fn new(salt: u64, fingerprint: u64) -> Self {
        VersionedKey { salt, fingerprint }
    }

    /// The state salt the key was versioned with.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The payload fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The single premixed word both [`Hash`] and [`ShardKey`] derive from,
    /// so shard choice and in-shard bucketing stay consistent by
    /// construction.  The rotation keeps (salt, fingerprint) and
    /// (fingerprint, salt) apart.
    fn premix(&self) -> u64 {
        self.salt ^ self.fingerprint.rotate_left(32)
    }
}

impl Hash for VersionedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // One premixed word: the hasher sees 8 bytes, not 16.  `Eq` still
        // compares both fields, so this only shapes bucket placement.
        state.write_u64(self.premix());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_hits() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        let _ = c.get(&1); // 2 is now LRU
        c.insert(3, 30);
        assert_eq!(c.peek(&2), None, "2 should have been evicted");
        assert_eq!(c.peek(&1), Some(&10));
        assert_eq!(c.peek(&3), Some(&30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_promotes_and_replaces() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // promote 1, replace value
        c.insert(3, 30); // evicts 2
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 2);
            assert_eq!(c.get(&i), Some(&(i * 2)));
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.stats().evictions, 99);
    }

    #[test]
    fn heavy_mixed_workload_stays_consistent() {
        // Mirror against a reference model: repeatedly insert/get and check
        // the cache never exceeds capacity and hits agree with presence.
        let mut c: LruCache<u64, u64> = LruCache::new(16);
        let mut present: std::collections::VecDeque<u64> = Default::default();
        let mut x: u64 = 0x123456789;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 48;
            if x & 1 == 0 {
                let was_present = present.contains(&key);
                if !was_present {
                    if present.len() == 16 {
                        present.pop_back();
                    }
                } else {
                    present.retain(|&k| k != key);
                }
                present.push_front(key);
                c.insert(key, key);
            } else {
                let hit = c.get(&key).is_some();
                assert_eq!(hit, present.contains(&key), "divergence at key {key}");
                if hit {
                    present.retain(|&k| k != key);
                    present.push_front(key);
                }
            }
            assert!(c.len() <= 16);
        }
    }

    #[test]
    fn sharded_cache_inserts_hits_and_aggregates() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 64);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 64);
        for k in 0..32u64 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.len(), 32);
        for k in 0..32u64 {
            assert_eq!(c.get(&k), Some(k * 10));
        }
        assert_eq!(c.get(&999), None);
        let stats = c.stats();
        assert_eq!(stats.hits, 32);
        assert_eq!(stats.misses, 1);
        c.clear();
        assert!(c.is_empty());
        // Counters describe the lifetime, not the contents.
        assert_eq!(c.stats().hits, 32);
    }

    #[test]
    fn sharded_cache_bounds_each_shard() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(2, 8);
        for k in 0..1000u64 {
            c.insert(k, k);
        }
        assert!(c.len() <= 8, "len {} exceeds total capacity", c.len());
        assert!(c.stats().evictions >= 1000 - 8);
    }

    #[test]
    fn sharded_cache_keeps_exact_capacity_on_uneven_splits() {
        // 100 entries over 16 shards: the remainder spreads one-per-shard,
        // never rounding the total up.
        let c: ShardedCache<u64, u64> = ShardedCache::new(16, 100);
        assert_eq!(c.capacity(), 100);
        for k in 0..10_000u64 {
            c.insert(k, k);
        }
        assert!(c.len() <= 100, "len {} exceeds requested bound", c.len());
        // Tiny capacities clamp the shard count instead of zeroing shards.
        let tiny: ShardedCache<u64, u64> = ShardedCache::new(16, 3);
        assert_eq!(tiny.capacity(), 3);
        assert!(tiny.shard_count() <= 3);
    }

    #[test]
    fn sharded_cache_zero_capacity_disables() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 0);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_cache_is_consistent_under_concurrent_traffic() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 128);
        let wrong = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                let wrong = &wrong;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (t * 2_000 + i) % 300;
                        c.insert(k, k * 7);
                        if let Some(v) = c.get(&k) {
                            // Values are keyed deterministically: a hit may
                            // be stale-evicted-reinserted but never wrong.
                            if v != k * 7 {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(wrong.load(Ordering::Relaxed), 0);
        assert!(c.len() <= 128);
    }

    #[test]
    fn version_salt_separates_premise_and_knowns_space() {
        // The same digest arriving via the premise side and via the knowns
        // side must produce different salts (XOR without rotation would
        // collide them).
        let d = 0xDEAD_BEEF_0BAD_F00D_u64;
        assert_ne!(version_salt(d, 0), version_salt(0, d));
        // Either component changing changes the salt.
        assert_ne!(version_salt(d, 7), version_salt(d, 8));
        assert_ne!(version_salt(3, 7), version_salt(4, 7));
        // Restoring the state restores the salt exactly.
        assert_eq!(version_salt(d, 7), version_salt(d, 7));
    }

    #[test]
    fn versioned_keys_separate_salts_and_fingerprints() {
        // Distinct salts (state versions) and distinct fingerprints both
        // produce distinct keys; the symmetric swap does too.
        assert_ne!(VersionedKey::new(1, 42), VersionedKey::new(2, 42));
        assert_ne!(VersionedKey::new(1, 42), VersionedKey::new(1, 43));
        assert_ne!(VersionedKey::new(1, 42), VersionedKey::new(42, 1));
        let k = VersionedKey::new(7, 9);
        assert_eq!((k.salt(), k.fingerprint()), (7, 9));
    }

    #[test]
    fn get_if_verifies_stored_payloads() {
        // The engine's collision discipline: the payload rides in the value
        // and a hit only counts when it matches the query.
        let c: ShardedCache<VersionedKey, (&str, u32)> = ShardedCache::new(2, 8);
        let key = VersionedKey::new(1, 42);
        c.insert(key, ("alpha", 10));
        assert_eq!(
            c.get_if(&key, |&(p, v)| (p == "alpha").then_some(v)),
            Some(10)
        );
        // A colliding payload under the same key is rejected, not aliased —
        // and the rejection counts as a miss, matching the recomputation
        // the caller then performs.
        let before = c.stats();
        assert_eq!(c.get_if(&key, |&(p, v)| (p == "beta").then_some(v)), None);
        let after = c.stats();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses + 1);
        // The rejection is also attributed as a collision…
        assert_eq!(after.collisions, before.collisions + 1);
        // …while an absent key is a plain miss.
        assert_eq!(c.get_if(&VersionedKey::new(9, 42), |&(_, v)| Some(v)), None);
        let absent = c.stats();
        assert_eq!(absent.misses, after.misses + 1);
        assert_eq!(absent.collisions, after.collisions);
    }

    #[test]
    fn occupancy_reports_per_shard_skew() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 64);
        assert_eq!(c.occupancy(), ShardOccupancy { min: 0, max: 0 });
        for k in 0..32u64 {
            c.insert(k, k);
        }
        let occupancy = c.occupancy();
        assert!(occupancy.min <= occupancy.max);
        assert!(occupancy.max >= 32 / 4, "max shard below the mean");
        assert!(occupancy.max <= 16, "one shard holds 32/64-capacity split");
        // A single-shard cache has no skew by construction.
        let single: ShardedCache<u64, u64> = ShardedCache::new(1, 8);
        for k in 0..8u64 {
            single.insert(k, k);
        }
        assert_eq!(single.occupancy(), ShardOccupancy { min: 8, max: 8 });
    }

    #[test]
    fn family_tagged_caches_publish_global_deltas() {
        use crate::metrics::EngineMetrics;
        let global = EngineMetrics::global().cache(CacheFamily::Prop);
        let (hits0, misses0) = (global.hits.get(), global.misses.get());
        let c: ShardedCache<u64, u64> = ShardedCache::named(CacheFamily::Prop, 2, 8);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), None);
        // Other tests share the global registry, so assert growth floors,
        // not exact values.
        assert!(global.hits.get() > hits0);
        assert!(global.misses.get() > misses0);
    }
}
