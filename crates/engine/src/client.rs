//! A small blocking client for the `diffcond serve` TCP front-end
//! ([`crate::net`]): connect, send request lines, read reply lines, with
//! typed errors instead of panics on every failure mode untrusted networks
//! produce (disconnects, oversized replies, server-side `err` responses).
//!
//! The client speaks exactly the framing of the *Network framing* section
//! in the [`crate::protocol`] docs: it sends one request per
//! newline-terminated line and expects one reply line per non-silent
//! request, in request order.  Against a `serve --binary` server,
//! [`Client::connect_binary`] negotiates the compact binary framing of
//! [`protocol::binary`] instead — same verbs, same reply text, length-
//! prefixed frames, plus the fixed-width mask senders
//! ([`Client::send_implies_mask`] and friends) for the hot query verbs.
//! Two calling styles are supported either way:
//!
//! * **strict** — [`Client::request`] sends one line and blocks for its
//!   reply (the server's idle flush guarantees the reply comes even when
//!   it evaluates queries in concurrent waves);
//! * **pipelined** — [`Client::run_script`] writes a whole script in one
//!   burst and then collects the reply stream, which is how the bench load
//!   generator and the equivalence tests drive the server at full
//!   throughput.
//!
//! ```no_run
//! use diffcon_engine::client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! client.request("universe 4")?;
//! client.request("assert A -> {B}")?;
//! assert!(client.request("implies A -> {B}")?.starts_with("yes"));
//! let interval = client.bound("AB")?;
//! assert_eq!(interval.lo, 0.0);
//! client.quit()?;
//! # Ok::<(), diffcon_engine::client::ClientError>(())
//! ```

use crate::net;
use crate::protocol;
use diffcon_bounds::Interval;
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything that can go wrong between a client call and its reply.
#[derive(Debug)]
pub enum ClientError {
    /// A transport failure (connect, send, or receive).
    Io(io::Error),
    /// The server closed the connection where a reply was expected.
    Closed,
    /// The request is not sendable as one protocol line (embedded newline,
    /// or a silent blank/comment line passed to a call that expects a
    /// reply).  The payload says which rule was violated.
    Request(String),
    /// The server answered `err …`; the payload is the message after the
    /// `err ` head.
    Server(String),
    /// The server's reply violates the response grammar the call expected
    /// (or exceeds the reply-length cap).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Closed => f.write_str("server closed the connection"),
            ClientError::Request(m) => write!(f, "unsendable request: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "malformed reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Cap on one reply line, so a rogue server cannot make a client buffer
/// unboundedly.  Replies can legitimately be long (`premises`/`mined`
/// listings), so the cap is a multiple of the request cap.
pub const MAX_REPLY_BYTES: usize = 4 * protocol::MAX_REQUEST_BYTES;

/// A blocking `diffcond` protocol connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

/// `read_exact` with the client's EOF convention: a close where reply
/// bytes were expected is [`ClientError::Closed`], not an IO error.
fn read_exact_or_closed(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), ClientError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ClientError::Closed
        } else {
            ClientError::Io(e)
        }
    })
}

impl Client {
    /// Connects to a serving `diffcond serve` address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::over(stream)
    }

    /// Connects with a timeout (needs a resolved address).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Client::over(stream)
    }

    /// Connects and negotiates the binary framing (the server must run
    /// with `serve --binary`).
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when the server does not acknowledge the
    /// handshake — a text-only server answers the magic with a plain `err`
    /// line, which is reported verbatim (the probe fails fast; it never
    /// hangs).
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::over_binary(stream)
    }

    /// [`Client::connect_binary`] with a connect timeout.
    pub fn connect_binary_timeout(
        addr: &SocketAddr,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Client::over_binary(stream)
    }

    /// Wraps an already-connected stream.
    pub fn over(stream: TcpStream) -> Result<Client, ClientError> {
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            binary: false,
        })
    }

    /// Wraps an already-connected stream and negotiates binary framing
    /// (see [`Client::connect_binary`]).
    pub fn over_binary(stream: TcpStream) -> Result<Client, ClientError> {
        let mut client = Client::over(stream)?;
        client.writer.write_all(&protocol::binary::MAGIC)?;
        client.writer.flush()?;
        let mut ack = [0u8; protocol::binary::ACK.len()];
        read_exact_or_closed(&mut client.reader, &mut ack)?;
        if ack == protocol::binary::ACK {
            client.binary = true;
            return Ok(client);
        }
        // Not an ACK: a text-only server answered the magic with an `err`
        // line.  Collect the rest of it so the error says what happened.
        let mut line = ack.to_vec();
        let mut rest = Vec::new();
        let _ = net::read_frame(&mut client.reader, &mut rest, MAX_REPLY_BYTES);
        line.extend_from_slice(&rest);
        Err(ClientError::Protocol(format!(
            "server did not acknowledge binary framing: `{}`",
            String::from_utf8_lossy(&line).trim_end()
        )))
    }

    /// `true` when the connection negotiated binary framing.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Sets (or clears, with `None`) the receive timeout; a timed-out
    /// [`Client::recv`] returns [`ClientError::Io`] and the connection
    /// stays usable.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request line without waiting for anything back (the
    /// pipelined style; pair with [`Client::recv`]).  On a binary
    /// connection the line travels as one length-prefixed `line` frame;
    /// the request grammar is identical.
    ///
    /// # Errors
    /// [`ClientError::Request`] if `request` embeds a newline — it would
    /// silently become two protocol frames.
    pub fn send(&mut self, request: &str) -> Result<(), ClientError> {
        if request.contains('\n') || request.contains('\r') {
            return Err(ClientError::Request(format!(
                "request `{}` embeds a line break",
                request.escape_debug()
            )));
        }
        if self.binary {
            let mut frame = Vec::with_capacity(request.len() + 5);
            protocol::binary::encode_line(request, &mut frame);
            self.writer.write_all(&frame)?;
        } else {
            self.writer.write_all(request.as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Sends one fixed-width binary `implies lhs -> {rhs…}` frame over
    /// attribute bitmasks (bit `i` = the universe's `i`-th attribute) —
    /// the zero-parse hot path of the binary framing.  Pair with
    /// [`Client::recv`]; the reply text is identical to the text verb's.
    ///
    /// # Errors
    /// [`ClientError::Request`] on a text connection: masks have no text
    /// encoding at this layer.
    pub fn send_implies_mask(&mut self, lhs: u64, rhs: &[u64]) -> Result<(), ClientError> {
        self.mask_frame(|out| protocol::binary::encode_implies(lhs, rhs, out))
    }

    /// Sends one fixed-width binary `assert lhs -> {rhs…}` frame over
    /// attribute bitmasks (see [`Client::send_implies_mask`]).
    pub fn send_assert_mask(&mut self, lhs: u64, rhs: &[u64]) -> Result<(), ClientError> {
        self.mask_frame(|out| protocol::binary::encode_assert(lhs, rhs, out))
    }

    /// Sends one fixed-width binary `bound set` frame over an attribute
    /// bitmask (see [`Client::send_implies_mask`]).
    pub fn send_bound_mask(&mut self, set: u64) -> Result<(), ClientError> {
        self.mask_frame(|out| protocol::binary::encode_bound(set, out))
    }

    fn mask_frame(&mut self, encode: impl FnOnce(&mut Vec<u8>)) -> Result<(), ClientError> {
        if !self.binary {
            return Err(ClientError::Request(
                "mask frames need a binary connection (Client::connect_binary)".into(),
            ));
        }
        let mut frame = Vec::with_capacity(32);
        encode(&mut frame);
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Receives one reply line (blocking).  The read is capped at
    /// [`MAX_REPLY_BYTES`] *as it arrives*, so a rogue peer cannot make
    /// the client buffer an endless line.
    pub fn recv(&mut self) -> Result<String, ClientError> {
        if self.binary {
            return self.recv_binary();
        }
        let mut line: Vec<u8> = Vec::new();
        match net::read_frame(&mut self.reader, &mut line, MAX_REPLY_BYTES)? {
            // EOF where a reply was expected — including EOF mid-line (the
            // server died while writing): no reply to return.
            net::Frame::Eof | net::Frame::Partial => Err(ClientError::Closed),
            // An over-cap reply was *discarded to its newline*, so the
            // stream stays framed: the error names this reply only, and the
            // next `recv` reads the next reply, not this line's tail.
            net::Frame::Oversized(got) => Err(ClientError::Protocol(format!(
                "reply line exceeds {MAX_REPLY_BYTES} bytes (got {got}; discarded)"
            ))),
            net::Frame::Line => {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                String::from_utf8(line)
                    .map_err(|_| ClientError::Protocol("reply is not valid UTF-8".into()))
            }
        }
    }

    /// One length-prefixed reply frame, under the same cap and resync
    /// policy as the text path: an over-cap frame is read off the wire and
    /// discarded, so the next `recv` sees the next reply.
    fn recv_binary(&mut self) -> Result<String, ClientError> {
        let mut header = [0u8; 5];
        read_exact_or_closed(&mut self.reader, &mut header)?;
        if header[0] != protocol::binary::TAG_LINE {
            return Err(ClientError::Protocol(format!(
                "unknown reply frame tag 0x{:02x}",
                header[0]
            )));
        }
        let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
        if len > MAX_REPLY_BYTES {
            let mut remaining = len;
            let mut sink = [0u8; 4096];
            while remaining > 0 {
                let take = remaining.min(sink.len());
                read_exact_or_closed(&mut self.reader, &mut sink[..take])?;
                remaining -= take;
            }
            return Err(ClientError::Protocol(format!(
                "reply frame exceeds {MAX_REPLY_BYTES} bytes (got {len}; discarded)"
            )));
        }
        let mut payload = vec![0u8; len];
        read_exact_or_closed(&mut self.reader, &mut payload)?;
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol("reply is not valid UTF-8".into()))
    }

    /// Sends one request and returns its raw reply line, whatever it is
    /// (`err …` included) — the byte-faithful form the equivalence tests
    /// compare against in-process serving.
    ///
    /// # Errors
    /// [`ClientError::Request`] for silent lines (blank / `#` comment):
    /// they produce no reply, so waiting for one would hang.
    pub fn raw_request(&mut self, request: &str) -> Result<String, ClientError> {
        if protocol::is_silent(request) {
            return Err(ClientError::Request(format!(
                "`{}` is a silent line and gets no reply",
                request.escape_debug()
            )));
        }
        self.send(request)?;
        self.recv()
    }

    /// Sends one request and returns its reply, mapping a server-side
    /// `err …` reply to [`ClientError::Server`].
    pub fn request(&mut self, request: &str) -> Result<String, ClientError> {
        let reply = self.raw_request(request)?;
        match reply.strip_prefix("err ") {
            Some(message) => Err(ClientError::Server(message.to_string())),
            None => Ok(reply),
        }
    }

    /// Pipelines a whole script — writes every line while *concurrently*
    /// draining the reply stream — and returns one reply per non-silent
    /// line, in request order.  Don't put `quit` anywhere but last: the
    /// server stops reading at it.
    ///
    /// The burst is written from a helper thread so replies are consumed
    /// as they arrive: a script larger than the socket buffers would
    /// otherwise deadlock both sides (the server blocked writing replies
    /// nobody reads, the client blocked writing requests nobody scans).
    pub fn run_script<'a>(
        &mut self,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<String>, ClientError> {
        let mut expected = 0usize;
        let mut burst = Vec::new();
        for line in lines {
            if line.contains('\n') || line.contains('\r') {
                return Err(ClientError::Request(format!(
                    "script line `{}` embeds a line break",
                    line.escape_debug()
                )));
            }
            if self.binary {
                protocol::binary::encode_line(line, &mut burst);
            } else {
                burst.extend_from_slice(line.as_bytes());
                burst.push(b'\n');
            }
            if !protocol::is_silent(line) {
                expected += 1;
            }
        }
        self.run_frames(burst, expected)
    }

    /// Pipelines an already-encoded request burst — text lines or binary
    /// frames built with the [`protocol::binary`] encoders — and collects
    /// `expected` replies, in request order.  This is the load-generator
    /// hot path: the burst is encoded once, written from a helper thread,
    /// and the reply stream drained concurrently (a burst larger than the
    /// socket buffers would otherwise deadlock both sides).
    pub fn run_frames(
        &mut self,
        burst: Vec<u8>,
        expected: usize,
    ) -> Result<Vec<String>, ClientError> {
        let mut write_half = self.writer.try_clone()?;
        let writer = std::thread::spawn(move || -> io::Result<()> {
            write_half.write_all(&burst)?;
            write_half.flush()
        });
        let mut replies = Vec::with_capacity(expected);
        let mut read_error = None;
        for _ in 0..expected {
            match self.recv() {
                Ok(reply) => replies.push(reply),
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            }
        }
        if read_error.is_some() {
            // Unblock the writer thread if it is parked on a full socket
            // buffer: after shutdown its writes fail fast instead.
            let _ = self.writer.shutdown(std::net::Shutdown::Both);
        }
        let write_result = writer.join().expect("script writer thread panicked");
        if let Some(e) = read_error {
            return Err(e);
        }
        write_result?;
        Ok(replies)
    }

    /// Sends `bound <set>` and parses the interval reply into its typed
    /// endpoints via [`Interval::parse_endpoints`] — the round trip the
    /// wire-format property suite guarantees is exact.
    pub fn bound(&mut self, set: &str) -> Result<Interval, ClientError> {
        let reply = self.request(&format!("bound {set}"))?;
        let mut lo = None;
        let mut hi = None;
        if !reply.starts_with("bound ") {
            return Err(ClientError::Protocol(format!(
                "expected a `bound` reply, got `{reply}`"
            )));
        }
        for field in reply.split_whitespace().skip(1) {
            if let Some(text) = field.strip_prefix("lo=") {
                lo = Some(text);
            } else if let Some(text) = field.strip_prefix("hi=") {
                hi = Some(text);
            }
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) => Interval::parse_endpoints(lo, hi)
                .map_err(|e| ClientError::Protocol(format!("in `{reply}`: {e}"))),
            _ => Err(ClientError::Protocol(format!(
                "bound reply without lo/hi fields: `{reply}`"
            ))),
        }
    }

    /// Ends the conversation gracefully: sends `quit`, checks the `bye`,
    /// and waits for the server's close.
    pub fn quit(mut self) -> Result<(), ClientError> {
        let reply = self.raw_request("quit")?;
        if reply != "bye" {
            return Err(ClientError::Protocol(format!(
                "expected `bye` to quit, got `{reply}`"
            )));
        }
        match self.recv() {
            Err(ClientError::Closed) => Ok(()),
            Ok(extra) => Err(ClientError::Protocol(format!(
                "server kept talking after `bye`: `{extra}`"
            ))),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{SocketAddr, TcpListener};

    /// A fake server: accepts one connection, writes `payload`, closes.
    fn fake_server(payload: Vec<u8>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.write_all(&payload).unwrap();
        });
        addr
    }

    #[test]
    fn over_cap_replies_error_without_desyncing_the_stream() {
        let mut payload = vec![b'x'; MAX_REPLY_BYTES + 10];
        payload.push(b'\n');
        payload.extend_from_slice(b"ok next\n");
        let mut client = Client::connect(fake_server(payload)).unwrap();
        match client.recv() {
            Err(ClientError::Protocol(m)) => {
                assert!(m.contains("exceeds"), "got: {m}");
                assert!(m.contains(&(MAX_REPLY_BYTES + 10).to_string()), "got: {m}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
        // The oversized line was discarded to its newline, so the stream
        // stays framed: the next recv returns the *next* reply, not the
        // tail of the huge one.
        assert_eq!(client.recv().unwrap(), "ok next");
    }

    #[test]
    fn truncated_and_closed_replies_report_closed() {
        let mut client = Client::connect(fake_server(b"reply cut off mid-line".to_vec())).unwrap();
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
        let mut client = Client::connect(fake_server(Vec::new())).unwrap();
        assert!(matches!(client.recv(), Err(ClientError::Closed)));
    }

    #[test]
    fn requests_with_line_breaks_are_rejected_before_sending() {
        let mut client = Client::connect(fake_server(Vec::new())).unwrap();
        assert!(matches!(
            client.send("stats\nquit"),
            Err(ClientError::Request(_))
        ));
        assert!(matches!(
            client.raw_request("   "),
            Err(ClientError::Request(_))
        ));
    }
}
