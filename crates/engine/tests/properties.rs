//! Equivalence properties of the engine against the one-shot decision
//! procedure `diffcon::implication::implies`.
//!
//! The engine layers interning, three LRU caches, a premise digest, an FD
//! fast path, a procedure planner, and rayon batch fan-out over the paper's
//! procedures — none of which may change a single answer.  These tests pit a
//! long-lived session against the stateless reference on:
//!
//! * ≥ 1000 random implication instances across universe sizes and premise
//!   shapes (`engine_matches_one_shot_implies_on_1000_random_instances`);
//! * workloads with repeated goals, where answers come from the cache;
//! * sessions mutated by random interleaved assert/retract;
//! * sessions configured with tiny caches, forcing constant eviction;
//! * batches, which must agree element-wise with serial evaluation.

use diffcon::random::{self, ConstraintGenerator, ConstraintShape};
use diffcon::{implication, DiffConstraint};
use diffcon_engine::{Session, SessionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setlat::Universe;

fn shape() -> ConstraintShape {
    ConstraintShape {
        max_lhs: 2,
        max_members: 3,
        max_member_size: 2,
        allow_trivial: false,
    }
}

/// The headline acceptance test: engine answers equal `implication::implies`
/// on over 1000 random instances, spread over universe sizes 3–6 and premise
/// counts 0–4, with every instance asked twice (cold, then cached).
#[test]
fn engine_matches_one_shot_implies_on_1000_random_instances() {
    let mut checked = 0usize;
    for n in 3..=6 {
        let universe = Universe::of_size(n);
        for premise_count in 0..=4 {
            let mut session = Session::new(universe.clone());
            let mut asserted: Vec<DiffConstraint> = Vec::new();
            for seed in 0..30u64 {
                let instance_seed = (n as u64) << 24 | (premise_count as u64) << 16 | seed;
                let (premises, goal) =
                    random::random_instance(instance_seed, &universe, premise_count, &shape(), 0.5);
                // Swap the session's premise set incrementally (the random
                // premise list may contain duplicates, which assert dedups).
                for p in asserted.drain(..) {
                    assert!(session.retract_constraint(&p));
                }
                for p in &premises {
                    let (_, added) = session.assert_constraint(p);
                    if added {
                        asserted.push(p.clone());
                    }
                }

                let expected = implication::implies(&universe, &premises, &goal);
                let cold = session.implies(&goal);
                assert_eq!(
                    cold.implied,
                    expected,
                    "cold disagreement: n={n} premises={premises:?} goal={goal:?} route={}",
                    cold.route_name()
                );
                let warm = session.implies(&goal);
                assert_eq!(warm.implied, expected, "warm disagreement on {goal:?}");
                checked += 2;
            }
        }
    }
    assert!(checked >= 1000, "only {checked} instances checked");
}

/// Random assert/retract interleavings: after every mutation the session must
/// agree with the reference on a probe set of goals.
#[test]
fn incremental_mutation_never_desynchronizes() {
    let universe = Universe::of_size(5);
    let mut gen = ConstraintGenerator::new(0xFEED, &universe);
    let pool = gen.constraint_set(8, &shape());
    let probes = gen.constraint_set(12, &shape());
    let mut session = Session::new(universe.clone());
    let mut live: Vec<DiffConstraint> = Vec::new();
    let mut rng = StdRng::seed_from_u64(99);
    for _step in 0..60 {
        let candidate = &pool[rng.gen_range(0..pool.len())];
        if live.contains(candidate) {
            assert!(session.retract_constraint(candidate));
            live.retain(|c| c != candidate);
        } else {
            let (_, added) = session.assert_constraint(candidate);
            assert!(added);
            live.push(candidate.clone());
        }
        assert_eq!(session.premises().len(), live.len());
        for probe in &probes {
            assert_eq!(
                session.implies(probe).implied,
                implication::implies(&universe, &live, probe),
                "desync after mutation: live={live:?} probe={probe:?}"
            );
        }
    }
}

/// Tiny caches force answer/lattice/translation evictions on nearly every
/// query; answers must be unaffected.  A capacity-0 configuration (caching
/// disabled entirely) must also agree.
#[test]
fn cache_eviction_and_disabled_caches_do_not_change_answers() {
    let universe = Universe::of_size(6);
    let mut gen = ConstraintGenerator::new(0xCAFE, &universe);
    let premises = gen.constraint_set(4, &shape());
    let goals = gen.constraint_set(50, &shape());
    for (answer_cap, lattice_cap, prop_cap) in [(3, 2, 2), (1, 1, 1), (0, 0, 0)] {
        let config = SessionConfig {
            answer_cache_capacity: answer_cap,
            lattice_cache_capacity: lattice_cap,
            prop_cache_capacity: prop_cap,
            ..SessionConfig::default()
        };
        let mut session = Session::with_config(universe.clone(), config);
        for p in &premises {
            session.assert_constraint(p);
        }
        // Three passes so every goal is seen again after eviction churn.
        for pass in 0..3 {
            for goal in &goals {
                assert_eq!(
                    session.implies(goal).implied,
                    implication::implies(&universe, &premises, goal),
                    "caps=({answer_cap},{lattice_cap},{prop_cap}) pass={pass} goal={goal:?}"
                );
            }
        }
        if answer_cap > 0 {
            assert!(
                session.stats().answer_cache.evictions > 0,
                "caps=({answer_cap},…): expected eviction churn"
            );
        }
    }
}

/// Batches agree with both serial engine evaluation and the reference, under
/// duplicated goals and across premise mutations between batches.
#[test]
fn batches_agree_with_serial_and_reference() {
    let universe = Universe::of_size(6);
    let mut gen = ConstraintGenerator::new(0xB00C, &universe);
    let premises = gen.constraint_set(5, &shape());
    let mut batch_session = Session::new(universe.clone());
    let mut serial_session = Session::new(universe.clone());
    for p in &premises {
        batch_session.assert_constraint(p);
        serial_session.assert_constraint(p);
    }
    let mut live = premises.clone();
    for round in 0..6 {
        let mut goals = gen.constraint_set(40, &shape());
        // Duplicate a third of the batch to exercise in-batch deduplication.
        for i in 0..goals.len() / 3 {
            let dup = goals[i].clone();
            goals.push(dup);
        }
        let outcomes = batch_session.implies_batch(&goals);
        assert_eq!(outcomes.len(), goals.len());
        for (goal, outcome) in goals.iter().zip(&outcomes) {
            assert_eq!(
                outcome.implied,
                serial_session.implies(goal).implied,
                "round {round}: batch vs serial on {goal:?}"
            );
            assert_eq!(
                outcome.implied,
                implication::implies(&universe, &live, goal),
                "round {round}: batch vs reference on {goal:?}"
            );
        }
        // Mutate the premise set between rounds.
        if round % 2 == 0 && !live.is_empty() {
            let gone = live.remove(0);
            assert!(batch_session.retract_constraint(&gone));
            assert!(serial_session.retract_constraint(&gone));
        } else {
            let extra = gen.constraint(&shape());
            batch_session.assert_constraint(&extra);
            serial_session.assert_constraint(&extra);
            live.push(extra);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Engine == reference on fully random (seeded) instances, including the
    /// cached second ask, for arbitrary seeds and premise counts.
    #[test]
    fn engine_equivalence_property(seed in 0u64..10_000, premise_count in 0usize..5) {
        let universe = Universe::of_size(5);
        let (premises, goal) =
            random::random_instance(seed, &universe, premise_count, &shape(), 0.4);
        let mut session = Session::new(universe.clone());
        for p in &premises {
            session.assert_constraint(p);
        }
        let expected = implication::implies(&universe, &premises, &goal);
        prop_assert_eq!(session.implies(&goal).implied, expected);
        let warm = session.implies(&goal);
        // Trivial goals are answered inline and never touch the cache.
        prop_assert!(warm.cached || goal.is_trivial());
        prop_assert_eq!(warm.implied, expected);
        // The refutation witness must exist exactly for refuted goals
        // (trivial goals are implied, so the two sides agree there too).
        prop_assert_eq!(session.refutation_witness(&goal).is_none(), expected);
    }

    /// FD-fragment workloads take the fast path and still match the
    /// reference.
    #[test]
    fn fd_fast_path_property(seed in 0u64..10_000) {
        let universe = Universe::of_size(6);
        let mut gen = ConstraintGenerator::new(seed, &universe);
        let narrow_shape = ConstraintShape {
            max_lhs: 2,
            max_members: 1,
            max_member_size: 2,
            allow_trivial: false,
        };
        let premises = gen.constraint_set(4, &narrow_shape);
        let goal = gen.constraint(&narrow_shape);
        let mut session = Session::new(universe.clone());
        for p in &premises {
            session.assert_constraint(p);
        }
        let outcome = session.implies(&goal);
        prop_assert_eq!(
            outcome.implied,
            implication::implies(&universe, &premises, &goal)
        );
        // The generator can emit empty-family constraints (outside the
        // fragment); the fast path applies only to true fragment instances.
        let in_fragment = diffcon::fd_fragment::set_in_fragment(&premises)
            && diffcon::fd_fragment::in_fragment(&goal);
        if in_fragment && !goal.is_trivial() {
            prop_assert_eq!(outcome.route_name(), "fd");
        }
    }
}
