//! Closed real intervals with infinite endpoints, and the sum accumulator the
//! derivation passes use to combine per-variable bounds soundly.
//!
//! Endpoints are `f64` with `±∞` standing for "unbounded on that side".  The
//! workloads this crate serves (supports of itemsets, probabilistic masses)
//! take integer or small rational values, so all finite arithmetic here is
//! exact; infinity is handled symbolically by [`SumAcc`], which counts
//! infinite contributions instead of adding them (adding `+∞` and later
//! subtracting one element back out would otherwise poison the sum).

use std::fmt;

/// A closed interval `[lo, hi]`, possibly unbounded on either side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// The lower endpoint (`-∞` when unbounded below).
    pub lo: f64,
    /// The upper endpoint (`+∞` when unbounded above).
    pub hi: f64,
}

impl Interval {
    /// The whole real line `(-∞, +∞)`.
    pub const UNBOUNDED: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if an endpoint is NaN or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval endpoints must not be NaN"
        );
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single point `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// The nonnegative half-line `[0, +∞)`.
    pub fn nonnegative() -> Interval {
        Interval::new(0.0, f64::INFINITY)
    }

    /// Returns `true` iff the interval pins a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Width `hi − lo` (`+∞` when unbounded).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Returns `true` iff `v` lies inside (within `tol` of an endpoint).
    pub fn contains(&self, v: f64, tol: f64) -> bool {
        v >= self.lo - tol && v <= self.hi + tol
    }

    /// Returns `true` iff this interval lies inside `other` (within `tol`).
    pub fn within(&self, other: &Interval, tol: f64) -> bool {
        self.lo >= other.lo - tol && self.hi <= other.hi + tol
    }

    /// The intersection with `other`, or `None` when they are disjoint by
    /// more than `tol` (an infeasibility witness for the caller).
    pub fn intersect(&self, other: &Interval, tol: f64) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi + tol {
            None
        } else {
            // Snap away sub-tolerance inversions produced by rounding.
            Some(Interval { lo, hi: hi.max(lo) })
        }
    }

    /// The interval shifted by `c`: `[lo + c, hi + c]`.
    pub fn shift(&self, c: f64) -> Interval {
        Interval {
            lo: self.lo + c,
            hi: self.hi + c,
        }
    }

    /// The reflected interval `c − [lo, hi] = [c − hi, c − lo]`.
    pub fn reflect(&self, c: f64) -> Interval {
        Interval {
            lo: c - self.hi,
            hi: c - self.lo,
        }
    }

    /// Formats one endpoint for the wire protocol: integers without a
    /// fractional part, `inf`/`-inf` for unbounded ends.
    ///
    /// [`Interval::parse_endpoint`] is the exact inverse:
    /// `parse_endpoint(&format_endpoint(v)) == Ok(v)` for every non-NaN
    /// `v` (with `-0.0` normalized to `0.0`, the one value the wire does
    /// not distinguish) — the round-trip property the bounds test suite
    /// checks over random endpoints, including the infinite ones.
    pub fn format_endpoint(v: f64) -> String {
        if v == f64::INFINITY {
            "inf".to_string()
        } else if v == f64::NEG_INFINITY {
            "-inf".to_string()
        } else if v.fract() == 0.0 && v.abs() < 1e15 {
            // Integral values print without a fractional part; the cast
            // also normalizes `-0.0` to `0`, so the sign of zero never
            // reaches the wire.
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    }

    /// Parses one wire endpoint — the inverse of
    /// [`Interval::format_endpoint`].  Accepts `inf` / `-inf` (the only
    /// spellings the formatter emits) and finite decimals; rejects NaN and
    /// the alternative infinity spellings `f64`'s own parser would accept,
    /// so that everything this returns can be fed back through the
    /// formatter unchanged.
    ///
    /// # Errors
    /// A human-readable message naming the offending text.
    pub fn parse_endpoint(text: &str) -> Result<f64, String> {
        match text {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => {
                let v: f64 = text
                    .parse()
                    .map_err(|_| format!("not a number: `{text}`"))?;
                if v.is_nan() || v.is_infinite() {
                    return Err(format!("not a wire endpoint: `{text}`"));
                }
                // The formatter never emits a signed zero; normalize so the
                // round trip is an identity on what it can emit.
                if v == 0.0 {
                    return Ok(0.0);
                }
                Ok(v)
            }
        }
    }

    /// Parses an interval from its two wire endpoints (as printed in
    /// `bound lo=… hi=…` replies).
    ///
    /// # Errors
    /// Rejects unparseable endpoints and inverted intervals (`lo > hi`)
    /// instead of panicking, so untrusted reply text is safe to feed in.
    pub fn parse_endpoints(lo: &str, hi: &str) -> Result<Interval, String> {
        let lo = Interval::parse_endpoint(lo)?;
        let hi = Interval::parse_endpoint(hi)?;
        if lo > hi {
            return Err(format!("inverted interval [{lo}, {hi}]"));
        }
        Ok(Interval { lo, hi })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]",
            Interval::format_endpoint(self.lo),
            Interval::format_endpoint(self.hi)
        )
    }
}

/// A sum of interval endpoints that tracks infinite contributions by count,
/// so removing one term back out of the total stays exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumAcc {
    finite: f64,
    pos_inf: usize,
    neg_inf: usize,
}

impl SumAcc {
    /// The empty sum.
    pub fn new() -> SumAcc {
        SumAcc::default()
    }

    /// Adds one endpoint.
    pub fn add(&mut self, v: f64) {
        if v == f64::INFINITY {
            self.pos_inf += 1;
        } else if v == f64::NEG_INFINITY {
            self.neg_inf += 1;
        } else {
            self.finite += v;
        }
    }

    /// The total (`±∞` when any infinite term was added; a sum containing
    /// both signs of infinity cannot arise from endpoint sums of one side).
    pub fn total(&self) -> f64 {
        debug_assert!(
            self.pos_inf == 0 || self.neg_inf == 0,
            "endpoint sums never mix +∞ and -∞"
        );
        if self.pos_inf > 0 {
            f64::INFINITY
        } else if self.neg_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.finite
        }
    }

    /// The total with one previously added endpoint `v` removed.
    pub fn total_without(&self, v: f64) -> f64 {
        let (pos, neg, finite) = if v == f64::INFINITY {
            (self.pos_inf - 1, self.neg_inf, self.finite)
        } else if v == f64::NEG_INFINITY {
            (self.pos_inf, self.neg_inf - 1, self.finite)
        } else {
            (self.pos_inf, self.neg_inf, self.finite - v)
        };
        if pos > 0 {
            f64::INFINITY
        } else if neg > 0 {
            f64::NEG_INFINITY
        } else {
            finite
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_predicates() {
        let i = Interval::new(1.0, 4.0);
        assert!(!i.is_exact());
        assert_eq!(i.width(), 3.0);
        assert!(i.contains(1.0, 0.0));
        assert!(i.contains(4.0, 0.0));
        assert!(!i.contains(4.5, 0.0));
        assert!(Interval::point(2.0).is_exact());
        assert!(Interval::UNBOUNDED.contains(1e300, 0.0));
        assert_eq!(Interval::nonnegative().lo, 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, f64::INFINITY);
        assert_eq!(a.intersect(&b, 0.0), Some(Interval::new(3.0, 5.0)));
        let c = Interval::new(6.0, 7.0);
        assert_eq!(a.intersect(&c, 0.0), None);
        // Sub-tolerance gaps snap to a point instead of failing.
        let d = Interval::new(5.0 + 1e-12, 9.0);
        let snapped = a.intersect(&d, 1e-9).unwrap();
        assert!(snapped.is_exact());
    }

    #[test]
    fn shift_and_reflect() {
        let i = Interval::new(1.0, 3.0);
        assert_eq!(i.shift(2.0), Interval::new(3.0, 5.0));
        assert_eq!(i.reflect(10.0), Interval::new(7.0, 9.0));
        let half = Interval::new(2.0, f64::INFINITY);
        assert_eq!(half.reflect(10.0), Interval::new(f64::NEG_INFINITY, 8.0));
    }

    #[test]
    fn endpoint_formatting() {
        assert_eq!(Interval::format_endpoint(40.0), "40");
        assert_eq!(Interval::format_endpoint(-2.5), "-2.5");
        assert_eq!(Interval::format_endpoint(f64::INFINITY), "inf");
        assert_eq!(Interval::format_endpoint(f64::NEG_INFINITY), "-inf");
        assert_eq!(Interval::new(0.0, 40.0).to_string(), "[0, 40]");
        // The sign of zero never reaches the wire.
        assert_eq!(Interval::format_endpoint(-0.0), "0");
    }

    #[test]
    fn endpoint_parsing_inverts_formatting() {
        for v in [
            0.0,
            -0.0,
            40.0,
            -2.5,
            0.1,
            1.0 / 3.0,
            -1e-17,
            1e15,
            -1e15,
            2e15 + 2.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let wire = Interval::format_endpoint(v);
            let back = Interval::parse_endpoint(&wire)
                .unwrap_or_else(|e| panic!("`{wire}` did not re-parse: {e}"));
            assert_eq!(back, v, "round trip moved {v:?} via `{wire}`");
            // …and the reparse is *stable*: formatting again is identical.
            assert_eq!(Interval::format_endpoint(back), wire);
        }
    }

    #[test]
    fn endpoint_parsing_rejects_junk() {
        for junk in [
            "",
            "x",
            "4x",
            "nan",
            "NaN",
            "-nan",
            "infinity",
            "-infinity",
            "Inf",
            "1e999",
        ] {
            assert!(
                Interval::parse_endpoint(junk).is_err(),
                "`{junk}` should not parse as a wire endpoint"
            );
        }
        // Signed zero normalizes on the way in as well.
        assert_eq!(
            Interval::parse_endpoint("-0").unwrap().to_bits(),
            0.0f64.to_bits()
        );
        assert_eq!(
            Interval::parse_endpoint("-0.0").unwrap().to_bits(),
            0.0f64.to_bits()
        );
    }

    #[test]
    fn interval_parsing_round_trips_and_rejects_inversions() {
        for (lo, hi) in [
            (0.0, 40.0),
            (-2.5, f64::INFINITY),
            (f64::NEG_INFINITY, f64::INFINITY),
            (7.25, 7.25),
        ] {
            let i = Interval::new(lo, hi);
            let back = Interval::parse_endpoints(
                &Interval::format_endpoint(i.lo),
                &Interval::format_endpoint(i.hi),
            )
            .unwrap();
            assert_eq!(back, i);
        }
        assert!(Interval::parse_endpoints("4", "3").is_err());
        assert!(Interval::parse_endpoints("inf", "0").is_err());
        assert!(Interval::parse_endpoints("nan", "3").is_err());
    }

    #[test]
    fn sum_accumulator_handles_infinities() {
        let mut s = SumAcc::new();
        s.add(2.0);
        s.add(f64::INFINITY);
        s.add(3.0);
        assert_eq!(s.total(), f64::INFINITY);
        assert_eq!(s.total_without(f64::INFINITY), 5.0);
        assert_eq!(s.total_without(2.0), f64::INFINITY);
        let mut t = SumAcc::new();
        t.add(1.0);
        t.add(2.0);
        assert_eq!(t.total(), 3.0);
        assert_eq!(t.total_without(1.0), 2.0);
    }
}
