//! Textual syntax for differential constraints.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! constraint ::= set "->" family | set "→" family
//! set        ::= ""            (the empty set)
//!              | "{}"          (also the empty set)
//!              | NAME+         (compact notation: "ACD" = {A, C, D})
//! family     ::= "{" "}"                       (the empty family)
//!              | "{" set ("," set)* "}"
//! ```
//!
//! Constraint *sets* are written one constraint per line; blank lines and lines
//! starting with `#` are ignored.

use crate::constraint::DiffConstraint;
use setlat::{AttrSet, Family, Universe};
use std::fmt;

/// Errors produced by the constraint parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

/// Parses a single constraint, e.g. `"A -> {B, CD}"` or `"∅ → {B}"` or `" -> {}"`.
pub fn parse_constraint(text: &str, universe: &Universe) -> Result<DiffConstraint, ParseError> {
    let (lhs_text, rhs_text) = split_arrow(text)?;
    let lhs = parse_set(lhs_text.trim(), universe)?;
    let rhs = parse_family(rhs_text.trim(), universe)?;
    Ok(DiffConstraint::new(lhs, rhs))
}

/// Parses a list of constraints, one per line; `#` starts a comment line.
pub fn parse_constraint_set(
    text: &str,
    universe: &Universe,
) -> Result<Vec<DiffConstraint>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let constraint = parse_constraint(trimmed, universe)
            .map_err(|e| err(format!("line {}: {}", lineno + 1, e.message)))?;
        out.push(constraint);
    }
    Ok(out)
}

fn split_arrow(text: &str) -> Result<(&str, &str), ParseError> {
    if let Some(pos) = text.find("->") {
        Ok((&text[..pos], &text[pos + 2..]))
    } else if let Some(pos) = text.find('→') {
        Ok((&text[..pos], &text[pos + '→'.len_utf8()..]))
    } else {
        Err(err(format!("missing '->' in {text:?}")))
    }
}

fn parse_set(text: &str, universe: &Universe) -> Result<AttrSet, ParseError> {
    let cleaned = text.trim();
    if cleaned.is_empty() || cleaned == "{}" || cleaned == "∅" {
        return Ok(AttrSet::EMPTY);
    }
    universe
        .parse_set(cleaned)
        .map_err(|e| err(format!("bad set {cleaned:?}: {e}")))
}

fn parse_family(text: &str, universe: &Universe) -> Result<Family, ParseError> {
    let trimmed = text.trim();
    let inner = trimmed
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| err(format!("family must be written in braces, got {trimmed:?}")))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Family::empty());
    }
    let mut members = Vec::new();
    for part in inner.split(',') {
        members.push(parse_set(part, universe)?);
    }
    Ok(Family::from_sets(members))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn parse_basic_constraint() {
        let u = u();
        let c = parse_constraint("A -> {B, CD}", &u).unwrap();
        assert_eq!(c.lhs, u.parse_set("A").unwrap());
        assert_eq!(c.rhs.len(), 2);
        assert!(c.rhs.contains(u.parse_set("CD").unwrap()));
    }

    #[test]
    fn parse_unicode_arrow_and_empty_set() {
        let u = u();
        let c = parse_constraint("∅ → {B}", &u).unwrap();
        assert_eq!(c.lhs, AttrSet::EMPTY);
        let d = parse_constraint(" -> {B}", &u).unwrap();
        assert_eq!(c, d);
        let e = parse_constraint("{} -> {B}", &u).unwrap();
        assert_eq!(c, e);
    }

    #[test]
    fn parse_empty_family_and_empty_member() {
        let u = u();
        let c = parse_constraint("A -> {}", &u).unwrap();
        assert!(c.rhs.is_empty());
        let d = parse_constraint("A -> {∅}", &u).unwrap();
        assert_eq!(d.rhs.len(), 1);
        assert!(d.rhs.has_empty_member());
    }

    #[test]
    fn parse_errors() {
        let u = u();
        assert!(parse_constraint("A {B}", &u).is_err());
        assert!(parse_constraint("A -> B", &u).is_err());
        assert!(parse_constraint("A -> {Z}", &u).is_err());
        assert!(parse_constraint("QQ -> {B}", &u).is_err());
    }

    #[test]
    fn parse_constraint_set_with_comments() {
        let u = u();
        let text = "# Example 4.3 of the paper\nA -> {BC, CD}\n\nC -> {D}\n";
        let set = parse_constraint_set(text, &u).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set[1].lhs, u.parse_set("C").unwrap());
    }

    #[test]
    fn parse_constraint_set_reports_line_numbers() {
        let u = u();
        let text = "A -> {B}\nbogus line\n";
        let e = parse_constraint_set(text, &u).unwrap_err();
        assert!(e.message.contains("line 2"));
    }

    #[test]
    fn roundtrip_through_format() {
        let u = u();
        for text in ["A -> {B, CD}", "AB -> {C}", " -> {}", "A -> {∅}"] {
            let c = parse_constraint(text, &u).unwrap();
            let printed = c.format(&u);
            let reparsed = parse_constraint(&printed, &u).unwrap();
            assert_eq!(c, reparsed, "roundtrip failed for {text:?}");
        }
    }
}
