//! # diffcon-bounds — constraint-aware interval derivation
//!
//! The paper's headline application (Section 6) is that differential
//! constraints *bound* the values a set function can take: `X → 𝒴` zeroes the
//! density function on the lattice decomposition `L(X, 𝒴)` (Definition 3.1),
//! so inclusion–exclusion over the surviving density terms pins `f` on sets
//! that were never observed.  This crate turns that observation into a
//! serving-grade query class: given
//!
//! * a universe `S`,
//! * a set of asserted differential constraints `C`,
//! * a *sparse* map of known point values `f(X) = v`, and
//! * optional side conditions (nonnegative density / antitonicity — the
//!   support-function interpretation of frequent-itemset mining),
//!
//! it derives a sound interval `[lo, hi]` for `f(Y)` at any query set `Y`,
//! by **density-variable elimination**: constraints kill density variables,
//! knowns become linear equations over the survivors, and queries are
//! resolved by interval propagation plus a generalized inclusion–exclusion
//! deduction pass ([`mod@derive`] module docs spell out the passes).  A budget
//! router falls back to an enumeration-free sound relaxation on universes or
//! workloads too large for the full pass.
//!
//! With **no** constraints and **all** proper-subset supports known, the
//! derived interval coincides exactly with the Calders–Goethals deduction
//! bounds of [`fis::ndi`] — the engine is a strict generalization of the
//! non-derivable-itemset rules, and [`mining::ndi_under_constraints`] feeds
//! it back into NDI mining so that asserting constraints makes mining scan
//! strictly fewer candidates.
//!
//! ```
//! use diffcon::DiffConstraint;
//! use diffcon_bounds::{derive, BoundsConfig, BoundsProblem, SideConditions};
//! use setlat::Universe;
//!
//! let u = Universe::of_size(4);
//! let constraints = vec![DiffConstraint::parse("A -> {B}", &u).unwrap()];
//! let knowns = vec![(u.parse_set("A").unwrap(), 40.0)];
//! let problem = BoundsProblem {
//!     universe: &u,
//!     constraints: &constraints,
//!     knowns: &knowns,
//!     side: SideConditions::support(),
//! };
//! // A → {B} kills every density term of f(A) except those above AB, so
//! // the single known value pins the unobserved superset exactly.
//! let bound = derive::derive(&problem, u.parse_set("AB").unwrap(), &BoundsConfig::default())
//!     .unwrap();
//! assert!(bound.interval.is_exact());
//! assert_eq!(bound.interval.lo, 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derive;
pub mod interval;
pub mod mining;
pub mod problem;

pub use interval::Interval;
pub use problem::{
    BoundsConfig, BoundsProblem, DeriveError, DeriveRoute, DerivedBound, SideConditions,
};
