//! Process-wide serving metrics: one lock-free [`EngineMetrics`] registry
//! every pipeline, connection, cache, planner, and session publishes into,
//! rendered on demand as a Prometheus-text exposition.
//!
//! # Why a process-wide registry
//!
//! The serving stack is a tree of per-connection state — each TCP connection
//! owns a [`crate::server_state::Pipeline`], each session its own caches and
//! [`crate::planner::Planner`] — but a scrape wants the process view: total
//! requests, the latency distribution across *all* connections, cache
//! traffic across *all* sessions.  Per-session accounting already exists
//! (the `stats` verb reports it); this module is the aggregate layer.  Every
//! recording site therefore writes twice — its local accounting and the
//! global registry — and both writes are relaxed atomics, so the double
//! bookkeeping costs a few nanoseconds against query latencies measured in
//! microseconds.
//!
//! # What is recorded where
//!
//! | source                  | metrics                                          |
//! |-------------------------|--------------------------------------------------|
//! | [`crate::server_state`] | requests, parse errors, replies, waves, wave size, queue depth, deferred-query age, evaluation latency, slow queries |
//! | [`crate::net`]          | connections, bytes, frames, framing errors, idle flushes, frame-read and reply-write latency |
//! | [`crate::planner`]      | per-route decision counts and latency (implication routes and the bound ladder), trivial short-circuits |
//! | [`crate::cache`]        | per-family hit/miss/eviction/collision counters   |
//! | [`crate::session`]      | snapshot epoch publications                       |
//!
//! The exposition ([`EngineMetrics::exposition`]) renders counters and
//! gauges directly and histograms as summary families (`quantile` labels
//! plus `_sum`/`_count`); `diffcond serve --metrics-addr HOST:PORT` serves
//! it over one-shot HTTP GET via [`diffcon_obs::TextServer`].
//!
//! # The request-scoped layer
//!
//! Aggregates answer "how is the fleet doing"; triage needs "which request
//! paid".  Three request-scoped structures live alongside the aggregate
//! counters:
//!
//! * [`FlightRecord`] — one fixed-width record per completed request (trace
//!   id, connection id, session slot, verb, route, cache outcome, bytes
//!   in/out, per-stage nanoseconds, epoch), packed into [`FlightWords`] and
//!   written into the always-on [`FlightRecorder`] ring at
//!   [`EngineMetrics::flight`].  Dumped live by the `debug recent` /
//!   `debug trace` protocol verbs and by the slow-query stderr line.
//! * [`SessionCosts`] / [`ConnCosts`] — per-session and per-connection cost
//!   attribution (decision time, route counts, cache hits, bytes),
//!   registered under `(connection, slot)` / `connection` keys and rendered
//!   as labeled `diffcond_session_*` / `diffcond_connection_*` series.
//! * [`RecentStats`] — windowed live stats: a small ring of periodic
//!   histogram snapshots differenced with [`HistogramSnapshot::minus`] so
//!   `stats recent` can answer p50/p99-over-the-last-minute and rates
//!   without restarting counters.

use crate::cache::CacheStats;
use diffcon::procedure::{self, ProcedureKind};
use diffcon_bounds::DeriveRoute;
use diffcon_obs::profile::{self, CountingAllocator};
use diffcon_obs::{
    Counter, Exposition, FlightRecorder, FlightWords, Gauge, Histogram, HistogramSnapshot,
    HttpResponse,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The whole process allocates through the counting wrapper, so the
/// allocation-accounting half of [`profile`] is always live: scrapes and the
/// `top` panel read real alloc/free totals, and the test suite can *prove*
/// the warm query path performs zero heap allocations instead of asserting
/// it by review.  The wrapper's cost is a few relaxed atomic adds per
/// alloc/free — noise against the allocation itself.
#[global_allocator]
static COUNTING_ALLOC: CountingAllocator = CountingAllocator::new();

/// Which engine cache family a [`crate::cache::ShardedCache`] serves, for
/// per-family attribution of the global cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFamily {
    /// Full query answers.
    Answer,
    /// Goal lattice decompositions.
    Lattice,
    /// Propositional translations.
    Prop,
    /// Bound intervals.
    Bound,
}

impl CacheFamily {
    /// Every family, in exposition order.
    pub const ALL: [CacheFamily; 4] = [
        CacheFamily::Answer,
        CacheFamily::Lattice,
        CacheFamily::Prop,
        CacheFamily::Bound,
    ];

    /// The family's label value in the exposition.
    pub fn name(self) -> &'static str {
        match self {
            CacheFamily::Answer => "answer",
            CacheFamily::Lattice => "lattice",
            CacheFamily::Prop => "prop",
            CacheFamily::Bound => "bound",
        }
    }

    fn index(self) -> usize {
        match self {
            CacheFamily::Answer => 0,
            CacheFamily::Lattice => 1,
            CacheFamily::Prop => 2,
            CacheFamily::Bound => 3,
        }
    }
}

/// Global per-family cache traffic counters.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Verified cache hits.
    pub hits: Counter,
    /// Misses (including rejected collisions).
    pub misses: Counter,
    /// Entries displaced at capacity.
    pub evictions: Counter,
    /// Present-but-rejected fingerprint collisions (each one forced a
    /// recomputation).
    pub collisions: Counter,
}

impl CacheCounters {
    /// Accumulates the counter movement of one cache operation.
    pub fn absorb_delta(&self, delta: CacheStats) {
        if delta.hits > 0 {
            self.hits.add(delta.hits);
        }
        if delta.misses > 0 {
            self.misses.add(delta.misses);
        }
        if delta.evictions > 0 {
            self.evictions.add(delta.evictions);
        }
        if delta.collisions > 0 {
            self.collisions.add(delta.collisions);
        }
    }
}

/// Labels for the implication routes, indexed like
/// [`procedure::ALL_PROCEDURES`].
const ROUTE_LABELS: [&str; 4] = ["fd", "lattice", "semantic", "sat"];

/// Labels for the pipeline stage histograms, aligned with
/// [`EngineMetrics::stage_histograms`].
const STAGE_LABELS: [&str; 4] = ["frame", "queue", "plan", "reply"];

fn proc_index(kind: ProcedureKind) -> usize {
    procedure::ALL_PROCEDURES
        .iter()
        .position(|&k| k == kind)
        .expect("every ProcedureKind appears in ALL_PROCEDURES")
}

static CONNECTION_IDS: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique connection id (also used as the trace-id origin
/// for in-process pipelines, so every [`crate::server_state::Pipeline`] —
/// TCP-backed or not — gets a distinct trace namespace).
pub fn next_connection_id() -> u64 {
    CONNECTION_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Verb names a flight record can carry, indexed by the code stored in the
/// packed word; index 0 is the unknown/unset sentinel.
const FLIGHT_VERBS: [&str; 9] = [
    "?", "implies", "batch", "bound", "witness", "derive", "explain", "mine", "analyze",
];

/// Route names a flight record can carry (the implication ladder, the bound
/// ladder, and the verb-level routes), indexed like [`FLIGHT_VERBS`].
const FLIGHT_ROUTES: [&str; 14] = [
    "?",
    "trivial",
    "fd",
    "lattice",
    "semantic",
    "sat",
    "cached",
    "propagation",
    "relaxed",
    "batch",
    "witness",
    "derive",
    "mine",
    "analyze",
];

fn flight_code(table: &[&'static str], name: &str) -> u64 {
    // Pointer identity first: the serving stack tags records with the same
    // `&'static str` literals this table holds, so the scan is usually a
    // fat-pointer compare per entry, not a content compare.
    table
        .iter()
        .position(|&n| std::ptr::eq(n, name) || n == name)
        .unwrap_or(0) as u64
}

fn flight_name(table: &'static [&'static str], code: u64) -> &'static str {
    table.get(code as usize).copied().unwrap_or("?")
}

/// One completed request's full server-side story: identity (trace,
/// connection, session slot), shape (verb, route, cache outcome, bytes),
/// and per-stage cost.  Packs losslessly into [`FlightWords`] for the
/// [`FlightRecorder`] ring and renders as the `key=value` line the
/// `debug recent` verb and the slow-query stderr dump emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Request-scoped trace id (`origin << 32 | sequence`), unique per
    /// process and monotone per connection.
    pub trace: u64,
    /// Connection id from [`next_connection_id`].
    pub conn: u64,
    /// Session slot the request ran under.
    pub slot: u64,
    /// Protocol verb (one of the known verb names).
    pub verb: &'static str,
    /// Decision route (one of the known route names).
    pub route: &'static str,
    /// Whether the answer came from a cache.
    pub cached: bool,
    /// Request bytes read off the wire (line + terminator).
    pub bytes_in: u64,
    /// Reply bytes written (0 for silent replies).
    pub bytes_out: u64,
    /// Nanoseconds framing the request off the socket.
    pub frame_ns: u64,
    /// Nanoseconds queued between enqueue and evaluation.
    pub queue_ns: u64,
    /// Nanoseconds evaluating the request (wall, inside the wave).
    pub plan_ns: u64,
    /// Nanoseconds of planner decision time inside the evaluation.
    pub decide_ns: u64,
    /// Nanoseconds writing the reply to the wire.
    pub reply_ns: u64,
    /// Snapshot epoch the request evaluated against.
    pub epoch: u64,
}

impl FlightRecord {
    /// Packs the record into the fixed-width ring representation.
    pub fn encode(&self) -> FlightWords {
        let vrc = (flight_code(&FLIGHT_VERBS, self.verb) << 16)
            | (flight_code(&FLIGHT_ROUTES, self.route) << 8)
            | u64::from(self.cached);
        [
            self.trace,
            self.conn,
            self.slot,
            vrc,
            self.bytes_in,
            self.bytes_out,
            self.frame_ns,
            self.queue_ns,
            self.plan_ns,
            self.decide_ns,
            self.reply_ns,
            self.epoch,
        ]
    }

    /// Unpacks a ring record.
    pub fn decode(words: &FlightWords) -> FlightRecord {
        FlightRecord {
            trace: words[0],
            conn: words[1],
            slot: words[2],
            verb: flight_name(&FLIGHT_VERBS, (words[3] >> 16) & 0xff),
            route: flight_name(&FLIGHT_ROUTES, (words[3] >> 8) & 0xff),
            cached: words[3] & 1 == 1,
            bytes_in: words[4],
            bytes_out: words[5],
            frame_ns: words[6],
            queue_ns: words[7],
            plan_ns: words[8],
            decide_ns: words[9],
            reply_ns: words[10],
            epoch: words[11],
        }
    }

    /// Renders the record as the `key=value` line protocol dumps use.
    /// Stage costs are in microseconds, matching the exposition's scale.
    pub fn render(&self) -> String {
        format!(
            "trace={} conn={} slot={} verb={} route={} cached={} in={} out={} \
             frame_us={} queue_us={} plan_us={} decide_us={} reply_us={} epoch={}",
            self.trace,
            self.conn,
            self.slot,
            self.verb,
            self.route,
            u64::from(self.cached),
            self.bytes_in,
            self.bytes_out,
            self.frame_ns / 1_000,
            self.queue_ns / 1_000,
            self.plan_ns / 1_000,
            self.decide_ns / 1_000,
            self.reply_ns / 1_000,
            self.epoch,
        )
    }

    /// Fills in the reply stage and writes the record into the global
    /// flight-recorder ring.
    pub fn commit(mut self, reply_ns: u64, bytes_out: u64) {
        self.reply_ns = reply_ns;
        self.bytes_out = bytes_out;
        EngineMetrics::global().flight.record(&self.encode());
    }

    /// Writes the record as-is, for replies consumed without crossing a
    /// wire (in-process drivers): the reply stage stays at its pre-filled
    /// value since no transport write was timed.
    pub fn commit_unsent(&self) {
        EngineMetrics::global().flight.record(&self.encode());
    }
}

/// Per-session cost attribution, shared between the session's planner (which
/// records route decisions and cache hits) and the pipeline (which records
/// queue wait and decision time).  Registered with
/// [`EngineMetrics::register_session`] so `session list`, `stats`, and the
/// Prometheus endpoint can attribute cost to a `(connection, slot)` pair.
#[derive(Debug, Default)]
pub struct SessionCosts {
    /// Deferred queries charged to the session.
    pub queries: Counter,
    /// Planner decision nanoseconds charged to the session.
    pub decide_ns: Counter,
    /// Queue-wait nanoseconds charged to the session.
    pub queue_ns: Counter,
    /// Answer-cache hits charged to the session.
    pub cache_hits: Counter,
    /// Decided queries per implication route, indexed like
    /// [`procedure::ALL_PROCEDURES`].
    pub routes: [Counter; 4],
}

/// Per-connection cost attribution, accumulated by the network layer and
/// rendered as `diffcond_connection_*` labeled series.
#[derive(Debug, Default)]
pub struct ConnCosts {
    /// Requests framed on the connection.
    pub requests: Counter,
    /// Request bytes read.
    pub bytes_read: Counter,
    /// Reply bytes written.
    pub bytes_written: Counter,
}

/// How many `(connection, slot)` / connection cost series the registry
/// retains before evicting the oldest — bounds exposition size under
/// connection churn.
const COST_SERIES_CAP: usize = 256;

/// Minimum spacing between windowed-stats frames; callers observe at wave
/// granularity, the ring keeps at most one frame per interval.
const RECENT_FRAME_INTERVAL: Duration = Duration::from_millis(250);

/// How far back the windowed stats reach.
const RECENT_WINDOW: Duration = Duration::from_secs(60);

/// Frame-ring bound: the window over the interval, plus slack for the
/// irregular spacing traffic-driven observation produces.
const RECENT_FRAME_CAP: usize = 512;

/// One periodic snapshot of the rate-bearing aggregates, the unit the
/// windowed-stats ring differences.
#[derive(Debug)]
struct RecentFrame {
    at: Instant,
    requests: u64,
    replies: u64,
    bytes_read: u64,
    bytes_written: u64,
    frame: HistogramSnapshot,
    queue: HistogramSnapshot,
    plan: HistogramSnapshot,
    reply: HistogramSnapshot,
}

/// Live stats over roughly the last minute: counter deltas and
/// stage-latency distributions between the oldest retained frame and now.
/// A zero [`RecentStats::window`] with [`RecentStats::baseline`] false means
/// no baseline frame exists yet (the first observation after startup); all
/// deltas are zero in that case and should be reported as "warming up", not
/// as a stalled server.
#[derive(Debug)]
pub struct RecentStats {
    /// Whether a baseline frame existed: `false` only on the very first
    /// observation, whose zero deltas are an artifact of having nothing to
    /// difference against rather than a measurement.
    pub baseline: bool,
    /// Width of the observed window.
    pub window: Duration,
    /// Requests entering pipelines over the window.
    pub requests: u64,
    /// Reply lines released over the window.
    pub replies: u64,
    /// Request bytes read over the window.
    pub bytes_read: u64,
    /// Reply bytes written over the window.
    pub bytes_written: u64,
    /// Frame-stage latency over the window.
    pub frame: HistogramSnapshot,
    /// Queue-wait latency over the window.
    pub queue: HistogramSnapshot,
    /// Evaluation latency over the window.
    pub plan: HistogramSnapshot,
    /// Reply-write latency over the window.
    pub reply: HistogramSnapshot,
}

/// The process-wide metrics registry.  All fields are lock-free; recording
/// sites access them through [`EngineMetrics::global`].
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Requests entering a pipeline (well-formed or not).
    pub requests: Counter,
    /// Requests rejected by the protocol parser.
    pub parse_errors: Counter,
    /// Reply lines released to clients (silent replies excluded).
    pub replies: Counter,
    /// Deferred queries whose evaluation exceeded the slow-query threshold.
    pub slow_queries: Counter,
    /// Slow-query stderr lines suppressed by the log rate limiter.
    pub slow_log_dropped: Counter,
    /// Evaluation waves run.
    pub waves: Counter,
    /// Deferred queries per wave.
    pub wave_size: Histogram,
    /// Deferred queries currently queued (last observed).
    pub queue_depth: Gauge,
    /// Nanoseconds spent framing a request off the socket when input was
    /// already buffered (client think-time excluded).
    pub frame_ns: Histogram,
    /// Nanoseconds a deferred query waited between enqueue and evaluation.
    pub queue_ns: Histogram,
    /// Nanoseconds evaluating one deferred query.
    pub plan_ns: Histogram,
    /// Nanoseconds writing and flushing a batch of replies.
    pub reply_ns: Histogram,
    /// Connections served (completed).
    pub connections: Counter,
    /// Request bytes read off sockets (including discarded oversized lines).
    pub bytes_read: Counter,
    /// Reply bytes written to sockets.
    pub bytes_written: Counter,
    /// Well-formed request frames read.
    pub frames: Counter,
    /// Framing violations (oversized lines, invalid UTF-8).
    pub framing_errors: Counter,
    /// Idle flushes (waves forced because the read buffer ran dry).
    pub idle_flushes: Counter,
    /// Reactor event-loop wakeups (one per `epoll_wait` return).
    pub reactor_wakeups: Counter,
    /// Ready events delivered per reactor wakeup (readiness-burst size; a
    /// burst becomes one batched pipeline wave, so this is the transport's
    /// natural batching factor).
    pub reactor_ready_batch: Histogram,
    /// Bytes written per vectored (`writev`) reply-flush syscall.
    pub reactor_writev_bytes: Histogram,
    /// Reactor event-loop threads serving (set at `serve` startup).
    pub reactor_threads: Gauge,
    /// Snapshot publications (every session mutation).
    pub epoch_publishes: Counter,
    /// Goals answered inline as trivial.
    pub trivial: Counter,
    /// Premise-core analyses run (the read-only `analyze` verb).
    pub analyze_runs: Counter,
    /// Redundant premises reported across all analyses.
    pub analyze_redundant: Counter,
    /// Analyses whose knowns were infeasible under the premises.
    pub analyze_infeasible: Counter,
    /// `analyze apply` core reductions executed.
    pub analyze_applies: Counter,
    /// Nanoseconds running one premise-core analysis.
    pub analyze_ns: Histogram,
    /// Per-route decision latency, indexed like
    /// [`procedure::ALL_PROCEDURES`]; each histogram's count is the route's
    /// decided-query total.
    pub route_ns: [Histogram; 4],
    /// Bound-ladder decision latency: `[propagation, relaxed]`.
    pub bound_ns: [Histogram; 2],
    /// Per-family cache counters, indexed by [`CacheFamily::index`].
    caches: [CacheCounters; 4],
    /// The always-on flight recorder: one [`FlightRecord`] per completed
    /// request, overwrite-oldest, dumpable without stopping traffic.
    pub flight: FlightRecorder,
    /// Registered per-session cost series keyed `(connection, slot)`.
    /// Strong references: the series must survive session/connection
    /// teardown so a scrape after disconnect still sees the attribution.
    sessions: Mutex<Vec<(SessionKey, Arc<SessionCosts>)>>,
    /// Registered per-connection cost series keyed by connection id.
    conn_costs: Mutex<Vec<(u64, Arc<ConnCosts>)>>,
    /// Per-reactor live-connection gauges, keyed by reactor index.  Tiny and
    /// append-only: one entry per reactor thread per server start.
    reactor_connections: Mutex<Vec<(usize, Arc<Gauge>)>>,
    /// The windowed-stats frame ring.
    recent_frames: Mutex<VecDeque<RecentFrame>>,
}

/// `(connection, slot)` identity a session's cost series is registered
/// under.
type SessionKey = (u64, u64);

static GLOBAL: OnceLock<EngineMetrics> = OnceLock::new();

impl EngineMetrics {
    /// The process-wide registry.
    pub fn global() -> &'static EngineMetrics {
        GLOBAL.get_or_init(EngineMetrics::default)
    }

    /// The counters of one cache family.
    pub fn cache(&self, family: CacheFamily) -> &CacheCounters {
        &self.caches[family.index()]
    }

    /// The latency histogram of one implication route.
    pub fn route_latency(&self, kind: ProcedureKind) -> &Histogram {
        &self.route_ns[proc_index(kind)]
    }

    /// The latency histogram of one bound-ladder route.
    pub fn bound_latency(&self, route: DeriveRoute) -> &Histogram {
        match route {
            DeriveRoute::Propagation => &self.bound_ns[0],
            DeriveRoute::Relaxed => &self.bound_ns[1],
        }
    }

    /// The pipeline stage histograms in [`STAGE_LABELS`] order.
    fn stage_histograms(&self) -> [&Histogram; 4] {
        [
            &self.frame_ns,
            &self.queue_ns,
            &self.plan_ns,
            &self.reply_ns,
        ]
    }

    /// Registers (or refreshes) the cost series of the session living in
    /// `slot` on `conn`.  Re-registering a live key replaces the series;
    /// past the capacity bound (256 keys) the oldest registration is evicted.
    pub fn register_session(&self, conn: u64, slot: u64, costs: Arc<SessionCosts>) {
        let mut table = self.sessions.lock().expect("session registry poisoned");
        if let Some(entry) = table.iter_mut().find(|(key, _)| *key == (conn, slot)) {
            entry.1 = costs;
            return;
        }
        if table.len() >= COST_SERIES_CAP {
            table.remove(0);
        }
        table.push(((conn, slot), costs));
    }

    /// Registers the cost series of connection `conn`, with the same
    /// replace/evict policy as [`EngineMetrics::register_session`].
    pub fn register_connection(&self, conn: u64, costs: Arc<ConnCosts>) {
        let mut table = self
            .conn_costs
            .lock()
            .expect("connection registry poisoned");
        if let Some(entry) = table.iter_mut().find(|(key, _)| *key == conn) {
            entry.1 = costs;
            return;
        }
        if table.len() >= COST_SERIES_CAP {
            table.remove(0);
        }
        table.push((conn, costs));
    }

    /// The live-connection gauge of reactor `index`, creating it on first
    /// registration.  Reactors call this at startup and keep the `Arc`, so
    /// updating the gauge on the hot path is lock-free.
    pub fn register_reactor(&self, index: usize) -> Arc<Gauge> {
        let mut table = self
            .reactor_connections
            .lock()
            .expect("reactor registry poisoned");
        if let Some((_, gauge)) = table.iter().find(|(key, _)| *key == index) {
            return Arc::clone(gauge);
        }
        let gauge = Arc::new(Gauge::default());
        table.push((index, Arc::clone(&gauge)));
        table.sort_by_key(|(key, _)| *key);
        gauge
    }

    /// Live-connection counts per reactor, in reactor-index order.
    pub fn reactor_connection_counts(&self) -> Vec<(usize, u64)> {
        let table = self
            .reactor_connections
            .lock()
            .expect("reactor registry poisoned");
        table
            .iter()
            .map(|(index, gauge)| (*index, gauge.get()))
            .collect()
    }

    /// The registered cost series of `(conn, slot)`, if still retained.
    pub fn session_costs(&self, conn: u64, slot: u64) -> Option<Arc<SessionCosts>> {
        let table = self.sessions.lock().expect("session registry poisoned");
        table
            .iter()
            .find(|(key, _)| *key == (conn, slot))
            .map(|(_, costs)| Arc::clone(costs))
    }

    fn capture_frame(&self) -> RecentFrame {
        RecentFrame {
            at: Instant::now(),
            requests: self.requests.get(),
            replies: self.replies.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            frame: self.frame_ns.snapshot(),
            queue: self.queue_ns.snapshot(),
            plan: self.plan_ns.snapshot(),
            reply: self.reply_ns.snapshot(),
        }
    }

    /// Traffic-driven tick for the windowed-stats ring: cheap no-op unless
    /// the frame interval (250 ms) has passed since the newest frame.  Called
    /// at wave granularity, never per query.
    pub fn observe_recent(&self) {
        let mut frames = self.recent_frames.lock().expect("recent ring poisoned");
        if let Some(last) = frames.back() {
            if last.at.elapsed() < RECENT_FRAME_INTERVAL {
                return;
            }
        }
        let frame = self.capture_frame();
        Self::prune_frames(&mut frames, frame.at);
        frames.push_back(frame);
    }

    fn prune_frames(frames: &mut VecDeque<RecentFrame>, now: Instant) {
        while frames.len() >= RECENT_FRAME_CAP
            || frames
                .front()
                .is_some_and(|f| now.duration_since(f.at) > RECENT_WINDOW)
        {
            if frames.pop_front().is_none() {
                break;
            }
        }
    }

    /// Live stats over roughly the last minute: deltas between
    /// the oldest retained frame and now, via [`HistogramSnapshot::minus`].
    /// The first call after startup (no baseline yet) reports a zero-width
    /// window with zero deltas; it also seeds the ring, so rates become
    /// meaningful from the second call on.
    pub fn recent(&self) -> RecentStats {
        let now = self.capture_frame();
        let mut frames = self.recent_frames.lock().expect("recent ring poisoned");
        Self::prune_frames(&mut frames, now.at);
        let stats = match frames.front() {
            Some(base) => RecentStats {
                baseline: true,
                window: now.at.duration_since(base.at),
                requests: now.requests.saturating_sub(base.requests),
                replies: now.replies.saturating_sub(base.replies),
                bytes_read: now.bytes_read.saturating_sub(base.bytes_read),
                bytes_written: now.bytes_written.saturating_sub(base.bytes_written),
                frame: now.frame.minus(&base.frame),
                queue: now.queue.minus(&base.queue),
                plan: now.plan.minus(&base.plan),
                reply: now.reply.minus(&base.reply),
            },
            None => RecentStats {
                baseline: false,
                window: Duration::ZERO,
                requests: 0,
                replies: 0,
                bytes_read: 0,
                bytes_written: 0,
                frame: now.frame.minus(&now.frame),
                queue: now.queue.minus(&now.queue),
                plan: now.plan.minus(&now.plan),
                reply: now.reply.minus(&now.reply),
            },
        };
        let push = frames
            .back()
            .is_none_or(|last| now.at.duration_since(last.at) >= RECENT_FRAME_INTERVAL);
        if push {
            frames.push_back(now);
        }
        stats
    }

    /// Renders the registry as a Prometheus-text (0.0.4) exposition.
    /// Latency summaries are in microseconds.
    pub fn exposition(&self) -> String {
        let mut exp = Exposition::new();
        exp.counter("diffcond_requests_total", &[], self.requests.get());
        exp.counter("diffcond_parse_errors_total", &[], self.parse_errors.get());
        exp.counter("diffcond_replies_total", &[], self.replies.get());
        exp.counter("diffcond_slow_queries_total", &[], self.slow_queries.get());
        exp.counter("diffcond_waves_total", &[], self.waves.get());
        exp.gauge("diffcond_queue_depth", &[], self.queue_depth.get());
        exp.summary("diffcond_wave_size", &[], &self.wave_size.snapshot(), 1.0);
        for (label, histogram) in STAGE_LABELS.iter().zip(self.stage_histograms()) {
            exp.summary(
                "diffcond_stage_latency_us",
                &[("stage", label)],
                &histogram.snapshot(),
                1e3,
            );
        }
        exp.counter("diffcond_connections_total", &[], self.connections.get());
        exp.counter(
            "diffcond_bytes_total",
            &[("direction", "read")],
            self.bytes_read.get(),
        );
        exp.counter(
            "diffcond_bytes_total",
            &[("direction", "written")],
            self.bytes_written.get(),
        );
        exp.counter("diffcond_frames_total", &[], self.frames.get());
        exp.counter(
            "diffcond_framing_errors_total",
            &[],
            self.framing_errors.get(),
        );
        exp.counter("diffcond_idle_flushes_total", &[], self.idle_flushes.get());
        exp.counter(
            "diffcond_reactor_wakeups_total",
            &[],
            self.reactor_wakeups.get(),
        );
        exp.summary(
            "diffcond_reactor_ready_batch",
            &[],
            &self.reactor_ready_batch.snapshot(),
            1.0,
        );
        exp.summary(
            "diffcond_reactor_writev_bytes",
            &[],
            &self.reactor_writev_bytes.snapshot(),
            1.0,
        );
        exp.gauge("diffcond_reactor_threads", &[], self.reactor_threads.get());
        for (index, live) in self.reactor_connection_counts() {
            exp.gauge(
                "diffcond_reactor_connections",
                &[("reactor", &index.to_string())],
                live,
            );
        }
        exp.counter(
            "diffcond_epoch_publishes_total",
            &[],
            self.epoch_publishes.get(),
        );
        exp.counter("diffcond_trivial_queries_total", &[], self.trivial.get());
        exp.counter("diffcond_analyze_runs_total", &[], self.analyze_runs.get());
        exp.counter(
            "diffcond_analyze_redundant_total",
            &[],
            self.analyze_redundant.get(),
        );
        exp.counter(
            "diffcond_analyze_infeasible_total",
            &[],
            self.analyze_infeasible.get(),
        );
        exp.counter(
            "diffcond_analyze_applies_total",
            &[],
            self.analyze_applies.get(),
        );
        exp.summary(
            "diffcond_analyze_latency_us",
            &[],
            &self.analyze_ns.snapshot(),
            1e3,
        );
        for (label, histogram) in ROUTE_LABELS.iter().zip(self.route_ns.iter()) {
            exp.summary(
                "diffcond_route_latency_us",
                &[("route", label)],
                &histogram.snapshot(),
                1e3,
            );
        }
        for (label, histogram) in ["propagation", "relaxed"].iter().zip(self.bound_ns.iter()) {
            exp.summary(
                "diffcond_bound_latency_us",
                &[("route", label)],
                &histogram.snapshot(),
                1e3,
            );
        }
        for family in CacheFamily::ALL {
            let counters = self.cache(family);
            for (outcome, value) in [
                ("hit", counters.hits.get()),
                ("miss", counters.misses.get()),
                ("eviction", counters.evictions.get()),
                ("collision", counters.collisions.get()),
            ] {
                exp.counter(
                    "diffcond_cache_ops_total",
                    &[("cache", family.name()), ("outcome", outcome)],
                    value,
                );
            }
        }
        exp.counter("diffcond_flight_records_total", &[], self.flight.written());
        exp.counter(
            "diffcond_slow_log_dropped_total",
            &[],
            self.slow_log_dropped.get(),
        );
        // Allocation accounting (live whenever the counting allocator is
        // installed — always, for this crate and its dependents).
        let alloc = profile::alloc_counts();
        exp.counter("diffcond_alloc_ops_total", &[("op", "alloc")], alloc.allocs);
        exp.counter("diffcond_alloc_ops_total", &[("op", "free")], alloc.frees);
        exp.counter(
            "diffcond_alloc_bytes_total",
            &[("op", "alloc")],
            alloc.alloc_bytes,
        );
        exp.counter(
            "diffcond_alloc_bytes_total",
            &[("op", "free")],
            alloc.free_bytes,
        );
        // Per-stage allocation attribution: counted only while profiling is
        // enabled (tags are published by the beacon guards).  Tag counters
        // are monotone and a tag once seen never vanishes, so scrape-over-
        // scrape series sets only grow.
        for (stage, allocs, bytes) in profile::tag_alloc_counts() {
            exp.counter("diffcond_stage_allocs_total", &[("stage", stage)], allocs);
            exp.counter(
                "diffcond_stage_alloc_bytes_total",
                &[("stage", stage)],
                bytes,
            );
        }
        // Continuous-profiler state: total samples, whether it is running,
        // and every accumulated collapsed stack as a labeled series (all of
        // them — truncating to a top-N would make series vanish between
        // scrapes).
        exp.gauge(
            "diffcond_profile_running",
            &[],
            u64::from(profile::sampler_hz().is_some()),
        );
        exp.counter(
            "diffcond_profile_samples_total",
            &[],
            profile::samples_total(),
        );
        for (stack, count) in profile::top_stacks(usize::MAX) {
            exp.counter(
                "diffcond_profile_stack_samples_total",
                &[("stack", &stack)],
                count,
            );
        }
        // Per-session and per-connection attribution.  Families are grouped
        // (all sessions under one family before the next) so each family's
        // TYPE header precedes every sample of that family.
        let sessions: Vec<(SessionKey, Arc<SessionCosts>)> = self
            .sessions
            .lock()
            .expect("session registry poisoned")
            .iter()
            .map(|(key, costs)| (*key, Arc::clone(costs)))
            .collect();
        let session_labels: Vec<(String, String)> = sessions
            .iter()
            .map(|((conn, slot), _)| (conn.to_string(), slot.to_string()))
            .collect();
        let session_counter =
            |exp: &mut Exposition, name: &str, value: fn(&SessionCosts) -> u64| {
                for ((_, costs), (conn, slot)) in sessions.iter().zip(&session_labels) {
                    exp.counter(name, &[("conn", conn), ("slot", slot)], value(costs));
                }
            };
        session_counter(&mut exp, "diffcond_session_queries_total", |c| {
            c.queries.get()
        });
        session_counter(&mut exp, "diffcond_session_decide_us_total", |c| {
            c.decide_ns.get() / 1_000
        });
        session_counter(&mut exp, "diffcond_session_queue_us_total", |c| {
            c.queue_ns.get() / 1_000
        });
        session_counter(&mut exp, "diffcond_session_cache_hits_total", |c| {
            c.cache_hits.get()
        });
        for ((_, costs), (conn, slot)) in sessions.iter().zip(&session_labels) {
            for (route, counter) in ROUTE_LABELS.iter().zip(costs.routes.iter()) {
                exp.counter(
                    "diffcond_session_route_total",
                    &[("conn", conn), ("slot", slot), ("route", route)],
                    counter.get(),
                );
            }
        }
        let conns: Vec<(u64, Arc<ConnCosts>)> = self
            .conn_costs
            .lock()
            .expect("connection registry poisoned")
            .iter()
            .map(|(key, costs)| (*key, Arc::clone(costs)))
            .collect();
        let conn_labels: Vec<String> = conns.iter().map(|(c, _)| c.to_string()).collect();
        for ((_, costs), conn) in conns.iter().zip(&conn_labels) {
            exp.counter(
                "diffcond_connection_requests_total",
                &[("conn", conn)],
                costs.requests.get(),
            );
        }
        for ((_, costs), conn) in conns.iter().zip(&conn_labels) {
            for (direction, value) in [
                ("read", costs.bytes_read.get()),
                ("written", costs.bytes_written.get()),
            ] {
                exp.counter(
                    "diffcond_connection_bytes_total",
                    &[("conn", conn), ("direction", direction)],
                    value,
                );
            }
        }
        exp.finish()
    }
}

/// Longest `/profile?seconds=S` window the endpoint will block for.
const PROFILE_MAX_SECONDS: u64 = 30;

/// The metrics HTTP server's route table, shared by `diffcond serve` and
/// the tests (the server itself stays in `diffcon_obs`; this is only the
/// dispatch):
///
/// * `/metrics` (and `/`) — the Prometheus exposition.
/// * `/healthz` — readiness: answers `200 ok` once the process is serving
///   (the listener is up by construction when this handler runs) with the
///   current pipeline queue depth, so orchestration and CI can gate on it
///   instead of sleeping.
/// * `/buildinfo` — name, version, and debug/release flavor.
/// * `/profile?seconds=S[&hz=H]` — one-shot profile: samples every serving
///   thread for `S` seconds (default 2, capped at 30) at `H` Hz (default
///   97) and answers flamegraph-collapsed stacks.
pub fn http_routes(path: &str) -> HttpResponse {
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, query),
        None => (path, ""),
    };
    match route {
        "/" | "/metrics" => HttpResponse::ok(EngineMetrics::global().exposition()),
        "/healthz" => HttpResponse::ok(format!(
            "ok queue_depth={}\n",
            EngineMetrics::global().queue_depth.get()
        )),
        "/buildinfo" => HttpResponse::ok(format!(
            "name=diffcond version={} flavor={}\n",
            env!("CARGO_PKG_VERSION"),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        )),
        "/profile" => {
            let mut seconds = 2u64;
            let mut hz = 0u32; // 0 = the profiler's default rate
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
                let parsed: Result<u64, _> = value.parse();
                match (key, parsed) {
                    ("seconds", Ok(s)) => seconds = s,
                    ("hz", Ok(h)) => hz = h.min(1_000) as u32,
                    _ => {
                        return HttpResponse::bad_request(format!(
                            "unrecognized profile parameter: {pair}\n"
                        ))
                    }
                }
            }
            let window = Duration::from_secs(seconds.clamp(1, PROFILE_MAX_SECONDS));
            HttpResponse::ok(profile::profile_for(window, hz))
        }
        _ => HttpResponse::not_found(route),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffcon_obs::{parse_exposition, Series};

    #[test]
    fn exposition_parses_and_has_unique_series() {
        let metrics = EngineMetrics::default();
        metrics.requests.add(3);
        metrics.cache(CacheFamily::Answer).absorb_delta(CacheStats {
            hits: 2,
            misses: 1,
            evictions: 0,
            collisions: 1,
        });
        metrics.route_latency(ProcedureKind::Lattice).record(25_000);
        metrics
            .bound_latency(DeriveRoute::Propagation)
            .record(40_000);
        let text = metrics.exposition();
        let series = parse_exposition(&text).expect("exposition must parse");
        let mut keys: Vec<String> = series.iter().map(Series::key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "duplicate series in exposition");
        let requests = series
            .iter()
            .find(|s| s.name == "diffcond_requests_total")
            .unwrap();
        assert_eq!(requests.value, 3.0);
        let collision = series
            .iter()
            .find(|s| {
                s.name == "diffcond_cache_ops_total"
                    && s.labels.contains(&("outcome".into(), "collision".into()))
                    && s.labels.contains(&("cache".into(), "answer".into()))
            })
            .unwrap();
        assert_eq!(collision.value, 1.0);
        let lattice_count = series
            .iter()
            .find(|s| {
                s.name == "diffcond_route_latency_us_count"
                    && s.labels.contains(&("route".into(), "lattice".into()))
            })
            .unwrap();
        assert_eq!(lattice_count.value, 1.0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = EngineMetrics::global() as *const EngineMetrics;
        let b = EngineMetrics::global() as *const EngineMetrics;
        assert_eq!(a, b);
    }

    #[test]
    fn flight_record_round_trips_and_renders() {
        let record = FlightRecord {
            trace: (7 << 32) | 3,
            conn: 7,
            slot: 2,
            verb: "implies",
            route: "lattice",
            cached: true,
            bytes_in: 19,
            bytes_out: 40,
            frame_ns: 1_500,
            queue_ns: 250_000,
            plan_ns: 30_000,
            decide_ns: 28_000,
            reply_ns: 2_000,
            epoch: 5,
        };
        assert_eq!(FlightRecord::decode(&record.encode()), record);
        let line = record.render();
        for field in [
            "trace=30064771075",
            "conn=7",
            "slot=2",
            "verb=implies",
            "route=lattice",
            "cached=1",
            "in=19",
            "out=40",
            "frame_us=1",
            "queue_us=250",
            "plan_us=30",
            "decide_us=28",
            "reply_us=2",
            "epoch=5",
        ] {
            assert!(line.contains(field), "missing `{field}` in `{line}`");
        }
    }

    #[test]
    fn unknown_flight_codes_decode_to_the_sentinel() {
        let mut words = [0u64; diffcon_obs::FLIGHT_WORDS];
        words[3] = (0xff << 16) | (0xff << 8);
        let record = FlightRecord::decode(&words);
        assert_eq!(record.verb, "?");
        assert_eq!(record.route, "?");
    }

    #[test]
    fn session_registry_replaces_then_evicts_at_capacity() {
        let metrics = EngineMetrics::default();
        let first = Arc::new(SessionCosts::default());
        first.queries.add(1);
        metrics.register_session(1, 0, Arc::clone(&first));
        let replacement = Arc::new(SessionCosts::default());
        replacement.queries.add(2);
        metrics.register_session(1, 0, replacement);
        assert_eq!(metrics.session_costs(1, 0).unwrap().queries.get(), 2);
        for slot in 0..COST_SERIES_CAP as u64 {
            metrics.register_session(2, slot, Arc::new(SessionCosts::default()));
        }
        assert!(
            metrics.session_costs(1, 0).is_none(),
            "oldest series evicted once the registry reaches capacity"
        );
    }

    #[test]
    fn exposition_carries_labeled_attribution_series() {
        let metrics = EngineMetrics::default();
        let costs = Arc::new(SessionCosts::default());
        costs.queries.add(11);
        costs.decide_ns.add(4_000);
        costs.routes[1].add(7);
        metrics.register_session(3, 0, costs);
        let conn = Arc::new(ConnCosts::default());
        conn.requests.add(13);
        conn.bytes_written.add(99);
        metrics.register_connection(3, conn);
        let series = parse_exposition(&metrics.exposition()).expect("exposition must parse");
        let mut keys: Vec<String> = series.iter().map(Series::key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "duplicate series in exposition");
        let find = |name: &str, label: (&str, &str)| {
            series
                .iter()
                .find(|s| s.name == name && s.labels.contains(&(label.0.into(), label.1.into())))
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        assert_eq!(
            find("diffcond_session_queries_total", ("conn", "3")).value,
            11.0
        );
        assert_eq!(
            find("diffcond_session_decide_us_total", ("slot", "0")).value,
            4.0
        );
        assert_eq!(
            find("diffcond_session_route_total", ("route", "lattice")).value,
            7.0
        );
        assert_eq!(
            find("diffcond_connection_requests_total", ("conn", "3")).value,
            13.0
        );
        assert_eq!(
            find("diffcond_connection_bytes_total", ("direction", "written")).value,
            99.0
        );
    }

    #[test]
    fn recent_window_reports_deltas_after_a_baseline() {
        let metrics = EngineMetrics::default();
        let first = metrics.recent();
        assert_eq!(first.window, Duration::ZERO);
        assert_eq!(first.requests, 0);
        assert_eq!(first.queue.count(), 0);
        metrics.requests.add(10);
        metrics.replies.add(9);
        metrics.queue_ns.record(1_000_000);
        std::thread::sleep(Duration::from_millis(5));
        let second = metrics.recent();
        assert!(second.window > Duration::ZERO);
        assert_eq!(second.requests, 10);
        assert_eq!(second.replies, 9);
        assert_eq!(second.queue.count(), 1);
        assert!(second.queue.p50() >= 500_000);
    }
}
