//! Support functions and their densities (Section 6.1 of the paper).
//!
//! For a basket database `B` over `S`, the support function `s_B : 2^S → ℝ`
//! maps each itemset to the number of baskets containing it.  The paper's key
//! observation (Section 6.1) is that the density function of `s_B` is the
//! exact-multiplicity function `d^B(X) = |{i | B[i] = X}|`, which is
//! nonnegative — hence every support function is a *frequency function*, and by
//! Proposition 2.9 all its differentials are nonnegative.

use crate::basket::BasketDb;
use setlat::{differential, mobius, AttrSet, Family, SetFunction};

/// Materializes the support function `s_B` as a dense [`SetFunction`].
///
/// Instead of counting each itemset separately (`O(4^n)`-ish), this builds the
/// exact-multiplicity table `d^B` in one pass over the baskets and applies the
/// zeta transform (equation (5) of the paper): `s_B(X) = Σ_{X ⊆ U} d^B(U)`.
pub fn support_function(db: &BasketDb) -> SetFunction {
    mobius::from_density(&exact_count_function(db))
}

/// Materializes the exact-multiplicity function `d^B` as a dense [`SetFunction`].
pub fn exact_count_function(db: &BasketDb) -> SetFunction {
    let mut d = SetFunction::zeros(db.universe_size());
    for &basket in db.baskets() {
        d.add(basket, 1.0);
    }
    d
}

/// Reconstructs *a* basket database from a nonnegative integer-valued density
/// function: the database containing `d(X)` copies of the basket `X`.
///
/// This is the paper's observation that "it is possible to induce a basket
/// space from each of these functions, and vice versa" (Section 6): it is the
/// inverse of [`exact_count_function`] up to basket order.
///
/// # Panics
/// Panics if any density value is negative or not (close to) an integer.
pub fn database_from_density(density: &SetFunction) -> BasketDb {
    let n = density.universe_size();
    let mut db = BasketDb::new(n);
    for (x, v) in density.iter() {
        assert!(
            v >= -1e-9,
            "density must be nonnegative to induce a basket database (got {v} at {x:?})"
        );
        let count = v.round();
        assert!(
            (v - count).abs() < 1e-9,
            "density must be integer-valued to induce a basket database (got {v} at {x:?})"
        );
        for _ in 0..count as usize {
            db.push(x);
        }
    }
    db
}

/// Returns `true` iff the support function of `db` is a frequency function
/// (it always is; exposed so tests can confirm the claim of Section 6.1).
pub fn support_is_frequency_function(db: &BasketDb) -> bool {
    differential::is_frequency_function(&support_function(db), 1e-9)
}

/// The `𝒴`-differential of the support function evaluated at `X`, computed
/// directly on the database by inclusion–exclusion over the members of `𝒴`.
///
/// For frequency functions the paper notes that `f ⊨ X → 𝒴` iff
/// `D^𝒴_f(X) = 0`; this helper lets callers evaluate that criterion without
/// materializing the dense support table.
pub fn support_differential(db: &BasketDb, x: AttrSet, fam: &Family) -> f64 {
    let members = fam.members();
    let k = members.len();
    assert!(k <= 30, "family too large for inclusion-exclusion");
    let mut acc = 0.0;
    for chooser in 0u64..(1u64 << k) {
        let mut union = x;
        for (i, &m) in members.iter().enumerate() {
            if (chooser >> i) & 1 == 1 {
                union = union.union(m);
            }
        }
        let sign = if chooser.count_ones() % 2 == 0 {
            1.0
        } else {
            -1.0
        };
        acc += sign * db.support(union) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    fn sample_db() -> (Universe, BasketDb) {
        let u = Universe::of_size(4);
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD\nAB").unwrap();
        (u, db)
    }

    #[test]
    fn support_function_matches_direct_counting() {
        let (u, db) = sample_db();
        let s = support_function(&db);
        for x in u.all_subsets() {
            assert_eq!(s.get(x), db.support(x) as f64, "mismatch at {x:?}");
        }
    }

    #[test]
    fn density_of_support_is_exact_count() {
        // Section 6.1: d_{s_B} = d^B.
        let (u, db) = sample_db();
        let s = support_function(&db);
        let density = mobius::density_function(&s);
        for x in u.all_subsets() {
            assert!(
                (density.get(x) - db.exact_count(x) as f64).abs() < 1e-9,
                "d_sB({x:?}) = {} but exact count = {}",
                density.get(x),
                db.exact_count(x)
            );
        }
    }

    #[test]
    fn support_functions_are_frequency_functions() {
        let (_u, db) = sample_db();
        assert!(support_is_frequency_function(&db));
        assert!(support_is_frequency_function(&BasketDb::new(3)));
    }

    #[test]
    fn database_from_density_roundtrip() {
        let (u, db) = sample_db();
        let rebuilt = database_from_density(&exact_count_function(&db));
        // Same multiset of baskets (order may differ).
        assert_eq!(rebuilt.len(), db.len());
        for x in u.all_subsets() {
            assert_eq!(rebuilt.exact_count(x), db.exact_count(x));
            assert_eq!(rebuilt.support(x), db.support(x));
        }
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_density_rejected() {
        let mut d = SetFunction::zeros(2);
        d.set(AttrSet::EMPTY, -1.0);
        let _ = database_from_density(&d);
    }

    #[test]
    fn support_differential_matches_dense() {
        let (u, db) = sample_db();
        let s = support_function(&db);
        let fams = [
            Family::empty(),
            Family::single(u.parse_set("B").unwrap()),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        ];
        for x in u.all_subsets() {
            for fam in &fams {
                let direct = support_differential(&db, x, fam);
                let dense = differential::differential_at(&s, x, fam);
                assert!((direct - dense).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn differentials_of_support_are_nonnegative() {
        // The defining property of frequency functions, checked on a handful of
        // families.
        let (u, db) = sample_db();
        let families = [
            Family::empty(),
            Family::single(u.parse_set("C").unwrap()),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
            Family::from_sets([
                u.parse_set("A").unwrap(),
                u.parse_set("B").unwrap(),
                u.parse_set("D").unwrap(),
            ]),
        ];
        for x in u.all_subsets() {
            for fam in &families {
                assert!(support_differential(&db, x, fam) >= -1e-9);
            }
        }
    }

    #[test]
    fn intro_constraint_semantics() {
        // Introduction: f(X) = f(X ∪ Y) means every basket containing X also
        // contains Y.  Build a database where every basket containing A contains B.
        let u = Universe::of_size(3);
        let db = BasketDb::parse(&u, "AB\nABC\nB\nC").unwrap();
        let x = u.parse_set("A").unwrap();
        let y = u.parse_set("B").unwrap();
        assert_eq!(db.support(x), db.support(x.union(y)));
        // And the differential D^{Y}_s(X) = 0.
        let fam = Family::single(y);
        assert_eq!(support_differential(&db, x, &fam), 0.0);
    }
}
