//! Hermetic stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate implements the
//! API surface the `crates/bench` benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, bench_function, finish}`,
//! `Bencher::iter`, `BenchmarkId::new`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.
//!
//! Each benchmark is warmed up briefly, then timed over `sample_size` samples
//! (each sample runs the closure enough times to exceed a minimum measurable
//! duration); the median sample is reported to stderr as
//! `bench <group>/<id> ... <time>/iter`.  This keeps `cargo bench` runnable
//! and its relative numbers meaningful without any external dependencies.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark inside a group, e.g. `universe/12`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs timing loops for a single benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_estimate: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, recording the median per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find how many iterations fill ~1 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter.push(start.elapsed() / iters_per_sample as u32);
        }
        per_iter.sort();
        self.last_estimate = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares a target measurement time (accepted for API compatibility;
    /// the shim's sample loop is already bounded).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_estimate: None,
        };
        f(&mut bencher, input);
        self.report(&id.id, bencher.last_estimate);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_estimate: None,
        };
        f(&mut bencher);
        self.report(&id.id, bencher.last_estimate);
        self
    }

    fn report(&self, id: &str, estimate: Option<Duration>) {
        match estimate {
            Some(t) => eprintln!("bench {}/{id} ... {}/iter", self.name, format_duration(t)),
            None => eprintln!("bench {}/{id} ... no measurement", self.name),
        }
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn format_duration(t: Duration) -> String {
    let nanos = t.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Top-level benchmark context, handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(name, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_an_estimate() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(5);
        let mut measured = false;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            measured = true;
        });
        group.finish();
        assert!(measured);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
