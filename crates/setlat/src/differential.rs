//! `𝒴`-differentials of set functions (Definition 2.1 of the paper).
//!
//! For a family `𝒴` of subsets of `S` and a function `f ∈ F(S)`, the
//! `𝒴`-differential of `f` is the function
//!
//! ```text
//! D^𝒴_f(X) = Σ_{𝒵 ⊆ 𝒴} (−1)^{|𝒵|} f(X ∪ ⋃𝒵).
//! ```
//!
//! Proposition 2.9 states that the differential equals the sum of the density
//! function over the lattice decomposition:
//! `D^𝒴_f(X) = Σ_{U ∈ L(X,𝒴)} d_f(U)`.  Both evaluation strategies are provided;
//! their agreement is tested here and property-tested in the crate's test suite.

use crate::attrset::AttrSet;
use crate::family::Family;
use crate::lattice::in_lattice;
use crate::mobius::density_function;
use crate::powerset::supersets_within;
use crate::setfn::SetFunction;

/// Evaluates the differential `D^𝒴_f(X)` directly from Definition 2.1, summing
/// over all `2^|𝒴|` sub-families.
pub fn differential_at(f: &SetFunction, x: AttrSet, fam: &Family) -> f64 {
    let members = fam.members();
    let k = members.len();
    assert!(
        k <= 30,
        "differential over a family of more than 30 members is infeasible"
    );
    let mut acc = 0.0;
    for chooser in 0u64..(1u64 << k) {
        let mut union = x;
        for (i, &m) in members.iter().enumerate() {
            if (chooser >> i) & 1 == 1 {
                union = union.union(m);
            }
        }
        let sign = if chooser.count_ones() % 2 == 0 {
            1.0
        } else {
            -1.0
        };
        acc += sign * f.get(union);
    }
    acc
}

/// Evaluates `D^𝒴_f(X)` through Proposition 2.9, as the sum of a precomputed
/// density function over the members of `L(X, 𝒴)`.
///
/// `density` must be the density function of the same `f` (see
/// [`crate::mobius::density_function`]).
pub fn differential_via_density(density: &SetFunction, x: AttrSet, fam: &Family) -> f64 {
    let n = density.universe_size();
    supersets_within(x, n)
        .filter(|&u| in_lattice(x, fam, u))
        .map(|u| density.get(u))
        .sum()
}

/// Computes the full differential function `X ↦ D^𝒴_f(X)` as a [`SetFunction`].
pub fn differential_function(f: &SetFunction, fam: &Family) -> SetFunction {
    SetFunction::from_fn(f.universe_size(), |x| differential_at(f, x, fam))
}

/// The density function expressed as a differential (Definition 2.1, second
/// part): `d_f(X) = D^{{y} | y ∈ S−X}_f(X)`.
///
/// This is an alternative route to the density at a single point; the full
/// density table is more efficiently computed by
/// [`crate::mobius::density_function`].
pub fn density_at_via_differential(f: &SetFunction, x: AttrSet) -> f64 {
    let n = f.universe_size();
    let complement_singletons = Family::of_singletons(x.complement_in(n));
    differential_at(f, x, &complement_singletons)
}

/// Returns `true` iff `f` is a *frequency function* in the sense of Section 6 of
/// the paper: for every family `𝒴` of subsets of `S`, the differential `D^𝒴_f`
/// is nonnegative.
///
/// By Proposition 2.9 this is equivalent to the density function of `f` being
/// nonnegative (every differential is a sum of densities over a lattice, and
/// conversely each density value is itself a differential), so the check is a
/// single Möbius transform rather than an enumeration of all families.
pub fn is_frequency_function(f: &SetFunction, tol: f64) -> bool {
    density_function(f).is_nonnegative(tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn abcd() -> Universe {
        Universe::of_size(4)
    }

    fn fam(u: &Universe, members: &[&str]) -> Family {
        Family::from_sets(members.iter().map(|m| u.parse_set(m).unwrap()))
    }

    fn test_function() -> SetFunction {
        SetFunction::from_fn(4, |x| ((x.bits() * 37 + 11) % 17) as f64 - 5.0)
    }

    #[test]
    fn example_2_2_expansion() {
        // D^{B,CD}_f(A) = f(A) − f(AB) − f(ACD) + f(ABCD).
        let u = abcd();
        let f = test_function();
        let g = |names: &str| f.get(u.parse_set(names).unwrap());
        let expected = g("A") - g("AB") - g("ACD") + g("ABCD");
        let actual = differential_at(&f, u.parse_set("A").unwrap(), &fam(&u, &["B", "CD"]));
        assert!((expected - actual).abs() < 1e-12);
    }

    #[test]
    fn example_2_2_density_points() {
        // d_f(A) = D^{B,C,D}_f(A); d_f(AC) = D^{B,D}_f(AC); d_f(AD) = D^{B,C}_f(AD).
        let u = abcd();
        let f = test_function();
        let d = density_function(&f);
        let cases = [
            ("A", vec!["B", "C", "D"]),
            ("AC", vec!["B", "D"]),
            ("AD", vec!["B", "C"]),
        ];
        for (x, family) in cases {
            let xv = u.parse_set(x).unwrap();
            let expected = d.get(xv);
            let actual = differential_at(&f, xv, &fam(&u, &family));
            assert!(
                (expected - actual).abs() < 1e-12,
                "mismatch for d_f({x}) via differential"
            );
        }
    }

    #[test]
    fn example_2_10_density_sum() {
        // D^{B,CD}_f(A) = d_f(A) + d_f(AC) + d_f(AD).
        let u = abcd();
        let f = test_function();
        let d = density_function(&f);
        let g = |names: &str| d.get(u.parse_set(names).unwrap());
        let expected = g("A") + g("AC") + g("AD");
        let actual = differential_at(&f, u.parse_set("A").unwrap(), &fam(&u, &["B", "CD"]));
        assert!((expected - actual).abs() < 1e-12);
    }

    #[test]
    fn proposition_2_9_agreement() {
        // Direct evaluation and density-sum evaluation agree for many (X, 𝒴) pairs.
        let u = abcd();
        let f = test_function();
        let d = density_function(&f);
        let families = [
            vec![],
            vec!["B"],
            vec!["B", "CD"],
            vec!["BC", "BD"],
            vec!["A", "B", "C", "D"],
            vec!["ABCD"],
        ];
        for x in u.all_subsets() {
            for members in &families {
                let fm = fam(&u, members);
                let direct = differential_at(&f, x, &fm);
                let via = differential_via_density(&d, x, &fm);
                assert!(
                    (direct - via).abs() < 1e-9,
                    "Proposition 2.9 mismatch at X={x:?}, 𝒴={members:?}: {direct} vs {via}"
                );
            }
        }
    }

    #[test]
    fn constraint_1_2_3_formats() {
        // The three constraints of the introduction as differentials:
        // (1) Y = ∅:        D^∅_f(X) = f(X)
        // (2) Y = {Y}:      D^{Y}_f(X) = f(X) − f(X ∪ Y)
        // (3) Y = {Y, Z}:   D^{Y,Z}_f(X) = f(X) − f(X∪Y) − f(X∪Z) + f(X∪Y∪Z)
        let u = abcd();
        let f = test_function();
        let x = u.parse_set("A").unwrap();
        let y = u.parse_set("B").unwrap();
        let z = u.parse_set("CD").unwrap();
        let g = |s: AttrSet| f.get(s);

        assert!((differential_at(&f, x, &Family::empty()) - g(x)).abs() < 1e-12);
        assert!(
            (differential_at(&f, x, &Family::single(y)) - (g(x) - g(x.union(y)))).abs() < 1e-12
        );
        let expected3 = g(x) - g(x.union(y)) - g(x.union(z)) + g(x.union(y).union(z));
        assert!((differential_at(&f, x, &Family::from_sets([y, z])) - expected3).abs() < 1e-12);
    }

    #[test]
    fn density_via_differential_matches_mobius() {
        let f = test_function();
        let d = density_function(&f);
        let u = abcd();
        for x in u.all_subsets() {
            let via = density_at_via_differential(&f, x);
            assert!((via - d.get(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn differential_function_table() {
        let u = abcd();
        let f = test_function();
        let fm = fam(&u, &["B", "CD"]);
        let table = differential_function(&f, &fm);
        for x in u.all_subsets() {
            assert!((table.get(x) - differential_at(&f, x, &fm)).abs() < 1e-12);
        }
    }

    #[test]
    fn frequency_function_detection() {
        // A support-like function (nonnegative density) is a frequency function;
        // the function of Remark 3.6 is not.
        let mut density = SetFunction::zeros(3);
        density.set(AttrSet::from_indices([0]), 2.0);
        density.set(AttrSet::from_indices([0, 1]), 1.0);
        let f = crate::mobius::from_density(&density);
        assert!(is_frequency_function(&f, 1e-12));

        let mut g = SetFunction::zeros(1);
        g.set(AttrSet::singleton(0), 1.0);
        assert!(!is_frequency_function(&g, 1e-12));
    }

    #[test]
    fn duplicate_members_have_no_effect() {
        // A family is a *set*: {Y, Y} = {Y}. Family normalization guarantees this,
        // and the differential honours it.
        let u = abcd();
        let f = test_function();
        let x = u.parse_set("A").unwrap();
        let single = Family::single(u.parse_set("B").unwrap());
        let doubled = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("B").unwrap()]);
        assert_eq!(single, doubled);
        assert!((differential_at(&f, x, &single) - differential_at(&f, x, &doubled)).abs() < 1e-12);
    }
}
