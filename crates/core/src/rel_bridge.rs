//! The relational bridge (Section 7): Simpson functions and positive boolean
//! dependencies.
//!
//! * Proposition 7.3: `simpson_{r,p} ⊨ X → 𝒴` iff `r ⊨ X ⇒bool 𝒴`.
//! * Corollary 7.4: `C ⊨_simpson(S) X → 𝒴` iff `Cboolean ⊨ X ⇒bool 𝒴`, which by
//!   Theorem 8.1 coincides with plain differential-constraint implication.

use crate::constraint::DiffConstraint;
use crate::implication;
use relational::armstrong;
use relational::boolean_dep::BooleanDependency;
use relational::distribution::ProbabilisticRelation;
use relational::fd::FunctionalDependency;
use relational::simpson;
use setlat::{AttrSet, Family, Universe};

/// Translates a differential constraint into the positive boolean dependency
/// with the same left-hand side and family.
pub fn to_boolean_dependency(constraint: &DiffConstraint) -> BooleanDependency {
    BooleanDependency::new(constraint.lhs, constraint.rhs.clone())
}

/// Translates a positive boolean dependency into a differential constraint.
pub fn from_boolean_dependency(dep: &BooleanDependency) -> DiffConstraint {
    DiffConstraint::new(dep.lhs, dep.rhs.clone())
}

/// Translates a functional dependency `X → Y` into the single-member
/// differential constraint `X → {Y}`.
pub fn from_functional_dependency(fd: &FunctionalDependency) -> DiffConstraint {
    DiffConstraint::new(fd.lhs, Family::single(fd.rhs))
}

/// Satisfaction of a differential constraint by a probabilistic relation,
/// through its Simpson function (the left-hand side of Proposition 7.3).
pub fn simpson_satisfies(pr: &ProbabilisticRelation, constraint: &DiffConstraint) -> bool {
    crate::semantics::satisfies(&simpson::simpson_function(pr), constraint)
}

/// Returns `true` iff no nonempty probabilistic relation can satisfy every
/// premise — which happens exactly when some premise has an *empty* right-hand
/// side family (`X → ∅`): the Simpson density at the full set `S` is always
/// `Σ p(t)² > 0`, yet `S ∈ L(X, ∅)`, so such a constraint has no Simpson model.
///
/// In this degenerate corner the implication problem over `simpson(S)` is
/// vacuously true while the problem over `F(S)` need not be; everywhere else
/// the two coincide (Theorem 8.1).  The reproduction records this as a
/// (benign) caveat to the paper's Theorem 8.1 statement — see `EXPERIMENTS.md`.
pub fn vacuous_over_relations(premises: &[DiffConstraint]) -> bool {
    premises.iter().any(|p| p.rhs.is_empty())
}

/// Decides `C ⊨_simpson(S) goal`: does every probabilistic relation whose
/// Simpson function satisfies `C` also satisfy `goal`?
///
/// A nonempty relation's Simpson density is positive at `S` and at every
/// pairwise agree-set, so a counterexample exists iff `S ∉ L(C)` and some
/// `U ∈ L(goal) − L(C)` exists (the two-tuple relation agreeing exactly on `U`
/// then separates `C` from the goal).  Hence
///
/// `C ⊨_simpson goal  ⇔  L(goal) ⊆ L(C)  ∨  S ∈ L(C)`,
///
/// i.e. plain implication except for the vacuous corner described at
/// [`vacuous_over_relations`].
pub fn implies_over_simpson(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    vacuous_over_relations(premises) || implication::implies(universe, premises, goal)
}

/// Builds the Armstrong-style witness relation for a premise set (re-exported
/// convenience around [`relational::armstrong::armstrong_relation`]); useful
/// when a single relation refuting many non-implied constraints at once is
/// wanted.  Note the caveats discussed in that module: constraints with empty
/// left-hand sides or empty families are the degenerate corners.
pub fn armstrong_relation(
    universe: &Universe,
    premises: &[DiffConstraint],
) -> relational::relation::Relation {
    let parts: Vec<(AttrSet, Family)> = premises.iter().map(|c| (c.lhs, c.rhs.clone())).collect();
    armstrong::armstrong_relation(universe, &parts)
}

/// Decides implication of positive boolean dependencies
/// (`Cboolean ⊨ X ⇒bool 𝒴`), which by Corollary 7.4 / Theorem 8.1 is the same
/// problem as differential-constraint implication.
pub fn boolean_implies(
    universe: &Universe,
    premises: &[BooleanDependency],
    goal: &BooleanDependency,
) -> bool {
    let premises_diff: Vec<DiffConstraint> = premises.iter().map(from_boolean_dependency).collect();
    implication::implies(universe, &premises_diff, &from_boolean_dependency(goal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::generator;
    use relational::relation::Relation;

    fn u4() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn proposition_7_3_satisfaction_equivalence() {
        let u = u4();
        let relations = vec![
            Relation::from_tuples(
                4,
                vec![
                    vec![1, 10, 100, 7],
                    vec![1, 10, 200, 7],
                    vec![2, 20, 100, 7],
                    vec![2, 30, 100, 8],
                ],
            ),
            generator::random_relation(5, 4, 20, 3),
            generator::random_relation(9, 4, 12, 2),
        ];
        let constraints = parse(
            &u,
            &[
                "A -> {B}",
                "B -> {A}",
                "A -> {B, C}",
                "AB -> {CD}",
                " -> {A}",
                "AB -> {B}",
            ],
        );
        for (i, r) in relations.into_iter().enumerate() {
            if r.is_empty() {
                continue;
            }
            // Both the uniform and a skewed distribution must give the same verdict
            // (satisfaction does not depend on p as long as p > 0 on r).
            let uniform = ProbabilisticRelation::uniform(r.clone());
            let skewed = generator::random_distribution(99 + i as u64, r.clone());
            for c in &constraints {
                let bool_dep = to_boolean_dependency(c).satisfied_by(&r);
                assert_eq!(
                    bool_dep,
                    simpson_satisfies(&uniform, c),
                    "Prop 7.3 (uniform) failed for {} on relation #{i}",
                    c.format(&u)
                );
                assert_eq!(
                    bool_dep,
                    simpson_satisfies(&skewed, c),
                    "Prop 7.3 (skewed) failed for {} on relation #{i}",
                    c.format(&u)
                );
            }
        }
    }

    #[test]
    fn corollary_7_4_implication_equivalence() {
        let u = u4();
        let premise_sets = vec![
            parse(&u, &["A -> {B}", "B -> {C}"]),
            parse(&u, &["A -> {BC, CD}", "C -> {D}"]),
            parse(&u, &["A -> {B, CD}"]),
            vec![],
        ];
        let goals = parse(
            &u,
            &[
                "A -> {C}",
                "AB -> {D}",
                "A -> {B}",
                "C -> {A}",
                "A -> {B, CD}",
                "AB -> {B}",
            ],
        );
        for premises in &premise_sets {
            for goal in &goals {
                let general = implication::implies(&u, premises, goal);
                assert_eq!(
                    general,
                    implies_over_simpson(&u, premises, goal),
                    "Cor 7.4 failed: F(S) vs simpson(S) on {}",
                    goal.format(&u)
                );
                let bool_premises: Vec<BooleanDependency> =
                    premises.iter().map(to_boolean_dependency).collect();
                assert_eq!(
                    general,
                    boolean_implies(&u, &bool_premises, &to_boolean_dependency(goal))
                );
            }
        }
    }

    #[test]
    fn fd_translation() {
        let u = u4();
        let fd = FunctionalDependency::new(u.parse_set("AB").unwrap(), u.parse_set("C").unwrap());
        let c = from_functional_dependency(&fd);
        assert_eq!(c, DiffConstraint::parse("AB -> {C}", &u).unwrap());
        assert!(c.is_single_member());
    }

    #[test]
    fn round_trip_translation() {
        let u = u4();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        assert_eq!(from_boolean_dependency(&to_boolean_dependency(&c)), c);
    }

    #[test]
    fn fds_on_planted_relations_are_detected_via_simpson() {
        // Plant A → B and B → C; the Simpson function of any distribution on the
        // relation must satisfy the corresponding differential constraints, and by
        // transitivity also A → {C}.
        let u = Universe::of_size(5);
        let fds = vec![
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
            FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("C").unwrap()),
        ];
        let r = generator::relation_with_fds(21, 5, 40, 5, &fds);
        let pr = ProbabilisticRelation::uniform(r);
        for fd in &fds {
            assert!(simpson_satisfies(&pr, &from_functional_dependency(fd)));
        }
        let derived =
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("C").unwrap());
        assert!(simpson_satisfies(
            &pr,
            &from_functional_dependency(&derived)
        ));
    }
}
