//! S1 — concurrent serving throughput: what the snapshot/shard architecture
//! buys (and must not cost) on warm repeated-premise query traffic.
//!
//! Three axes are measured on the bench_engine_throughput workload (same
//! generator, same sizes, so the serial figures are directly comparable with
//! `BENCH_engine.json`):
//!
//! * **warm serial latency** — a single caller driving `Session::implies`
//!   over a warmed cache, the figure that must not regress versus the
//!   pre-snapshot engine;
//! * **warm multi-thread throughput** — 1/2/4 worker threads sharing one
//!   `Arc<Snapshot>` and the sharded caches, total queries fixed, wall-clock
//!   measured (on a single-core host the win is "no regression"; the
//!   per-thread scaling column records what a multi-core host exploits);
//! * **serial vs. sharded cache hit latency** — a plain `LruCache` hit
//!   against a `ShardedCache` hit (hash + shard pick + mutex), the per-op
//!   price of concurrency on the hot path;
//! * **observability tax** — the flight recorder's per-request cost, the
//!   continuous profiler's per-request cost with the sampler running (A/B
//!   against the same pipelined warm loop with it stopped), the price of a
//!   stage guard while profiling is disabled, and the warm cached query
//!   path's allocation count (must be zero).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::procedure::ALL_PROCEDURES;
use diffcon_bench::workloads;
use diffcon_bench::{JsonReport, Table};
use diffcon_engine::{
    EngineMetrics, FlightRecord, LruCache, Pipeline, Server, Session, SessionConfig, ShardedCache,
};
use diffcon_obs::{profile, HistogramSnapshot};
use std::sync::Arc;
use std::time::Instant;

const UNIVERSE: usize = 12;
const PREMISES: usize = 8;
const POOL: usize = 64;
const STREAM: usize = 512;
/// Stream repetitions per measured throughput pass: big enough that thread
/// spawn cost (tens of µs per worker) stays well under 1% of a pass
/// (~5–10 ms of warm queries).
const REPEATS: usize = 256;
const TRIALS: usize = 5;

/// A session warmed over the standard serving stream.
fn warmed_session() -> (Session, Vec<diffcon::DiffConstraint>) {
    let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, STREAM);
    let mut session = Session::new(base.universe.clone());
    for p in &base.premises {
        session.assert_constraint(p);
    }
    for goal in &stream {
        session.implies(goal);
    }
    (session, stream)
}

/// Wall-clock seconds for the best of `TRIALS` runs of `f`.
fn best_secs(mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        criterion::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One throughput pass: `REPEATS × STREAM` warm queries split evenly across
/// `threads` workers sharing the snapshot.  Returns the implied-count so the
/// work cannot be optimized away.
fn multithread_pass(
    snapshot: &Arc<diffcon_engine::Snapshot>,
    stream: &[diffcon::DiffConstraint],
    threads: usize,
) -> usize {
    let per_thread = REPEATS / threads;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let snapshot = Arc::clone(snapshot);
                scope.spawn(move || {
                    let mut implied = 0usize;
                    for _ in 0..per_thread {
                        for goal in stream {
                            implied += snapshot.implies(goal).implied as usize;
                        }
                    }
                    implied
                })
            })
            .collect();
        handles.map_sum()
    })
}

/// Tiny helper: sum the join results of a scoped handle vector.
trait JoinSum {
    fn map_sum(self) -> usize;
}

impl<'scope> JoinSum for Vec<std::thread::ScopedJoinHandle<'scope, usize>> {
    fn map_sum(self) -> usize {
        self.into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .sum()
    }
}

/// Per-op nanoseconds for hits against a plain LRU, an untagged sharded
/// cache, and a family-tagged sharded cache (the last is the untagged cost
/// plus the global-metrics publish — the per-hit price of instrumentation).
fn cache_hit_latency() -> (f64, f64, f64) {
    const KEYS: u64 = 1024;
    const PASSES: u64 = 200;
    let mut lru: LruCache<u64, u64> = LruCache::new(KEYS as usize * 2);
    let sharded: ShardedCache<u64, u64> = ShardedCache::new(16, KEYS as usize * 2);
    let tagged: ShardedCache<u64, u64> =
        ShardedCache::named(diffcon_engine::CacheFamily::Answer, 16, KEYS as usize * 2);
    for k in 0..KEYS {
        lru.insert(k, k);
        sharded.insert(k, k);
        tagged.insert(k, k);
    }
    let measure = |mut hit: Box<dyn FnMut(u64) -> u64 + '_>| {
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..PASSES {
            for k in 0..KEYS {
                acc += hit(k);
            }
        }
        criterion::black_box(acc);
        start.elapsed().as_secs_f64() * 1e9 / (PASSES * KEYS) as f64
    };
    let lru_ns = measure(Box::new(|k| lru.get(&k).copied().unwrap_or(0)));
    let sharded_ns = measure(Box::new(|k| sharded.get(&k).unwrap_or(0)));
    let tagged_ns = measure(Box::new(|k| tagged.get(&k).unwrap_or(0)));
    (lru_ns, sharded_ns, tagged_ns)
}

/// Per-request nanoseconds the flight recorder adds to the hot path: the
/// full record lifecycle the serving stack pays per query — construct,
/// box (as `Reply::attach_flight` does), encode, and commit into the
/// process-global ring — measured A/B against the same loop without it,
/// the same differencing methodology as `metrics_publish_overhead_ns`.
fn flight_record_overhead() -> f64 {
    const KEYS: u64 = 1024;
    const PASSES: u64 = 200;
    let measure = |mut op: Box<dyn FnMut(u64) -> u64>| {
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..PASSES {
            for k in 0..KEYS {
                acc += op(k);
            }
        }
        criterion::black_box(acc);
        start.elapsed().as_secs_f64() * 1e9 / (PASSES * KEYS) as f64
    };
    let base_ns = measure(Box::new(|k| k.wrapping_mul(0x9e37_79b9)));
    let flight_ns = measure(Box::new(|k| {
        let record = FlightRecord {
            trace: (1 << 32) | k,
            conn: 1,
            slot: 0,
            verb: "implies",
            route: "fd",
            cached: true,
            bytes_in: 32,
            bytes_out: 27,
            frame_ns: 250,
            queue_ns: k,
            plan_ns: 1_000,
            decide_ns: 500,
            reply_ns: 0,
            epoch: 2,
        };
        record.commit(800, 27);
        k.wrapping_mul(0x9e37_79b9)
    }));
    flight_ns - base_ns
}

/// Warm per-request nanoseconds of a cached query through the full
/// protocol server — parse, session lookup, cache-hit decision, reply
/// formatting, and the always-on flight record itself.  This is the unit
/// of work that pays exactly one flight record, so it is the denominator
/// the recorder overhead is held under 5% of.
fn warm_request_ns() -> f64 {
    const PASSES: u64 = 50_000;
    let mut server = Server::new(SessionConfig::default());
    server.handle_line("universe 4");
    server.handle_line("assert A->{B}");
    for _ in 0..1_000 {
        criterion::black_box(server.handle_line("implies A->{B}"));
    }
    let start = Instant::now();
    for _ in 0..PASSES {
        criterion::black_box(server.handle_line("implies A->{B}"));
    }
    start.elapsed().as_secs_f64() * 1e9 / PASSES as f64
}

/// The cost of one stage guard while profiling is disabled — the price
/// every tagged call site pays on an unprofiled server.  Must be ~0 (a
/// single relaxed load).
fn disabled_guard_ns() -> f64 {
    static BENCH_TAG: profile::StageTag = profile::StageTag::new("bench.guard");
    const PASSES: u64 = 20_000_000;
    profile::sampler_stop();
    profile::set_enabled(false);
    let start = Instant::now();
    for _ in 0..PASSES {
        criterion::black_box(profile::stage(&BENCH_TAG));
    }
    start.elapsed().as_secs_f64() * 1e9 / PASSES as f64
}

/// A/B per-request cost of continuous profiling on the pipelined warm
/// path: the same warm cached query stream through a `Pipeline` (whose
/// scan and wave stages carry beacon guards) with the sampler running
/// versus stopped.  Best-of-trials in each mode so scheduler noise cannot
/// masquerade as profiler cost.
fn profiler_overhead_ns() -> f64 {
    const PASSES: u64 = 20_000;
    let run_once = || -> f64 {
        let mut pipeline = Pipeline::new(SessionConfig::default(), 2);
        pipeline.push_line("universe 4");
        pipeline.push_line("assert A->{B}");
        for _ in 0..2_048 {
            criterion::black_box(pipeline.push_line("implies A->{B}"));
        }
        let start = Instant::now();
        for _ in 0..PASSES {
            criterion::black_box(pipeline.push_line("implies A->{B}"));
        }
        let secs = start.elapsed().as_secs_f64();
        pipeline.finish();
        secs * 1e9 / PASSES as f64
    };
    let best = |enabled: bool| -> f64 {
        if enabled {
            profile::sampler_start(0);
        } else {
            profile::sampler_stop();
        }
        let mut best = f64::INFINITY;
        for _ in 0..TRIALS {
            best = best.min(run_once());
        }
        best
    };
    let baseline_ns = best(false);
    let profiled_ns = best(true);
    profile::sampler_stop();
    profiled_ns - baseline_ns
}

/// Heap allocations per warm cached query, measured by the counting
/// global allocator's per-thread counters.  The cache-hit decision path
/// must be allocation-free.
fn warm_path_allocs_per_query() -> f64 {
    const PASSES: u64 = 10_000;
    let mut server = Server::new(SessionConfig::default());
    server.handle_line("universe 4");
    server.handle_line("assert A->{B}");
    let session = server.session().expect("session exists");
    let universe = session.universe().clone();
    let goal = diffcon::DiffConstraint::parse("A->{B}", &universe).expect("goal parses");
    let snapshot = session.snapshot();
    criterion::black_box(snapshot.implies(&goal));
    let (allocs_before, _) = profile::thread_alloc_counts();
    for _ in 0..PASSES {
        criterion::black_box(snapshot.implies(&goal));
    }
    let (allocs_after, _) = profile::thread_alloc_counts();
    (allocs_after - allocs_before) as f64 / PASSES as f64
}

fn emit_json_report() {
    // Baseline the process-global per-route decision histograms: the window
    // measured below covers the cold warmup decisions plus every warm pass,
    // the same distributions `stats` and the metrics endpoint expose.
    let route_base: Vec<HistogramSnapshot> = ALL_PROCEDURES
        .iter()
        .map(|kind| EngineMetrics::global().route_latency(*kind).snapshot())
        .collect();
    let (session, stream) = warmed_session();
    let snapshot = session.snapshot();
    let total_queries = (REPEATS * STREAM) as f64;

    // Warm serial: same steady-state methodology as BENCH_engine.json's
    // warm_serial_us (best timed 512-query pass after warmup), plus a
    // throughput figure over the same total query count the multi-thread
    // runs use.
    let (serial_512_us, serial_512_mean_us) = {
        for _ in 0..3 {
            criterion::black_box(stream.iter().filter(|g| session.implies(g).implied).count());
        }
        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        let passes = 20;
        for _ in 0..passes {
            let start = Instant::now();
            criterion::black_box(stream.iter().filter(|g| session.implies(g).implied).count());
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            total += secs;
        }
        (best * 1e6, total * 1e6 / passes as f64)
    };
    let serial_secs = best_secs(|| {
        let mut implied = 0usize;
        for _ in 0..REPEATS {
            implied += stream.iter().filter(|g| session.implies(g).implied).count();
        }
        implied
    });
    let serial_qps = total_queries / serial_secs;

    let mut table = Table::new(
        "S1: warm throughput by worker count (one shared snapshot)",
        ["threads", "queries", "elapsed_us", "qps", "vs_serial"],
    );
    let mut best_qps = 0.0f64;
    let mut qps_by_threads = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let secs = best_secs(|| multithread_pass(&snapshot, &stream, threads));
        let qps = total_queries / secs;
        best_qps = best_qps.max(qps);
        qps_by_threads.push((threads, qps));
        table.push_row([
            threads.to_string(),
            (REPEATS * STREAM).to_string(),
            format!("{:.0}", secs * 1e6),
            format!("{:.0}", qps),
            format!("{:.2}", qps / serial_qps),
        ]);
    }
    table.eprint();

    let (lru_ns, sharded_ns, tagged_ns) = cache_hit_latency();

    let mut report = JsonReport::new("server_throughput");
    report.push_metric("stream_len", STREAM as f64);
    report.push_metric("queries_per_pass", total_queries);
    report.push_metric("warm_serial_us", serial_512_us);
    report.push_metric("warm_serial_mean_us", serial_512_mean_us);
    report.push_metric("warm_serial_qps", serial_qps);
    for (threads, qps) in &qps_by_threads {
        report.push_metric(format!("warm_mt_qps_t{threads}"), *qps);
    }
    report.push_metric("warm_mt_best_qps", best_qps);
    report.push_metric("mt_over_serial", best_qps / serial_qps);
    report.push_metric("lru_hit_ns", lru_ns);
    report.push_metric("sharded_hit_ns", sharded_ns);
    report.push_metric("sharded_overhead_ns", sharded_ns - lru_ns);
    report.push_metric("tagged_hit_ns", tagged_ns);
    report.push_metric("metrics_publish_overhead_ns", tagged_ns - sharded_ns);
    let flight_ns = flight_record_overhead();
    let request_ns = warm_request_ns();
    report.push_metric("flight_record_overhead_ns", flight_ns);
    report.push_metric("warm_request_ns", request_ns);
    // The always-on flight recorder must stay negligible: under 5% of the
    // warm cached request it instruments.
    assert!(
        flight_ns < request_ns * 0.05,
        "flight recording costs {flight_ns:.1} ns/request, over 5% of the \
         {request_ns:.0} ns warm request cost"
    );

    // Continuous profiling must be near-free when off and cheap when on:
    // a disabled guard is one relaxed load, and running the sampler with
    // every stage guard live costs under 3% of a warm request.
    let guard_ns = disabled_guard_ns();
    let profiler_ns = profiler_overhead_ns();
    let warm_allocs = warm_path_allocs_per_query();
    report.push_metric("profiler_disabled_guard_ns", guard_ns);
    report.push_metric("profiler_overhead_ns", profiler_ns);
    report.push_metric("warm_path_allocs_per_query", warm_allocs);
    assert!(
        guard_ns < 5.0,
        "a disabled stage guard costs {guard_ns:.2} ns — not ~0"
    );
    assert!(
        profiler_ns < request_ns * 0.03,
        "continuous profiling costs {profiler_ns:.1} ns/request, over 3% of \
         the {request_ns:.0} ns warm request cost"
    );
    assert!(
        warm_allocs == 0.0,
        "warm cached queries allocate ({warm_allocs} allocs/query)"
    );

    // Histogram-derived decision latency per implication route, windowed to
    // this bench's traffic.  Routes the workload never exercised are
    // omitted rather than reported as zeros.
    let mut decided_total = 0u64;
    for (kind, base) in ALL_PROCEDURES.iter().zip(&route_base) {
        let window = EngineMetrics::global()
            .route_latency(*kind)
            .snapshot()
            .minus(base);
        if window.count() == 0 {
            continue;
        }
        decided_total += window.count();
        let name = kind.name();
        report.push_metric(format!("route_{name}_decided"), window.count() as f64);
        report.push_metric(format!("route_{name}_p50_us"), window.p50() as f64 / 1e3);
        report.push_metric(format!("route_{name}_p99_us"), window.p99() as f64 / 1e3);
    }
    assert!(
        decided_total > 0,
        "no route decisions recorded over the bench window"
    );
    report.push_table(table);
    match report.write_to_repo_root("BENCH_server.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_server.json: {e}"),
    }
    eprintln!(
        "warm serial {:.0} qps; best multi-thread {:.0} qps ({:.2}x); \
         cache hit {:.0} ns plain vs {:.0} ns sharded vs {:.0} ns tagged",
        serial_qps,
        best_qps,
        best_qps / serial_qps,
        lru_ns,
        sharded_ns,
        tagged_ns
    );
    assert!(
        best_qps >= serial_qps * 0.9,
        "multi-thread warm throughput regressed more than 10% below serial \
         ({best_qps:.0} vs {serial_qps:.0} qps)"
    );
}

fn bench_server_throughput(c: &mut Criterion) {
    emit_json_report();

    let (session, stream) = warmed_session();
    let snapshot = session.snapshot();
    let mut group = c.benchmark_group("S1_warm_throughput");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("serial", STREAM), &stream, |b, stream| {
        b.iter(|| stream.iter().filter(|g| session.implies(g).implied).count())
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("snapshot_threads", threads),
            &stream,
            |b, stream| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..threads)
                            .map(|_| {
                                let snapshot = Arc::clone(&snapshot);
                                scope.spawn(move || {
                                    stream
                                        .iter()
                                        .filter(|g| snapshot.implies(g).implied)
                                        .count()
                                })
                            })
                            .collect();
                        handles.map_sum()
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
