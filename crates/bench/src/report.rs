//! Minimal plain-text table reporting.
//!
//! Criterion measures *time*; the experiments also need to report *counts*
//! (lattice sizes, representation sizes, proof sizes, agreement rates).  Each
//! bench builds a [`Table`] during setup and prints it once to stderr, so a
//! `cargo bench` run reproduces both the timing series and the count tables
//! recorded in `EXPERIMENTS.md`.

use std::fmt;

/// A simple column-aligned table with a caption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    caption: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given caption and column headers.
    pub fn new<S: Into<String>, I, T>(caption: S, header: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        Table {
            caption: caption.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row<I, T>(&mut self, row: I)
    where
        I: IntoIterator<Item = T>,
        T: ToString,
    {
        let row: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table to stderr (used by the benches so the output interleaves
    /// with Criterion's own reporting without polluting stdout).
    pub fn eprint(&self) {
        eprintln!("{self}");
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.caption)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builds_and_formats() {
        let mut t = Table::new("demo", ["n", "value"]);
        assert!(t.is_empty());
        t.push_row([1, 10]);
        t.push_row([2, 20]);
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("value"));
        assert!(text.contains("20"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", ["a", "b"]);
        t.push_row([1]);
    }
}
