//! Concurrent-serving equivalence: the snapshot/shard architecture must be
//! answer-equivalent to serial single-session execution under any
//! interleaving.
//!
//! Three layers are exercised:
//!
//! * **Snapshot readers vs. the serial oracle** — multiple threads issue
//!   `implies`/`bound` queries against snapshots while a writer
//!   asserts/retracts premises and knowns concurrently; every answer must
//!   match the one-shot `diffcon` procedures evaluated on the snapshot's own
//!   frozen state (never a torn or in-between state).
//! * **Pipeline vs. serial server** — randomized multi-session protocol
//!   scripts (session new/use/close, assert/retract churn, implies/batch/
//!   bound/witness/derive traffic) are driven through the concurrent
//!   [`Pipeline`] at several worker counts and through the plain serial
//!   [`Server`]; the reply streams must agree line-for-line up to the
//!   non-semantic telemetry fields (`us=`, `cached=`, `route=`), including
//!   under cache-eviction pressure from deliberately tiny cache bounds.
//! * **Snapshot lifetime** — a deferred query whose session is closed (or
//!   mutated) before evaluation still answers from its captured state.

use diffcon::{implication, DiffConstraint};
use diffcon_engine::{Pipeline, Server, Session, SessionConfig};
use proptest::prelude::*;
use setlat::{AttrSet, Universe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const UNIVERSE_N: usize = 4;

/// Tiny caches: constant eviction churn, two shards, so the equivalence
/// holds under recycling and not just in the fully warm steady state.
fn tiny_config() -> SessionConfig {
    SessionConfig {
        answer_cache_capacity: 4,
        lattice_cache_capacity: 2,
        prop_cache_capacity: 2,
        bound_cache_capacity: 2,
        cache_shards: 2,
        ..SessionConfig::default()
    }
}

// ── Snapshot readers vs. the serial oracle ──────────────────────────────

#[test]
fn concurrent_readers_always_match_the_serial_oracle_during_writes() {
    let u = Universe::of_size(6);
    let mut gen = diffcon::random::ConstraintGenerator::new(41, &u);
    let shape = diffcon::random::ConstraintShape::default();
    let premise_pool = gen.constraint_set(8, &shape);
    let goals = gen.constraint_set(24, &shape);
    let mut session = Session::with_config(u.clone(), tiny_config());
    // Shared mailbox the writer publishes fresh snapshots into; readers
    // clone the Arc (the only moment they touch a lock) and then decide
    // entirely against their private frozen view.
    let mailbox = Mutex::new(session.snapshot());
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let mailbox = &mailbox;
            let done = &done;
            let goals = &goals;
            let u = &u;
            scope.spawn(move || {
                let mut rounds = 0u32;
                while !done.load(Ordering::Relaxed) || rounds < 2 {
                    let snapshot = Arc::clone(&mailbox.lock().unwrap());
                    for goal in goals {
                        let got = snapshot.implies(goal).implied;
                        let want = implication::implies(u, snapshot.premises(), goal);
                        assert_eq!(
                            got,
                            want,
                            "reader diverged from the oracle on {} (epoch {})",
                            goal.format(u),
                            snapshot.epoch()
                        );
                    }
                    rounds += 1;
                }
            });
        }
        // The writer churns premises (assert/retract toggles) and knowns,
        // publishing after every mutation, while the readers run.
        for round in 0..40usize {
            let premise = &premise_pool[round % premise_pool.len()];
            if !session.retract_constraint(premise) {
                session.assert_constraint(premise);
            }
            let set = AttrSet::singleton(round % 6);
            if round % 3 == 0 {
                session.forget_known(set);
            } else {
                session.set_known(set, (round % 7) as f64 + 1.0);
            }
            *mailbox.lock().unwrap() = session.snapshot();
        }
        done.store(true, Ordering::Relaxed);
    });
}

#[test]
fn concurrent_bound_readers_match_a_fresh_session_on_their_snapshot() {
    let u = Universe::of_size(5);
    let mut session = Session::with_config(u.clone(), tiny_config());
    session.assert_constraint(&DiffConstraint::parse("A -> {B}", &u).unwrap());
    session.set_known(u.parse_set("A").unwrap(), 10.0);
    session.set_known(AttrSet::EMPTY, 50.0);
    let queries: Vec<AttrSet> = (0u64..(1 << 5)).map(AttrSet::from_bits).collect();
    let mailbox = Mutex::new(session.snapshot());
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let mailbox = &mailbox;
            let done = &done;
            let queries = &queries;
            let u = &u;
            scope.spawn(move || {
                let mut rounds = 0u32;
                while !done.load(Ordering::Relaxed) || rounds < 2 {
                    let snapshot = Arc::clone(&mailbox.lock().unwrap());
                    // Oracle: a fresh, cache-cold session rebuilt from the
                    // snapshot's frozen premises and knowns.
                    let mut oracle = Session::new(u.clone());
                    for p in snapshot.premises() {
                        oracle.assert_constraint(p);
                    }
                    for &(set, value) in snapshot.knowns() {
                        oracle.set_known(set, value);
                    }
                    for &q in queries {
                        let got = snapshot.bound(q);
                        let want = oracle.bound(q);
                        match (got, want) {
                            (Ok(g), Ok(w)) => assert_eq!(
                                g.interval,
                                w.interval,
                                "bound diverged on {} (epoch {})",
                                u.format_set(q),
                                snapshot.epoch()
                            ),
                            (g, w) => assert_eq!(g.is_err(), w.is_err()),
                        }
                    }
                    rounds += 1;
                }
            });
        }
        for round in 0..16usize {
            let set = AttrSet::from_bits((round as u64 * 7 + 1) % (1 << 5));
            if round % 4 == 3 {
                session.forget_known(set);
            } else {
                session.set_known(set, (round % 9) as f64);
            }
            *mailbox.lock().unwrap() = session.snapshot();
        }
        done.store(true, Ordering::Relaxed);
    });
}

// ── Pipeline vs. serial server on random multi-session scripts ──────────

/// A random constraint in trimmed wire form over the 4-attribute universe.
fn arb_constraint_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (
        0u64..(1u64 << UNIVERSE_N),
        proptest::collection::vec(0u64..(1u64 << UNIVERSE_N), 0..3),
    )
        .prop_map(move |(lhs, members)| {
            let constraint = DiffConstraint::new(
                AttrSet::from_bits(lhs),
                members.into_iter().map(AttrSet::from_bits).collect(),
            );
            diffcon_engine::protocol::format_wire(&constraint, &u)
        })
}

fn arb_set_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (0u64..(1u64 << UNIVERSE_N)).prop_map(move |mask| {
        let set = AttrSet::from_bits(mask);
        if set.is_empty() {
            "{}".to_string()
        } else {
            u.format_set(set)
        }
    })
}

/// One random request line of the multi-session serving vocabulary.
fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Queries listed several times so they dominate, as in real
        // serving traffic (the proptest shim's union is unweighted).
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        proptest::collection::vec(arb_constraint_text(), 1..4)
            .prop_map(|cs| format!("batch {}", cs.join(" ; "))),
        arb_set_text().prop_map(|s| format!("bound {s}")),
        arb_set_text().prop_map(|s| format!("bound {s}")),
        arb_constraint_text().prop_map(|c| format!("witness {c}")),
        arb_constraint_text().prop_map(|c| format!("derive {c}")),
        // Mid-stream state churn.
        arb_constraint_text().prop_map(|c| format!("assert {c}")),
        arb_constraint_text().prop_map(|c| format!("retract {c}")),
        (arb_set_text(), 0u32..50).prop_map(|(s, v)| format!("known {s} = {v}")),
        arb_set_text().prop_map(|s| format!("forget {s}")),
        // Multi-session control flow.
        Just("session new".to_string()),
        (0u64..4).prop_map(|id| format!("session use {id}")),
        (0u64..2, 0u64..4).prop_map(|(some, id)| if some == 1 {
            format!("session close {id}")
        } else {
            "session close".to_string()
        }),
        Just("session list".to_string()),
        Just("universe 4".to_string()),
        Just("premises".to_string()),
        Just("knowns".to_string()),
        Just("stats".to_string()),
    ]
}

/// Strips the non-semantic telemetry fields that legitimately differ
/// between serial and concurrent execution (latencies, cache-hit flags,
/// and the route names derived from them).  `stats` lines are reduced to
/// their head for the same reason.
fn normalize(text: &str) -> String {
    if text.starts_with("stats") {
        return "stats".to_string();
    }
    text.split_whitespace()
        .filter(|t| !t.starts_with("us=") && !t.starts_with("cached=") && !t.starts_with("route="))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs a script serially and through the pipeline at `threads` workers;
/// asserts the normalized reply streams agree line-for-line.
fn assert_pipeline_matches_serial(lines: &[String], threads: usize) {
    let mut serial = Server::new(tiny_config());
    let serial_replies: Vec<String> = lines
        .iter()
        .map(|line| normalize(&serial.handle_line(line).text))
        .collect();
    let mut pipeline = Pipeline::new(tiny_config(), threads);
    let mut concurrent_replies: Vec<String> = Vec::new();
    for line in lines {
        let (replies, quit) = pipeline.push_line(line);
        concurrent_replies.extend(replies.iter().map(|r| normalize(&r.text)));
        assert!(!quit, "scripts do not contain quit");
    }
    concurrent_replies.extend(pipeline.finish().iter().map(|r| normalize(&r.text)));
    assert_eq!(
        serial_replies, concurrent_replies,
        "pipeline with {threads} threads diverged from serial execution"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of multi-session concurrent queries returns exactly
    /// the answers the serial single-session engine gives, including under
    /// cache eviction (tiny bounds) and mid-stream assert/retract.
    #[test]
    fn pipeline_replies_equal_serial_replies(
        body in proptest::collection::vec(arb_line(), 1..40),
        threads in 2usize..5,
    ) {
        // Open a session in slot 0 so most traffic lands somewhere live;
        // the random tail still exercises empty slots and error paths.
        let mut lines = vec!["universe 4".to_string()];
        lines.extend(body);
        assert_pipeline_matches_serial(&lines, threads);
    }
}

/// A deterministic heavy interleaving across two sessions at 4 workers:
/// both sessions' goals repeat (cache hits + evictions), writers mutate
/// between waves, and the reply streams must still agree.
#[test]
fn two_session_interleaved_traffic_matches_serial() {
    let u = Universe::of_size(UNIVERSE_N);
    let mut gen = diffcon::random::ConstraintGenerator::new(9, &u);
    let shape = diffcon::random::ConstraintShape::default();
    let goals = gen.constraint_set(20, &shape);
    let mut lines = vec![
        "universe 4".to_string(),
        "assert A->{B}".to_string(),
        "session new".to_string(),
        "universe 4".to_string(),
        "assert B->{C}".to_string(),
        "known A = 7".to_string(),
    ];
    for round in 0..6 {
        for (i, goal) in goals.iter().enumerate() {
            let slot = (i + round) % 2;
            lines.push(format!("session use {slot}"));
            let wire = diffcon_engine::protocol::format_wire(goal, &u);
            lines.push(format!("implies {wire}"));
            if i % 5 == 0 {
                lines.push("bound AB".to_string());
            }
        }
        // Mid-stream churn in both sessions.
        lines.push("session use 0".to_string());
        lines.push(if round % 2 == 0 {
            "retract A->{B}".to_string()
        } else {
            "assert A->{B}".to_string()
        });
        lines.push("session use 1".to_string());
        lines.push(format!("known B = {round}"));
        lines.push("stats".to_string());
    }
    for threads in [1, 2, 4] {
        assert_pipeline_matches_serial(&lines, threads);
    }
}

// ── Snapshot lifetime across session closure ────────────────────────────

#[test]
fn deferred_queries_survive_session_closure() {
    let mut server = Server::new(SessionConfig::default());
    server.handle_line("universe 4");
    server.handle_line("assert A->{B}");
    server.handle_line("assert B->{C}");
    let deferred = match server.begin_line("implies A->{C}") {
        diffcon_engine::Step::Deferred(d) => d,
        diffcon_engine::Step::Done(r) => panic!("expected deferral, got {:?}", r.text),
    };
    // Close the slot: the session is dropped, the captured snapshot lives.
    assert!(server
        .handle_line("session close")
        .text
        .starts_with("ok session closed=0"));
    assert!(deferred.run().text.starts_with("yes"));
    assert_eq!(deferred.snapshot().premises().len(), 2);
}
