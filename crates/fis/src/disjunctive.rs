//! Disjunctive constraints, disjunctive rules, and disjunctive(-free) itemsets
//! (Definitions 6.1 and 6.2 of the paper).
//!
//! A basket list `B` satisfies the disjunctive constraint `X ⇒disj 𝒴` when
//! `B(X) = ⋃_{Y ∈ 𝒴} B(X ∪ Y)` — equivalently, every basket containing `X`
//! also contains some `Y ∈ 𝒴` entirely.  Proposition 6.3 identifies this with
//! satisfaction of the differential constraint `X → 𝒴` by the support function.
//!
//! The *disjunctive rules* of Bykowski & Rigotti and the
//! *generalized-disjunctive rules* of Kryszkiewicz & Gajek are the special
//! cases where `𝒴` consists of one or two singletons, resp. any set of
//! singletons; Definition 6.2 builds disjunctive(-free) itemsets on top of
//! satisfied nontrivial constraints.

use crate::basket::BasketDb;
use setlat::{powerset, AttrSet, Family, Universe};

/// A disjunctive constraint `X ⇒disj 𝒴` over the item universe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DisjunctiveConstraint {
    /// The antecedent itemset `X`.
    pub lhs: AttrSet,
    /// The consequent family `𝒴`.
    pub rhs: Family,
}

impl DisjunctiveConstraint {
    /// Creates the constraint `X ⇒disj 𝒴`.
    pub fn new(lhs: AttrSet, rhs: Family) -> Self {
        DisjunctiveConstraint { lhs, rhs }
    }

    /// A Bykowski–Rigotti style disjunctive rule `X ⇒ y₁ ∨ y₂` (the two items
    /// may coincide, in which case the rule degenerates to `X ⇒ y₁`).
    pub fn rule(lhs: AttrSet, y1: usize, y2: usize) -> Self {
        DisjunctiveConstraint {
            lhs,
            rhs: Family::from_sets([AttrSet::singleton(y1), AttrSet::singleton(y2)]),
        }
    }

    /// Returns `true` iff the constraint is trivial: some `Y ∈ 𝒴` with `Y ⊆ X`
    /// (mirroring Definition 3.1 for differential constraints).
    pub fn is_trivial(&self) -> bool {
        self.rhs.some_member_subset_of(self.lhs)
    }

    /// Returns `true` iff the basket database satisfies the constraint:
    /// every basket containing `X` contains `X ∪ Y` for some `Y ∈ 𝒴`.
    pub fn satisfied_by(&self, db: &BasketDb) -> bool {
        db.baskets().iter().all(|&basket| {
            !self.lhs.is_subset(basket) || self.rhs.iter().any(|y| y.is_subset(basket))
        })
    }

    /// Checks satisfaction through the cover identity of Definition 6.1,
    /// `B(X) = ⋃_{Y ∈ 𝒴} B(X ∪ Y)`, computing the covers explicitly.  Used to
    /// validate [`DisjunctiveConstraint::satisfied_by`] in tests.
    pub fn satisfied_by_cover_identity(&self, db: &BasketDb) -> bool {
        let cover_x = db.cover(self.lhs);
        let mut union: Vec<usize> = self
            .rhs
            .iter()
            .flat_map(|y| db.cover(self.lhs.union(y)))
            .collect();
        union.sort_unstable();
        union.dedup();
        cover_x == union
    }

    /// The item footprint `X ∪ ⋃𝒴` of the constraint.
    pub fn footprint(&self) -> AttrSet {
        self.lhs.union(self.rhs.union_all())
    }

    /// Pretty-prints the constraint, e.g. `"A ⇒disj {B, CD}"`.
    pub fn format(&self, universe: &Universe) -> String {
        format!(
            "{} ⇒disj {}",
            universe.format_set(self.lhs),
            self.rhs.format(universe)
        )
    }
}

/// Returns `true` iff `x` is a *disjunctive itemset* of `db` in the sense of
/// Definition 6.2, restricted to consequent families with at most
/// `max_rhs_members` members (each member a nonempty subset of `x`).
///
/// With `max_rhs_members = 2` and singleton members this covers the disjunctive
/// rules of Bykowski–Rigotti (see [`is_disjunctive_br`]); larger values explore
/// the more general constraints this paper allows.  The search is exponential
/// in `|x|`, which is fine for the universes used in the experiments.
pub fn is_disjunctive(db: &BasketDb, x: AttrSet, max_rhs_members: usize) -> bool {
    // Candidate antecedents X' ⊆ x and member pool: nonempty subsets of x − X'.
    for lhs in powerset::subsets(x) {
        let pool: Vec<AttrSet> = powerset::subsets(x.difference(lhs))
            .filter(|s| !s.is_empty())
            .collect();
        if search_family(db, lhs, &pool, &mut Vec::new(), max_rhs_members) {
            return true;
        }
    }
    false
}

fn search_family(
    db: &BasketDb,
    lhs: AttrSet,
    pool: &[AttrSet],
    chosen: &mut Vec<AttrSet>,
    remaining: usize,
) -> bool {
    if !chosen.is_empty() {
        let constraint = DisjunctiveConstraint::new(lhs, Family::from_sets(chosen.iter().copied()));
        if !constraint.is_trivial() && constraint.satisfied_by(db) {
            return true;
        }
    }
    if remaining == 0 {
        return false;
    }
    for (i, &candidate) in pool.iter().enumerate() {
        chosen.push(candidate);
        if search_family(db, lhs, &pool[i + 1..], chosen, remaining - 1) {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

/// Returns `true` iff `x` is disjunctive according to Bykowski–Rigotti style
/// rules only: there exist `X' ⊆ x` and items `y₁, y₂ ∈ x − X'` (possibly
/// equal) such that `db` satisfies `X' ⇒ y₁ ∨ y₂`.
pub fn is_disjunctive_br(db: &BasketDb, x: AttrSet) -> bool {
    for lhs in powerset::subsets(x) {
        let rest: Vec<usize> = x.difference(lhs).iter().collect();
        for (i, &y1) in rest.iter().enumerate() {
            for &y2 in &rest[i..] {
                let constraint = DisjunctiveConstraint::rule(lhs, y1, y2);
                if constraint.satisfied_by(db) {
                    return true;
                }
            }
        }
    }
    false
}

/// Returns `true` iff `x` is *disjunction-free* w.r.t. Bykowski–Rigotti rules
/// (the negation of [`is_disjunctive_br`]).
pub fn is_disjunction_free(db: &BasketDb, x: AttrSet) -> bool {
    !is_disjunctive_br(db, x)
}

/// Enumerates all nontrivial satisfied disjunctive rules `X' ⇒ y₁ ∨ y₂` whose
/// footprint is contained in `scope`.  Used by the condensed-representation
/// builder and by the experiments that count inferable itemsets.
pub fn satisfied_rules_within(db: &BasketDb, scope: AttrSet) -> Vec<DisjunctiveConstraint> {
    let mut out = Vec::new();
    for lhs in powerset::subsets(scope) {
        let rest: Vec<usize> = scope.difference(lhs).iter().collect();
        for (i, &y1) in rest.iter().enumerate() {
            for &y2 in &rest[i..] {
                let c = DisjunctiveConstraint::rule(lhs, y1, y2);
                if c.satisfied_by(db) {
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn satisfaction_both_definitions_agree() {
        let u = u();
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD").unwrap();
        let constraints = [
            DisjunctiveConstraint::new(
                u.parse_set("A").unwrap(),
                Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
            ),
            DisjunctiveConstraint::new(
                u.parse_set("A").unwrap(),
                Family::single(u.parse_set("B").unwrap()),
            ),
            DisjunctiveConstraint::new(
                u.parse_set("C").unwrap(),
                Family::single(u.parse_set("A").unwrap()),
            ),
            DisjunctiveConstraint::new(u.parse_set("D").unwrap(), Family::empty()),
        ];
        for c in &constraints {
            assert_eq!(
                c.satisfied_by(&db),
                c.satisfied_by_cover_identity(&db),
                "definitions disagree for {}",
                c.format(&u)
            );
        }
    }

    #[test]
    fn example_constraint_satisfaction() {
        // Every basket containing A contains B or CD (B in baskets 0,1,4; CD in 2,4).
        let u = u();
        let db = BasketDb::parse(&u, "AB\nABC\nACD\nB\nABCD").unwrap();
        let c = DisjunctiveConstraint::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert!(c.satisfied_by(&db));

        // Not every basket containing A contains B.
        let c2 = DisjunctiveConstraint::new(
            u.parse_set("A").unwrap(),
            Family::single(u.parse_set("B").unwrap()),
        );
        assert!(!c2.satisfied_by(&db));
    }

    #[test]
    fn empty_rhs_means_no_basket_contains_lhs() {
        // X ⇒disj {} ⇔ B(X) = ∅ ⇔ f(X) = 0 (the introduction's constraint (1)).
        let u = u();
        let db = BasketDb::parse(&u, "AB\nB\nC").unwrap();
        let holds = DisjunctiveConstraint::new(u.parse_set("D").unwrap(), Family::empty());
        assert!(holds.satisfied_by(&db));
        let fails = DisjunctiveConstraint::new(u.parse_set("A").unwrap(), Family::empty());
        assert!(!fails.satisfied_by(&db));
    }

    #[test]
    fn triviality() {
        let u = u();
        let trivial = DisjunctiveConstraint::new(
            u.parse_set("AB").unwrap(),
            Family::single(u.parse_set("B").unwrap()),
        );
        assert!(trivial.is_trivial());
        let nontrivial = DisjunctiveConstraint::new(
            u.parse_set("A").unwrap(),
            Family::single(u.parse_set("B").unwrap()),
        );
        assert!(!nontrivial.is_trivial());
        // Trivial constraints are satisfied by every database.
        let db = BasketDb::parse(&u, "AB\nACD\nD").unwrap();
        assert!(trivial.satisfied_by(&db));
    }

    #[test]
    fn disjunctive_itemsets_definition_6_2() {
        // Database where B(A) = B(AB) ∪ B(AC): every basket with A has B or C.
        let u = u();
        let db = BasketDb::parse(&u, "AB\nAC\nABC\nBD\nD").unwrap();
        // The constraint A ⇒ {B, C} holds and is nontrivial, so ABC (its footprint)
        // and its supersets are disjunctive itemsets.
        let abc = u.parse_set("ABC").unwrap();
        let abcd = u.parse_set("ABCD").unwrap();
        assert!(is_disjunctive(&db, abc, 2));
        assert!(is_disjunctive(&db, abcd, 2));
        assert!(is_disjunctive_br(&db, abc));
        // A alone is not disjunctive (footprints must fit inside the set).
        assert!(!is_disjunctive_br(&db, u.parse_set("A").unwrap()));
        assert!(is_disjunction_free(&db, u.parse_set("A").unwrap()));
    }

    #[test]
    fn supersets_of_disjunctive_sets_are_disjunctive() {
        // The paper derives this from the augmentation rule; check it directly.
        let u = u();
        let db = BasketDb::parse(&u, "AB\nAC\nABC\nBD\nD\nACD").unwrap();
        for x in u.all_subsets() {
            if is_disjunctive_br(&db, x) {
                for i in 0..u.len() {
                    assert!(
                        is_disjunctive_br(&db, x.with(i)),
                        "superset of disjunctive {x:?} not disjunctive"
                    );
                }
            }
        }
    }

    #[test]
    fn br_rules_are_a_special_case() {
        // Anything BR-disjunctive is disjunctive in the general sense.
        let u = u();
        let db = BasketDb::parse(&u, "AB\nAC\nABC\nBD\nD").unwrap();
        for x in u.all_subsets() {
            if is_disjunctive_br(&db, x) {
                assert!(is_disjunctive(&db, x, 2));
            }
        }
    }

    #[test]
    fn satisfied_rules_enumeration() {
        let u = u();
        let db = BasketDb::parse(&u, "AB\nAC\nABC\nBD\nD").unwrap();
        let rules = satisfied_rules_within(&db, u.parse_set("ABC").unwrap());
        // The rule A ⇒ B ∨ C must be among them.
        let target = DisjunctiveConstraint::rule(u.parse_set("A").unwrap(), 1, 2);
        assert!(rules.iter().any(|c| c == &target));
        // All enumerated rules are satisfied and nontrivial... (rule() with distinct
        // items on disjoint lhs is never trivial here, but double-check satisfaction).
        for r in &rules {
            assert!(r.satisfied_by(&db));
        }
    }

    #[test]
    fn footprint() {
        let u = u();
        let c = DisjunctiveConstraint::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert_eq!(c.footprint(), u.parse_set("ABCD").unwrap());
    }

    #[test]
    fn formatting() {
        let u = u();
        let c = DisjunctiveConstraint::new(
            u.parse_set("A").unwrap(),
            Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]),
        );
        assert_eq!(c.format(&u), "A ⇒disj {B, CD}");
    }
}
