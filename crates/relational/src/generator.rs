//! Random relation and distribution generators for the experiments.
//!
//! The paper evaluates nothing empirically, so the relational experiments run
//! on synthetic relations: fully random ones (worst case for dependency
//! structure), relations with *planted functional dependencies* (the dependent
//! attributes are computed as functions of their determinants), and skewed
//! probability distributions.

use crate::distribution::ProbabilisticRelation;
use crate::fd::FunctionalDependency;
use crate::relation::{Relation, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random relation with `num_tuples` tuples over `arity` attributes
/// whose values are drawn uniformly from `0..domain`.
///
/// Duplicate tuples are dropped (set semantics), so the result may contain
/// fewer than `num_tuples` tuples when the domain is small.
pub fn random_relation(seed: u64, arity: usize, num_tuples: usize, domain: u32) -> Relation {
    assert!(domain >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples: Vec<Tuple> = (0..num_tuples)
        .map(|_| (0..arity).map(|_| rng.gen_range(0..domain)).collect())
        .collect();
    Relation::from_tuples(arity, tuples)
}

/// Generates a relation in which every planted FD `X → Y` holds: the values of
/// the attributes in `Y` are computed deterministically (by hashing) from the
/// values of the attributes in `X`.
///
/// FDs are applied in the given order, iterating to a fixed point so chained
/// dependencies (`A → B`, `B → C`) are all enforced.
pub fn relation_with_fds(
    seed: u64,
    arity: usize,
    num_tuples: usize,
    domain: u32,
    fds: &[FunctionalDependency],
) -> Relation {
    assert!(domain >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tuples: Vec<Tuple> = (0..num_tuples)
        .map(|_| (0..arity).map(|_| rng.gen_range(0..domain)).collect())
        .collect();

    // Enforce the FDs by rewriting dependent attributes as a hash of the
    // determinant values; iterate to a fixed point to handle chains.
    for _ in 0..arity + fds.len() + 1 {
        let mut changed = false;
        for t in tuples.iter_mut() {
            for fd in fds {
                let key: u64 = fd.lhs.iter().fold(0xcbf29ce484222325u64, |acc, i| {
                    (acc ^ (t[i] as u64 + 1)).wrapping_mul(0x100000001b3)
                });
                for (offset, attr) in fd.rhs.difference(fd.lhs).iter().enumerate() {
                    let value =
                        ((key.wrapping_add(offset as u64 * 0x9E3779B9)) % domain as u64) as u32;
                    if t[attr] != value {
                        t[attr] = value;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Relation::from_tuples(arity, tuples)
}

/// Wraps a relation in a probabilistic relation with a random (Dirichlet-ish)
/// strictly positive distribution.
///
/// # Panics
/// Panics if the relation is empty.
pub fn random_distribution(seed: u64, relation: Relation) -> ProbabilisticRelation {
    assert!(!relation.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let raw: Vec<f64> = (0..relation.len())
        .map(|_| rng.gen_range(0.05f64..1.0))
        .collect();
    let total: f64 = raw.iter().sum();
    let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
    ProbabilisticRelation::new(relation, probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::{AttrSet, Universe};

    #[test]
    fn random_relation_is_reproducible() {
        let a = random_relation(1, 4, 30, 5);
        let b = random_relation(1, 4, 30, 5);
        let c = random_relation(2, 4, 30, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.len() <= 30);
        assert_eq!(a.arity(), 4);
    }

    #[test]
    fn random_relation_respects_domain() {
        let r = random_relation(7, 3, 50, 3);
        for t in r.tuples() {
            for &v in t {
                assert!(v < 3);
            }
        }
    }

    #[test]
    fn planted_fds_hold() {
        let u = Universe::of_size(5);
        let fds = vec![
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
            FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("C").unwrap()),
            FunctionalDependency::new(u.parse_set("DE").unwrap(), u.parse_set("A").unwrap()),
        ];
        let r = relation_with_fds(3, 5, 80, 6, &fds);
        for fd in &fds {
            assert!(fd.satisfied_by(&r), "planted FD {} violated", fd.format(&u));
        }
        // Transitive consequence A → C must hold as well.
        let derived =
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("C").unwrap());
        assert!(derived.satisfied_by(&r));
    }

    #[test]
    fn planted_relation_is_not_degenerate() {
        let u = Universe::of_size(4);
        let fds = vec![FunctionalDependency::new(
            u.parse_set("A").unwrap(),
            u.parse_set("B").unwrap(),
        )];
        let r = relation_with_fds(9, 4, 60, 8, &fds);
        // Attributes not constrained by an FD should still vary.
        assert!(r.project(AttrSet::from_indices([2])).len() > 1);
        assert!(r.len() > 10);
    }

    #[test]
    fn random_distribution_is_valid_and_reproducible() {
        let r = random_relation(5, 3, 20, 10);
        let p1 = random_distribution(11, r.clone());
        let p2 = random_distribution(11, r.clone());
        assert_eq!(p1, p2);
        let total: f64 = p1.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(p1.probabilities().iter().all(|&p| p > 0.0));
    }
}
