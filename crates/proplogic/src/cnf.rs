//! Clausal form: literals, clauses, CNF, and conversion from formulas.
//!
//! Two converters are provided:
//!
//! * [`Cnf::from_formula_distributive`] — textbook distribution of `∨` over `∧`
//!   on the NNF; exact (no auxiliary variables) but worst-case exponential.
//!   Fine for the small formulas produced by individual constraints.
//! * [`Cnf::from_formula_tseitin`] — the Tseitin transformation; linear size,
//!   introduces one fresh variable per connective, equisatisfiable (used by the
//!   SAT-backed implication procedure where only satisfiability matters).

use crate::formula::Formula;
use setlat::AttrSet;
use std::fmt;

/// A literal: a propositional variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// `true` when the literal is negated (`¬v`).
    pub negated: bool,
}

impl Lit {
    /// The positive literal `v`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            negated: false,
        }
    }

    /// The negative literal `¬v`.
    pub fn neg(var: usize) -> Lit {
        Lit { var, negated: true }
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit {
            var: self.var,
            negated: !self.negated,
        }
    }

    /// Evaluates the literal under an assignment (set of true variables).
    pub fn eval(self, assignment: AttrSet) -> bool {
        assignment.contains(self.var) != self.negated
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬v{}", self.var)
        } else {
            write!(f, "v{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.  The empty clause is `false`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    /// The literals of the clause, sorted and deduplicated.
    pub lits: Vec<Lit>,
}

impl Clause {
    /// Builds a clause from literals, normalizing (sorted, deduplicated).
    pub fn new<I: IntoIterator<Item = Lit>>(lits: I) -> Clause {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort();
        lits.dedup();
        Clause { lits }
    }

    /// Returns `true` iff the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` iff the clause contains both a literal and its negation
    /// and is therefore a tautology.
    pub fn is_tautological(&self) -> bool {
        self.lits.iter().any(|&l| self.lits.contains(&l.negate()))
    }

    /// Evaluates the clause under an assignment.
    pub fn eval(&self, assignment: AttrSet) -> bool {
        self.lits.iter().any(|l| l.eval(assignment))
    }

    /// The number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Clause{:?}", self.lits)
    }
}

/// A formula in conjunctive normal form: a conjunction of clauses.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// The clauses of the formula.
    pub clauses: Vec<Clause>,
    /// Number of variables (original + auxiliary); variable indices are `< num_vars`.
    pub num_vars: usize,
}

impl Cnf {
    /// The empty CNF (no clauses), which is trivially satisfiable.
    pub fn empty(num_vars: usize) -> Cnf {
        Cnf {
            clauses: Vec::new(),
            num_vars,
        }
    }

    /// Adds a clause.
    pub fn push(&mut self, clause: Clause) {
        for lit in &clause.lits {
            if lit.var >= self.num_vars {
                self.num_vars = lit.var + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Evaluates the CNF under an assignment of the *original* variables.
    ///
    /// Only meaningful for CNFs without auxiliary variables (i.e. produced by
    /// the distributive conversion).
    pub fn eval(&self, assignment: AttrSet) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` iff there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Converts a formula to an *equivalent* CNF by distributing `∨` over `∧` on
    /// the negation-normal form.  No auxiliary variables are introduced, so the
    /// result can be evaluated directly, but the size may blow up exponentially.
    pub fn from_formula_distributive(formula: &Formula, num_vars: usize) -> Cnf {
        let nnf = formula.nnf();
        let mut cnf = Cnf::empty(num_vars);
        let clause_sets = distribute(&nnf);
        for lits in clause_sets {
            let clause = Clause::new(lits);
            if !clause.is_tautological() {
                cnf.push(clause);
            }
        }
        cnf
    }

    /// Converts a formula to an *equisatisfiable* CNF via the Tseitin
    /// transformation.  Auxiliary variables are numbered from `num_vars` upward.
    pub fn from_formula_tseitin(formula: &Formula, num_vars: usize) -> Cnf {
        let mut builder = TseitinBuilder {
            cnf: Cnf::empty(num_vars),
            next_var: num_vars,
        };
        let root = builder.encode(&formula.nnf());
        builder.cnf.push(Clause::new([root]));
        builder.cnf.num_vars = builder.next_var;
        builder.cnf
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf({} clauses, {} vars)",
            self.clauses.len(),
            self.num_vars
        )
    }
}

/// Returns, for an NNF formula, a list of clauses (each a list of literals)
/// whose conjunction is equivalent to the formula.
fn distribute(f: &Formula) -> Vec<Vec<Lit>> {
    match f {
        Formula::True => vec![],
        Formula::False => vec![vec![]],
        Formula::Var(v) => vec![vec![Lit::pos(*v)]],
        Formula::Not(inner) => match **inner {
            Formula::Var(v) => vec![vec![Lit::neg(v)]],
            Formula::True => vec![vec![]],
            Formula::False => vec![],
            _ => unreachable!("input must be in NNF"),
        },
        Formula::And(fs) => fs.iter().flat_map(distribute).collect(),
        Formula::Or(fs) => {
            let mut acc: Vec<Vec<Lit>> = vec![vec![]];
            for sub in fs {
                let sub_clauses = distribute(sub);
                let mut next = Vec::with_capacity(acc.len() * sub_clauses.len().max(1));
                for a in &acc {
                    for s in &sub_clauses {
                        let mut merged = a.clone();
                        merged.extend_from_slice(s);
                        next.push(merged);
                    }
                }
                // Or of something with an empty clause list (⊤) makes the whole
                // disjunction ⊤: no clauses at all.
                if sub_clauses.is_empty() {
                    return vec![];
                }
                acc = next;
            }
            acc
        }
        Formula::Implies(..) | Formula::Iff(..) => unreachable!("input must be in NNF"),
    }
}

struct TseitinBuilder {
    cnf: Cnf,
    next_var: usize,
}

impl TseitinBuilder {
    fn fresh(&mut self) -> usize {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Returns a literal equivalent (in the equisatisfiable sense) to the NNF formula.
    fn encode(&mut self, f: &Formula) -> Lit {
        match f {
            Formula::True => {
                let v = self.fresh();
                self.cnf.push(Clause::new([Lit::pos(v)]));
                Lit::pos(v)
            }
            Formula::False => {
                let v = self.fresh();
                self.cnf.push(Clause::new([Lit::neg(v)]));
                Lit::pos(v)
            }
            Formula::Var(v) => Lit::pos(*v),
            Formula::Not(inner) => match **inner {
                Formula::Var(v) => Lit::neg(v),
                _ => unreachable!("input must be in NNF"),
            },
            Formula::And(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|sub| self.encode(sub)).collect();
                let out = Lit::pos(self.fresh());
                // out ⇒ each lit
                for &l in &lits {
                    self.cnf.push(Clause::new([out.negate(), l]));
                }
                // all lits ⇒ out
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                clause.push(out);
                self.cnf.push(Clause::new(clause));
                out
            }
            Formula::Or(fs) => {
                let lits: Vec<Lit> = fs.iter().map(|sub| self.encode(sub)).collect();
                let out = Lit::pos(self.fresh());
                // out ⇒ some lit
                let mut clause: Vec<Lit> = lits.clone();
                clause.push(out.negate());
                self.cnf.push(Clause::new(clause));
                // each lit ⇒ out
                for &l in &lits {
                    self.cnf.push(Clause::new([l.negate(), out]));
                }
                out
            }
            Formula::Implies(..) | Formula::Iff(..) => unreachable!("input must be in NNF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::{DpllSolver, SatResult};

    fn example_formula() -> Formula {
        // (A ⇒ B ∨ (C ∧ D)) ∧ (¬D ∨ A)
        Formula::and([
            Formula::implies(
                Formula::var(0),
                Formula::or([
                    Formula::var(1),
                    Formula::and([Formula::var(2), Formula::var(3)]),
                ]),
            ),
            Formula::or([Formula::not(Formula::var(3)), Formula::var(0)]),
        ])
    }

    #[test]
    fn lit_eval_and_negate() {
        let l = Lit::pos(2);
        assert!(l.eval(AttrSet::from_indices([2])));
        assert!(!l.eval(AttrSet::EMPTY));
        assert!(l.negate().eval(AttrSet::EMPTY));
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn clause_normalization_and_tautology() {
        let c = Clause::new([Lit::pos(1), Lit::pos(0), Lit::pos(1)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_tautological());
        let t = Clause::new([Lit::pos(0), Lit::neg(0)]);
        assert!(t.is_tautological());
        assert!(Clause::new([]).is_empty());
    }

    #[test]
    fn distributive_cnf_is_equivalent() {
        let f = example_formula();
        let cnf = Cnf::from_formula_distributive(&f, 4);
        for mask in 0u64..16 {
            let a = AttrSet::from_bits(mask);
            assert_eq!(f.eval(a), cnf.eval(a), "differs at {a:?}");
        }
    }

    #[test]
    fn distributive_cnf_of_constants() {
        let t = Cnf::from_formula_distributive(&Formula::True, 2);
        assert!(t.is_empty());
        let f = Cnf::from_formula_distributive(&Formula::False, 2);
        assert!(f.clauses.iter().any(Clause::is_empty));
    }

    #[test]
    fn tseitin_is_equisatisfiable() {
        // For each assignment of the original variables: the formula is true iff
        // the Tseitin CNF (restricted by unit-forcing those originals) is SAT.
        let f = example_formula();
        for mask in 0u64..16 {
            let a = AttrSet::from_bits(mask);
            let mut cnf = Cnf::from_formula_tseitin(&f, 4);
            for v in 0..4 {
                let lit = if a.contains(v) {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                cnf.push(Clause::new([lit]));
            }
            let sat = matches!(DpllSolver::new(cnf).solve(), SatResult::Sat(_));
            assert_eq!(f.eval(a), sat, "Tseitin differs at {a:?}");
        }
    }

    #[test]
    fn tseitin_size_is_linear() {
        // A long chain of disjunctions of conjunctions would explode
        // distributively; Tseitin stays linear in the formula size.
        let mut parts = Vec::new();
        for i in 0..10 {
            parts.push(Formula::and([Formula::var(2 * i), Formula::var(2 * i + 1)]));
        }
        let f = Formula::or(parts);
        let tseitin = Cnf::from_formula_tseitin(&f, 20);
        assert!(tseitin.len() <= 3 * f.size());
    }
}
