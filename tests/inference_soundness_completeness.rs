//! E1/E2 — soundness and completeness of the Figure 1 inference system, plus
//! the derivable Figure 2 rules, exercised end-to-end on random instances.

use diffcon::random::{ConstraintGenerator, ConstraintShape};
use diffcon::{derived_rules, implication, inference, DiffConstraint};
use setlat::{AttrSet, Family, Universe};

/// Completeness + soundness on random instances: `derive` succeeds exactly on
/// the implied goals, and every produced proof verifies and concludes the goal.
#[test]
fn derive_iff_implied_on_random_instances() {
    let u = Universe::of_size(5);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 3,
        max_member_size: 2,
        allow_trivial: false,
    };
    let mut derived = 0usize;
    let mut refused = 0usize;
    for seed in 0..50u64 {
        let mut gen = ConstraintGenerator::new(seed, &u);
        let premises = gen.constraint_set(4, &shape);
        for _ in 0..4 {
            let goal = if seed % 2 == 0 {
                gen.implied_goal(&premises)
            } else {
                gen.constraint(&shape)
            };
            let implied = implication::implies(&u, &premises, &goal);
            match inference::derive(&u, &premises, &goal) {
                Some(proof) => {
                    assert!(implied, "derived a non-implied goal {}", goal.format(&u));
                    assert_eq!(proof.conclusion(), &goal);
                    proof.verify(&u, &premises).expect("proof must verify");
                    // Independent soundness check through the semantic procedure.
                    assert!(implication::implies_semantic(&u, &premises, &goal));
                    derived += 1;
                }
                None => {
                    assert!(
                        !implied,
                        "failed to derive the implied goal {}",
                        goal.format(&u)
                    );
                    refused += 1;
                }
            }
        }
    }
    assert!(
        derived > 20,
        "expected a healthy number of derivations (got {derived})"
    );
    assert!(
        refused > 20,
        "expected a healthy number of refusals (got {refused})"
    );
}

/// Exhaustive completeness over a small universe: for every goal with singleton
/// members (up to two of them), derivability coincides with implication.
#[test]
fn exhaustive_completeness_small_universe() {
    let u = Universe::of_size(4);
    let premises = vec![
        DiffConstraint::parse("A -> {B}", &u).unwrap(),
        DiffConstraint::parse("BC -> {D}", &u).unwrap(),
        DiffConstraint::parse("D -> {A, C}", &u).unwrap(),
    ];
    let singletons: Vec<AttrSet> = (0..4).map(AttrSet::singleton).collect();
    for lhs_mask in 0u64..16 {
        let lhs = AttrSet::from_bits(lhs_mask);
        for i in 0..singletons.len() {
            for j in i..singletons.len() {
                let fam = Family::from_sets([singletons[i], singletons[j]]);
                let goal = DiffConstraint::new(lhs, fam);
                let implied = implication::implies(&u, &premises, &goal);
                let proof = inference::derive(&u, &premises, &goal);
                assert_eq!(implied, proof.is_some(), "mismatch at {}", goal.format(&u));
                if let Some(p) = proof {
                    p.verify(&u, &premises).unwrap();
                }
            }
        }
    }
}

/// Figure 1 rule soundness, checked semantically one rule at a time.
#[test]
fn figure_1_rules_are_sound() {
    let u = Universe::of_size(5);
    let shape = ConstraintShape::default();
    for seed in 0..30u64 {
        let mut gen = ConstraintGenerator::new(seed, &u);
        let base = gen.constraint(&shape);
        let z_set = gen.random_set(2);

        // Augmentation.
        let augmented = DiffConstraint::new(base.lhs.union(z_set), base.rhs.clone());
        assert!(implication::implies(
            &u,
            std::slice::from_ref(&base),
            &augmented
        ));

        // Addition.
        let added = DiffConstraint::new(base.lhs, base.rhs.with_member(z_set));
        assert!(implication::implies(
            &u,
            std::slice::from_ref(&base),
            &added
        ));

        // Elimination: build hypotheses explicitly.
        let fam = base.rhs.clone();
        let with_member = DiffConstraint::new(base.lhs, fam.with_member(z_set));
        let with_lhs = DiffConstraint::new(base.lhs.union(z_set), fam.clone());
        let conclusion = DiffConstraint::new(base.lhs, fam);
        assert!(implication::implies(
            &u,
            &[with_member, with_lhs],
            &conclusion
        ));

        // Triviality.
        let trivial = DiffConstraint::new(base.lhs.union(z_set), Family::single(z_set));
        assert!(implication::implies(&u, &[], &trivial));
    }
}

/// Figure 2 rules as tactics: each application yields a verified primitive-rule
/// derivation whose conclusion is also semantically implied.
#[test]
fn figure_2_rules_are_derivable_and_sound() {
    let u = Universe::of_size(5);
    let mut gen = ConstraintGenerator::new(99, &u);
    for _ in 0..20 {
        let x = gen.random_possibly_empty_set(2);
        let y = gen.random_set(2);
        let z = gen.random_set(2);
        let family = Family::single(gen.random_set(1));

        // Chain.
        let first = DiffConstraint::new(x, family.with_member(y));
        let second = DiffConstraint::new(x.union(y), family.with_member(z));
        let proof = derived_rules::chain(&u, &first, &second, &family, y, z).unwrap();
        proof.verify(&u, &[first.clone(), second.clone()]).unwrap();
        assert!(implication::implies_semantic(
            &u,
            &[first.clone(), second],
            proof.conclusion()
        ));

        // Projection and separation share the same hypothesis shape.
        let hyp = DiffConstraint::new(x, family.with_member(y.union(z)));
        let proj = derived_rules::projection(&u, &hyp, &family, y, z).unwrap();
        proj.verify(&u, std::slice::from_ref(&hyp)).unwrap();
        let sep = derived_rules::separation(&u, &hyp, &family, y, z).unwrap();
        sep.verify(&u, std::slice::from_ref(&hyp)).unwrap();

        // Transitivity.
        let t1 = DiffConstraint::new(x, family.with_member(y));
        let t2 = DiffConstraint::new(y, family.with_member(z));
        let trans = derived_rules::transitivity(&u, &t1, &t2, &family, y, z).unwrap();
        trans.verify(&u, &[t1.clone(), t2.clone()]).unwrap();
        assert!(implication::implies(&u, &[t1, t2], trans.conclusion()));

        // Union.
        let u1 = DiffConstraint::new(x, family.with_member(y));
        let u2 = DiffConstraint::new(x, family.with_member(z));
        let un = derived_rules::union(&u, &u1, &u2, &family, y, z).unwrap();
        un.verify(&u, &[u1.clone(), u2.clone()]).unwrap();
        assert!(implication::implies(&u, &[u1, u2], un.conclusion()));
    }
}

/// Proof statistics stay sane: proofs never exceed a generous bound in size and
/// always verify after round-tripping through their textual rendering context.
#[test]
fn proof_objects_are_well_behaved() {
    let u = Universe::of_size(6);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 3,
        max_member_size: 2,
        allow_trivial: false,
    };
    for seed in 0..20u64 {
        let mut gen = ConstraintGenerator::new(seed, &u);
        let premises = gen.constraint_set(5, &shape);
        let goal = gen.implied_goal(&premises);
        let proof = inference::derive(&u, &premises, &goal).expect("implied goals derive");
        assert!(
            proof.size() < 5_000,
            "proof unexpectedly large: {}",
            proof.size()
        );
        assert!(proof.depth() <= proof.size());
        let text = proof.format(&u);
        assert!(text.lines().count() >= 1);
        let counts = proof.rule_counts();
        assert_eq!(counts.values().sum::<usize>(), proof.size());
    }
}
