//! The `diffcond` line protocol: one request per line in, one machine-readable
//! response line out.
//!
//! # Request grammar
//!
//! ```text
//! request    ::= "universe" (NUMBER | NAME+)     start a session in the
//!              |                                 current slot (resets state)
//!              | "session" "new"                 open a fresh session slot
//!              |                                 and switch to it
//!              | "session" "use" NUMBER          switch to a slot by id
//!              | "session" "close" [NUMBER]      close a slot (default: the
//!              |                                 current one)
//!              | "session" "list"                list the session slots
//!              | "assert" constraint             add a premise
//!              | "retract" constraint            remove a premise
//!              | "implies" constraint            decide C ⊨ goal
//!              | "batch" constraint (";" constraint)*
//!              |                                 decide many goals in parallel
//!              | "witness" constraint            refutation witness, if any
//!              | "derive" constraint             Figure 1 proof, if implied
//!              | "explain" constraint            decide C ⊨ goal and report
//!              |                                 the route, snapshot epoch,
//!              |                                 and per-stage latency
//!              | "analyze" ["apply"]             premise-core static
//!              |                                 analysis: redundant
//!              |                                 premises with implying
//!              |                                 witnesses, an infeasible
//!              |                                 minimal conflicting known
//!              |                                 set, and dead density
//!              |                                 variables ("apply"
//!              |                                 retracts the redundant
//!              |                                 premises, answer-
//!              |                                 preservingly)
//!              | "trace" ("on" | "off")           toggle reply tracing: query
//!              |                                 replies gain an `epoch=`
//!              |                                 field naming the snapshot
//!              |                                 that answered
//!              | "known" SET ["="] VALUE         record f(SET) = VALUE
//!              | "forget" SET                    drop a recorded value
//!              | "bound" SET                     derive [lo, hi] for f(SET)
//!              | "load" SET (";" SET)*           append baskets to the dataset
//!              | "mine" [NUMBER NUMBER]          discover the minimal satisfied
//!              |                                 constraints of the dataset
//!              |                                 (budgets: max |X|, max |𝒴|)
//!              | "adopt" [NUMBER NUMBER]         mine, then assert the cover
//!              | "dataset"                       dataset statistics
//!              | "premises"                      list the premise set
//!              | "knowns"                        list the recorded values
//!              | "stats"                         engine statistics
//!              | "stats" "recent"                windowed live statistics
//!              |                                 (rates and stage latency
//!              |                                 over the last minute)
//!              | "debug" "recent" [NUMBER]       dump the most recent flight
//!              |                                 records (default 10)
//!              | "debug" "trace" NUMBER          dump one flight record by
//!              |                                 its trace id
//!              | "debug" "profile" ACTION        continuous profiler:
//!              |                                 "start" | "stop" | "dump"
//!              | "reset"                         drop premises, knowns, caches,
//!              |                                 and the dataset
//!              | "help"                          this summary
//!              | "quit"                          end the session
//! constraint ::= the diffcon textual syntax, e.g. "A -> {B, CD}"
//! SET        ::= attribute names, e.g. "AB" ("{}" for the empty set)
//! VALUE      ::= a finite decimal number
//! ```
//!
//! Blank lines and lines starting with `#` are ignored (empty response).
//!
//! # Network framing
//!
//! Over a byte transport (the `diffcond serve` TCP front-end in
//! [`crate::net`]) the same grammar is framed as newline-delimited lines:
//!
//! ```text
//! frame   ::= request "\n"                      one request per line; an
//!                                               optional trailing "\r" is
//!                                               stripped (telnet/Windows
//!                                               clients), and a final
//!                                               unterminated line at EOF is
//!                                               still served
//! reply   ::= response "\n"                     exactly one reply line per
//!                                               non-silent request, in
//!                                               request order (blank and
//!                                               `#` comment lines are
//!                                               silent: no reply at all)
//! ```
//!
//! Framing violations answer `err` without closing the connection:
//!
//! * a request line longer than [`MAX_REQUEST_BYTES`] bytes (the
//!   per-request admission limit) is discarded up to its newline and
//!   answered `err request line exceeds … bytes (got …)` — see
//!   [`oversized_request`];
//! * bytes that are not valid UTF-8 are answered
//!   `err request is not valid UTF-8 (byte 0x… at position …)` with the
//!   1-based position of the first offending byte — see
//!   [`decode_request`].
//!
//! Parse-level failures (unknown verbs, malformed arguments, trailing
//! garbage after a complete verb) likewise answer `err` with the offending
//! token and its 1-based column, mirroring
//! [`fis::basket::BasketParseError`]'s 1-based reporting, and never
//! terminate the connection; only `quit` (reply `bye`) and the client
//! closing its end do.
//!
//! # Binary framing
//!
//! When the server runs with `serve --binary`, a connection may *negotiate*
//! the compact binary framing of the [`binary`] module instead of the
//! newline framing above: the client's very first bytes are the 5-byte
//! magic [`binary::MAGIC`], the server answers the 5-byte [`binary::ACK`],
//! and both directions then speak length-prefixed frames.  A connection
//! that opens with anything else stays on the text framing (the debug and
//! compatibility surface — both framings serve the same grammar and reply
//! text on one port).  The magic deliberately ends in `\n` and opens with
//! bytes that are invalid UTF-8, so a server *without* `--binary` parses it
//! as a complete, malformed text line and answers a plain `err` — a client
//! probing for binary support gets a decisive answer either way instead of
//! hanging.  All multi-byte integers are little-endian:
//!
//! ```text
//! handshake ::= MAGIC = d1 ff b1 01 0a         client → server, first bytes
//!               ACK   = d1 ff b1 81 0a         server → client, first bytes
//!
//! request   ::= 00 len:u32 byte[len]           a UTF-8 request line of the
//!                                              text grammar (no newline)
//!             | 01 lhs:u64 k:u16 (mask:u64)^k  implies  lhs → {mask…}
//!             | 02 set:u64                     bound    set
//!             | 03 lhs:u64 k:u16 (mask:u64)^k  assert   lhs → {mask…}
//!
//! reply     ::= 00 len:u32 byte[len]           one UTF-8 response line of
//!                                              the response grammar (no
//!                                              newline), in request order;
//!                                              silent requests reply
//!                                              nothing, exactly as in text
//! ```
//!
//! The fixed-width verb frames (`01`/`02`/`03`) carry attribute *bitmasks*
//! over the current session's universe — bit `i` is the universe's `i`-th
//! attribute, so masks are valid for any universe of at most
//! [`setlat::MAX_UNIVERSE`] (= 64) attributes — and decode to exactly the
//! requests `implies`/`bound`/`assert` parse from text (the member family
//! is built by the same constructor, so answers and replies are
//! byte-identical up to telemetry fields).  A mask with bits outside the
//! universe answers `err`, like any other semantic error, without ending
//! the connection.
//!
//! Framing violations are stricter than in text, because a length-prefixed
//! stream cannot resynchronize after a corrupt header: an unknown frame
//! tag, a `len` above the admission limit ([`MAX_REQUEST_BYTES`] /
//! `--max-request-bytes`), or a member count above
//! [`binary::MAX_MEMBERS`] answers one `err` frame and then closes the
//! connection.  A frame truncated by disconnect just ends the connection
//! (there is no partial-line salvage as in text framing).
//!
//! # Response grammar
//!
//! ```text
//! response ::= "ok" field*                       state-changing commands
//!            | "sessions" "n=" NUMBER "current=" NUMBER slotdesc*
//!            |                                   session list
//!            | "yes" field* | "no" field*        implies
//!            | "results" "n=" NUMBER (y|n)*      batch, index-aligned
//!            | "witness" ("none" | "set=" SET)
//!            | "proof" field* | "unprovable"
//!            | "explain" field*                  instrumented implies
//!            | "bound" "lo=" BOUNDVAL "hi=" BOUNDVAL field*
//!            |                                  interval response form
//!            | "mined" field* constraint*        discovery results
//!            | "dataset" field*                  dataset statistics
//!            | "premises" "n=" NUMBER constraint*
//!            | "knowns" "n=" NUMBER (SET "=" VALUE)*
//!            | "stats" field*
//!            | "stats" "recent" field*           windowed live statistics
//!            | "flight" "n=" NUMBER record*      flight-recorder dumps
//!            | "profile" field* stack*           collapsed-stack profiles
//!            | "bye"
//!            | "err" message
//! field    ::= KEY "=" VALUE                     e.g. route=lattice us=12
//! BOUNDVAL ::= NUMBER | "inf" | "-inf"           interval endpoints
//! slotdesc ::= ID ":" ("-" | "u" NUMBER "p" NUMBER "q" NUMBER)
//!                                                per-slot: "-" while no
//!                                                universe is open, else
//!                                                universe size, premise
//!                                                count, and queries served
//!                                                (e.g. `0:u4p2q7 1:-`)
//! stack    ::= FRAMES " " NUMBER (" | " …)*      one sampled stack per
//!                                                group: semicolon-joined
//!                                                frames plus its sample
//!                                                count (`conn;net.read 42`),
//!                                                heaviest first
//! record   ::= field* (" | " field*)*            one `trace=… conn=… slot=…
//!                                                verb=… route=… cached=…
//!                                                in=… out=… frame_us=…
//!                                                queue_us=… plan_us=…
//!                                                decide_us=… reply_us=…
//!                                                epoch=…` group per request,
//!                                                newest first, `|`-separated
//! ```
//!
//! `implies` responses carry `route` (`trivial`, `fd`, `lattice`, `sat` —
//! the routes the planner can select), `cached` (`0`/`1`), and `us` (decision
//! latency in microseconds).  `bound` responses carry `lo`/`hi` (the derived
//! interval, `exact=1` when it is a single point), `route` (`cached`,
//! `propagation`, `relaxed` — the bound-query routing ladder), `cached`, and
//! `us`; state the derivation recognizes as contradictory answers
//! `err infeasible: …` instead (the propagation route detects every
//! contradiction it enumerates; the relaxed route's detection is
//! best-effort — only contradictions involving the query set).  `stats`
//! reports one `<route>=<decided>/<cache hits>c/<total µs>us` field per
//! procedure that has served at least one query, plus a
//! `bound=<propagation>p/<relaxed>r/<cache hits>c/<total µs>us` field once
//! bound queries have been served.
//! Constraints in responses are printed in the compact parseable form
//! `A->{B,CD}`, so a client can feed them straight back into requests.
//!
//! # Observability verbs
//!
//! `explain <constraint>` answers the implication query through the
//! ordinary serving path — same caches, same planner accounting — and
//! reports where the time went:
//!
//! ```text
//! explain verdict=(yes|no) route=ROUTE cached=(0|1) epoch=N
//!         probe_us=N plan_us=N decide_us=N total_us=N trace=N queue_us=N
//! ```
//!
//! `probe_us` is the answer-cache probe, `plan_us` the route choice plus
//! derived-data cache attachment, `decide_us` the decision procedure itself
//! (both zero on a cache hit), and `epoch` the snapshot that answered.
//! `trace` is the request's flight-record trace id and `queue_us` its queue
//! wait; both match the request's record in `debug trace <id>` exactly.
//!
//! Every completed query request also writes a fixed-width record into the
//! process-wide flight recorder (a lock-free overwrite-oldest ring, always
//! on): trace id, connection and slot, verb, route, cache outcome, bytes
//! in/out, and per-stage latency.  `debug recent [n]` dumps the `n` most
//! recent records (newest first, default 10) and `debug trace <id>` looks a
//! single request up by trace id; `stats recent` reports windowed rates and
//! stage-latency percentiles over roughly the last minute of traffic.
//! Trace ids are unique across the process and monotone within a
//! connection (connection id in the upper 32 bits, a per-connection
//! sequence number in the lower).
//!
//! `debug profile start` starts the process-wide continuous profiler (the
//! cooperative sampler walking every serving thread's stage beacon at the
//! configured rate — `--profile-hz`, default 97) and answers
//! `ok profile running=1 hz=N`; `debug profile stop` halts it, keeping the
//! accumulated samples (`ok profile running=0 samples=N`); `debug profile
//! dump` reports them as ` | `-separated flamegraph-collapsed stacks:
//! `profile samples=N stacks=K class;tag;…;tag count | …`.  The `/profile`
//! HTTP endpoint serves the same stacks in the newline-delimited form
//! external flamegraph tooling consumes.
//!
//! `trace on` makes every subsequent query reply (`implies`, `batch`,
//! `bound`, `witness`, `derive`, `mine`) carry a trailing ` epoch=N` field
//! naming the snapshot it was answered against; `trace off` restores the
//! plain form.  The epoch is fixed by the snapshot captured at the
//! request's position in the input order, so traced replies are identical
//! under serial and pipelined execution.  The reply is `ok trace=1` /
//! `ok trace=0`.
//!
//! `stats` additionally reports, per procedure that decided at least one
//! query, decision-latency percentiles as `<route>_p50us=…`/`<route>_p99us=…`
//! fields, cache collision counts (the fourth `/c…` component of each
//! `…_cache=` field — verified-miss recomputations under digest collisions),
//! and the answer cache's per-shard occupancy spread `answer_occ=min/max`
//! for `--cache-shards` tuning.
//!
//! # Discovery verbs
//!
//! `load` appends `;`-separated baskets to the session's dataset (creating
//! it on first use) and answers `ok load added=… baskets=…`; parse failures
//! answer `err` with the 1-based record number and offending token (blank
//! and `#` comment records are skipped but still counted, so the reported
//! position always matches the client's own record numbering).  `mine`
//! discovers the minimal satisfied disjunctive constraints of the dataset
//! (as differential constraints, Proposition 6.3) within the budgets
//! `max |X| max |𝒴|` (default 2 2) and answers
//! `mined minimal=… cover=…` followed by the non-redundant cover in wire
//! form.  `adopt` runs the same discovery and asserts the cover as
//! premises, answering `ok adopt minimal=… cover=… added=… premises=…` —
//! after which `bound` queries and implication answers reason from what
//! provably holds in the data.  `dataset` answers
//! `dataset baskets=… items=… occurring=…`.  Mining is refused (with
//! `err`) on universes above [`MAX_MINE_UNIVERSE`] attributes, and when
//! the requested family budget exceeds [`MAX_MINE_RHS_WORK`] relative to
//! the universe size: both bounds are measured wedge thresholds for the
//! single-threaded serving loop (the candidate-member pool is
//! `2^{|S|−|X|}` per antecedent, and the family search is exponential in
//! `max |𝒴|` on top of it).
//!
//! # Session verbs
//!
//! A server holds a registry of numbered session slots
//! ([`crate::server_state::SessionRegistry`]); every verb above operates on
//! the *current* slot.  `session new` opens a fresh empty slot and switches
//! to it (`ok session id=… sessions=…`); `session use <id>` switches back
//! (`ok session id=…`); `session close [<id>]` drops a slot's state
//! (`ok session closed=… sessions=… current=…` — closing the last slot
//! opens a fresh empty one, and ids are never reused); `session list`
//! answers `sessions n=… current=…` followed by one `slotdesc` per slot.
//! Each slot's premises, knowns, dataset, and statistics are fully
//! independent; under `diffcond --threads N`, queries against different
//! slots (and read-only queries against the same slot) execute concurrently
//! on their respective snapshots.

use crate::metrics::{next_connection_id, EngineMetrics, FlightRecord};
use crate::server_state::{DeferredQuery, QueryKind, SessionRegistry};
use crate::session::{Session, SessionConfig};
use crate::snapshot::{AnalyzeOutcome, BoundOutcome, ExplainOutcome, QueryOutcome};
use diffcon::inference::Derivation;
use diffcon::procedure::ALL_PROCEDURES;
use diffcon::DiffConstraint;
use diffcon_bounds::problem::DeriveError;
use diffcon_bounds::Interval;
use diffcon_discover::{Discovery, MinerConfig};
use diffcon_obs::profile;
use setlat::{AttrSet, Family, Universe};

pub use diffcon_discover::{MAX_MINE_RHS_WORK, MAX_MINE_UNIVERSE};

/// Default per-request line-length admission limit of the network framing,
/// in bytes (the `\n` terminator excluded).
///
/// Generous for the grammar — the longest legitimate requests (`batch` and
/// `load` with hundreds of `;`-separated items) stay well under it — while
/// bounding what a slow or malicious client can make the serving loop
/// buffer.  Longer lines are discarded up to their newline and answered
/// with [`oversized_request`].
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Decodes one raw request line received from a byte transport: validates
/// UTF-8 and strips one optional trailing `'\r'` (so CRLF-terminated lines
/// from telnet or Windows clients parse like LF-terminated ones).
///
/// # Errors
/// The `err` reply text for undecodable bytes, naming the first offending
/// byte and its 1-based position in the line.
pub fn decode_request(bytes: &[u8]) -> Result<&str, String> {
    match std::str::from_utf8(bytes) {
        Ok(text) => Ok(text.strip_suffix('\r').unwrap_or(text)),
        Err(e) => {
            let at = e.valid_up_to();
            Err(format!(
                "request is not valid UTF-8 (byte 0x{:02x} at position {})",
                bytes[at],
                at + 1
            ))
        }
    }
}

/// The `err` reply text for a request line over the admission limit.
pub fn oversized_request(got: usize, limit: usize) -> String {
    format!("request line exceeds {limit} bytes (got {got})")
}

/// The compact binary wire framing (`serve --binary`), negotiated per
/// connection by the [`MAGIC`](binary::MAGIC)/[`ACK`](binary::ACK)
/// handshake.  Grammar in the *Binary framing* section of the
/// [module docs](crate::protocol); both the server reactor and the
/// [`crate::client::Client`] use these encoders/decoders, so the two sides
/// of the wire can never drift apart.
pub mod binary {
    /// First bytes a client sends to negotiate binary framing.  Starts with
    /// `0xD1 0xFF`, an invalid UTF-8 sequence, and ends with `\n`, so a
    /// text-only server parses it as one complete malformed line and
    /// answers a plain `err request is not valid UTF-8 …` — a probing
    /// client fails fast instead of hanging on a half-read handshake.
    pub const MAGIC: [u8; 5] = [0xD1, 0xFF, 0xB1, 0x01, b'\n'];
    /// The server's 5-byte answer to [`MAGIC`]; everything after it is
    /// binary reply frames.
    pub const ACK: [u8; 5] = [0xD1, 0xFF, 0xB1, 0x81, b'\n'];

    /// Frame tag: a length-prefixed UTF-8 request line (requests) or
    /// response line (replies).
    pub const TAG_LINE: u8 = 0x00;
    /// Frame tag: fixed-width `implies` over attribute bitmasks.
    pub const TAG_IMPLIES: u8 = 0x01;
    /// Frame tag: fixed-width `bound` over an attribute bitmask.
    pub const TAG_BOUND: u8 = 0x02;
    /// Frame tag: fixed-width `assert` over attribute bitmasks.
    pub const TAG_ASSERT: u8 = 0x03;

    /// Member-count admission limit of the fixed-width constraint frames.
    /// Generous — useful right-hand-side families are tiny — while bounding
    /// what a corrupt or malicious `k` field can make the server buffer.
    pub const MAX_MEMBERS: usize = 1024;

    /// One decoded request frame, borrowing from the connection's input
    /// buffer (the hot path allocates nothing).
    #[derive(Debug, PartialEq, Eq)]
    pub enum BinRequest<'a> {
        /// Tag `00`: a request line in the text grammar (UTF-8 not yet
        /// validated — the transport runs it through
        /// [`decode_request`](super::decode_request) like any text line).
        Line(&'a [u8]),
        /// Tag `01`: `implies lhs -> {rhs…}` over bitmasks.
        Implies {
            /// Left-hand-side attribute bitmask.
            lhs: u64,
            /// Right-hand-side member bitmasks.
            rhs: MaskList<'a>,
        },
        /// Tag `02`: `bound set` over a bitmask.
        Bound {
            /// The queried attribute bitmask.
            set: u64,
        },
        /// Tag `03`: `assert lhs -> {rhs…}` over bitmasks.
        Assert {
            /// Left-hand-side attribute bitmask.
            lhs: u64,
            /// Right-hand-side member bitmasks.
            rhs: MaskList<'a>,
        },
    }

    /// The `k` little-endian `u64` member masks of a fixed-width frame,
    /// still in wire form (no allocation until the server builds the
    /// constraint).
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct MaskList<'a>(&'a [u8]);

    impl MaskList<'_> {
        /// Number of member masks.
        pub fn len(&self) -> usize {
            self.0.len() / 8
        }

        /// No members (an empty right-hand-side family).
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates the masks in wire order.
        pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
            self.0
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        }
    }

    /// The outcome of decoding one frame from a buffer prefix.
    #[derive(Debug, PartialEq)]
    pub enum Decoded<'a> {
        /// A complete frame and its total wire length in bytes (header
        /// included) — the transport consumes exactly that many bytes.
        Frame(BinRequest<'a>, usize),
        /// The buffer holds a prefix of a valid frame; read more bytes.
        Incomplete,
        /// An unrecoverable framing violation (unknown tag, oversize
        /// declaration).  The payload is the `err` message to answer before
        /// closing: a corrupt length-prefixed stream cannot resynchronize.
        Fatal(String),
    }

    fn u32_at(buf: &[u8], at: usize) -> u32 {
        u32::from_le_bytes(buf[at..at + 4].try_into().expect("4-byte slice"))
    }

    fn u64_at(buf: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(buf[at..at + 8].try_into().expect("8-byte slice"))
    }

    /// Decodes one request frame from the front of `buf`.  `max_bytes` is
    /// the per-request admission limit (the text framing's line cap; a
    /// `Line` payload above it is [`Decoded::Fatal`]).
    pub fn decode_request(buf: &[u8], max_bytes: usize) -> Decoded<'_> {
        let Some(&tag) = buf.first() else {
            return Decoded::Incomplete;
        };
        match tag {
            TAG_LINE => {
                if buf.len() < 5 {
                    return Decoded::Incomplete;
                }
                let len = u32_at(buf, 1) as usize;
                if len > max_bytes {
                    return Decoded::Fatal(super::oversized_request(len, max_bytes));
                }
                if buf.len() < 5 + len {
                    return Decoded::Incomplete;
                }
                Decoded::Frame(BinRequest::Line(&buf[5..5 + len]), 5 + len)
            }
            TAG_IMPLIES | TAG_ASSERT => {
                if buf.len() < 11 {
                    return Decoded::Incomplete;
                }
                let lhs = u64_at(buf, 1);
                let k = u16::from_le_bytes([buf[9], buf[10]]) as usize;
                if k > MAX_MEMBERS {
                    return Decoded::Fatal(format!(
                        "binary frame declares {k} members (limit {MAX_MEMBERS})"
                    ));
                }
                let total = 11 + 8 * k;
                if buf.len() < total {
                    return Decoded::Incomplete;
                }
                let rhs = MaskList(&buf[11..total]);
                let frame = if tag == TAG_IMPLIES {
                    BinRequest::Implies { lhs, rhs }
                } else {
                    BinRequest::Assert { lhs, rhs }
                };
                Decoded::Frame(frame, total)
            }
            TAG_BOUND => {
                if buf.len() < 9 {
                    return Decoded::Incomplete;
                }
                Decoded::Frame(
                    BinRequest::Bound {
                        set: u64_at(buf, 1),
                    },
                    9,
                )
            }
            other => Decoded::Fatal(format!("unknown binary frame tag 0x{other:02x}")),
        }
    }

    /// The outcome of decoding one reply frame (client side).
    #[derive(Debug, PartialEq)]
    pub enum DecodedReply<'a> {
        /// A complete reply payload (the response line's UTF-8 bytes) and
        /// the frame's total wire length.
        Frame(&'a [u8], usize),
        /// A prefix of a valid frame; read more bytes.
        Incomplete,
        /// Corrupt reply stream; the message describes the violation.
        Fatal(String),
    }

    /// Decodes one reply frame from the front of `buf`.  `max_bytes` caps
    /// the declared payload length (the client's reply admission limit).
    pub fn decode_reply(buf: &[u8], max_bytes: usize) -> DecodedReply<'_> {
        let Some(&tag) = buf.first() else {
            return DecodedReply::Incomplete;
        };
        if tag != TAG_LINE {
            return DecodedReply::Fatal(format!("unknown binary reply tag 0x{tag:02x}"));
        }
        if buf.len() < 5 {
            return DecodedReply::Incomplete;
        }
        let len = u32_at(buf, 1) as usize;
        if len > max_bytes {
            return DecodedReply::Fatal(format!(
                "binary reply declares {len} bytes (limit {max_bytes})"
            ));
        }
        if buf.len() < 5 + len {
            return DecodedReply::Incomplete;
        }
        DecodedReply::Frame(&buf[5..5 + len], 5 + len)
    }

    /// Encodes a text-grammar request line as a `00` frame.
    pub fn encode_line(line: &str, out: &mut Vec<u8>) {
        out.push(TAG_LINE);
        out.extend_from_slice(&(line.len() as u32).to_le_bytes());
        out.extend_from_slice(line.as_bytes());
    }

    fn encode_masks(tag: u8, lhs: u64, rhs: &[u64], out: &mut Vec<u8>) {
        debug_assert!(rhs.len() <= MAX_MEMBERS);
        out.push(tag);
        out.extend_from_slice(&lhs.to_le_bytes());
        out.extend_from_slice(&(rhs.len() as u16).to_le_bytes());
        for mask in rhs {
            out.extend_from_slice(&mask.to_le_bytes());
        }
    }

    /// Encodes a fixed-width `implies lhs -> {rhs…}` frame.
    pub fn encode_implies(lhs: u64, rhs: &[u64], out: &mut Vec<u8>) {
        encode_masks(TAG_IMPLIES, lhs, rhs, out);
    }

    /// Encodes a fixed-width `assert lhs -> {rhs…}` frame.
    pub fn encode_assert(lhs: u64, rhs: &[u64], out: &mut Vec<u8>) {
        encode_masks(TAG_ASSERT, lhs, rhs, out);
    }

    /// Encodes a fixed-width `bound set` frame.
    pub fn encode_bound(set: u64, out: &mut Vec<u8>) {
        out.push(TAG_BOUND);
        out.extend_from_slice(&set.to_le_bytes());
    }

    /// Encodes one response line as a `00` reply frame.
    pub fn encode_reply(text: &str, out: &mut Vec<u8>) {
        encode_line(text, out);
    }
}

/// 1-based character column of `part` within `line`.  `part` must be a
/// subslice of `line` (as produced by the splitting in [`parse_request`]).
fn column_of(line: &str, part: &str) -> usize {
    let offset = (part.as_ptr() as usize).saturating_sub(line.as_ptr() as usize);
    line.get(..offset).map_or(0, |head| head.chars().count()) + 1
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `universe 4` or `universe A B C D`.
    Universe(UniverseSpec),
    /// `session new`.
    SessionNew,
    /// `session use 1`.
    SessionUse(u64),
    /// `session close` or `session close 1`.
    SessionClose(Option<u64>),
    /// `session list`.
    SessionList,
    /// `assert <constraint>`.
    Assert(String),
    /// `retract <constraint>`.
    Retract(String),
    /// `implies <constraint>`.
    Implies(String),
    /// `batch <c1> ; <c2> ; …`.
    Batch(Vec<String>),
    /// `witness <constraint>`.
    Witness(String),
    /// `derive <constraint>`.
    Derive(String),
    /// `explain <constraint>` — `implies` with a per-stage latency and
    /// snapshot-epoch report.
    Explain(String),
    /// `analyze` or `analyze apply` — premise-core static analysis of the
    /// current session (`apply` additionally retracts the redundant
    /// premises, which is answer-preserving).
    Analyze {
        /// `true` for `analyze apply`: execute the core reduction instead
        /// of only reporting it.
        apply: bool,
    },
    /// `trace on` / `trace off` — toggle the `epoch=` reply suffix.
    Trace(bool),
    /// `known <set> = <value>` (the `=` is optional).
    Known(String, f64),
    /// `forget <set>`.
    Forget(String),
    /// `bound <set>`.
    Bound(String),
    /// `load <b1> ; <b2> ; …`.
    Load(Vec<String>),
    /// `mine` or `mine <max_lhs> <max_rhs>`.
    Mine(Option<(usize, usize)>),
    /// `adopt` or `adopt <max_lhs> <max_rhs>`.
    Adopt(Option<(usize, usize)>),
    /// `dataset`.
    Dataset,
    /// `premises`.
    Premises,
    /// `knowns`.
    Knowns,
    /// `stats`.
    Stats,
    /// `stats recent` — windowed live stats (rates and stage percentiles
    /// over roughly the last minute).
    StatsRecent,
    /// `debug recent` or `debug recent <n>` — dump the most recent flight
    /// records.
    DebugRecent(Option<usize>),
    /// `debug trace <id>` — dump one flight record by trace id.
    DebugTrace(u64),
    /// `debug profile start|stop|dump` — control the continuous profiler.
    DebugProfile(ProfileAction),
    /// `reset`.
    Reset,
    /// `help`.
    Help,
    /// `quit`.
    Quit,
    /// Blank or comment line: no response.
    Empty,
}

/// The action of a `debug profile` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileAction {
    /// `debug profile start` — start the continuous sampler (and enable the
    /// beacon guards) at the process's configured rate.
    Start,
    /// `debug profile stop` — stop the sampler, keeping its samples.
    Stop,
    /// `debug profile dump` — report the accumulated collapsed stacks.
    Dump,
}

/// The argument of a `universe` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UniverseSpec {
    /// `universe 5` — attributes `A`–`E`.
    Size(usize),
    /// `universe Lo Hi Vol` — explicitly named attributes.
    Names(Vec<String>),
}

/// Returns `true` iff `line` is a *silent* request — blank or a `#`
/// comment, parsed as [`Request::Empty`] — which produces no reply line at
/// all on the wire.  Clients counting replies for pipelined scripts (see
/// [`crate::client::Client::run_script`]) must skip these.
pub fn is_silent(line: &str) -> bool {
    let trimmed = line.trim();
    trimmed.is_empty() || trimmed.starts_with('#')
}

/// One entry of the canonical verb table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verb {
    /// The wire verb name, exactly as [`parse_request`] matches it.
    pub name: &'static str,
    /// A canonical example line that must parse to this verb's request
    /// (the test suite round-trips every entry through [`parse_request`]).
    pub example: &'static str,
}

/// The canonical verb table: every verb [`parse_request`] accepts, in
/// `help`-reply order.  The `help` reply is generated from this table
/// ([`help_reply`]), the test suite checks every example parses, and the
/// repository lint gate (`cargo run -p xtask -- lint`) cross-checks the
/// module's grammar rustdoc against it — so the parser, the help text, and
/// the documentation cannot drift apart.  (`exit` is an undocumented alias
/// of `quit` and deliberately absent.)
pub const VERBS: &[Verb] = &[
    Verb {
        name: "universe",
        example: "universe 4",
    },
    Verb {
        name: "session",
        example: "session list",
    },
    Verb {
        name: "assert",
        example: "assert A -> {B}",
    },
    Verb {
        name: "retract",
        example: "retract A -> {B}",
    },
    Verb {
        name: "implies",
        example: "implies A -> {B}",
    },
    Verb {
        name: "batch",
        example: "batch A -> {B} ; B -> {C}",
    },
    Verb {
        name: "witness",
        example: "witness A -> {B}",
    },
    Verb {
        name: "derive",
        example: "derive A -> {B}",
    },
    Verb {
        name: "explain",
        example: "explain A -> {B}",
    },
    Verb {
        name: "analyze",
        example: "analyze apply",
    },
    Verb {
        name: "trace",
        example: "trace on",
    },
    Verb {
        name: "known",
        example: "known AB = 40",
    },
    Verb {
        name: "forget",
        example: "forget AB",
    },
    Verb {
        name: "bound",
        example: "bound AB",
    },
    Verb {
        name: "load",
        example: "load AB ; B",
    },
    Verb {
        name: "mine",
        example: "mine 2 2",
    },
    Verb {
        name: "adopt",
        example: "adopt 2 2",
    },
    Verb {
        name: "dataset",
        example: "dataset",
    },
    Verb {
        name: "premises",
        example: "premises",
    },
    Verb {
        name: "knowns",
        example: "knowns",
    },
    Verb {
        name: "stats",
        example: "stats recent",
    },
    Verb {
        name: "debug",
        example: "debug recent",
    },
    Verb {
        name: "reset",
        example: "reset",
    },
    Verb {
        name: "help",
        example: "help",
    },
    Verb {
        name: "quit",
        example: "quit",
    },
];

/// The `help` reply text, generated from [`VERBS`] so a newly added verb
/// can never be missing from it.
pub fn help_reply() -> String {
    let mut text = String::from("ok commands:");
    for verb in VERBS {
        text.push(' ');
        text.push_str(verb.name);
    }
    text
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    // Error columns are reported against the line as received (leading
    // whitespace included), so they match what the client actually sent.
    let original = line;
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Request::Empty);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let need = |what: &str, rest: &str| -> Result<String, String> {
        if rest.is_empty() {
            Err(format!("{what} expects a constraint argument"))
        } else {
            Ok(rest.to_string())
        }
    };
    // Verbs that take no argument reject trailing garbage instead of
    // silently ignoring it: `quit now` is a malformed request, not a
    // `quit`, and the error names the offending token and its column.
    let no_args = |request: Request| -> Result<Request, String> {
        if rest.is_empty() {
            Ok(request)
        } else {
            let token = rest.split_whitespace().next().unwrap_or(rest);
            Err(format!(
                "{verb} expects no argument (unexpected `{token}` at column {})",
                column_of(original, token)
            ))
        }
    };
    match verb {
        "universe" => {
            if rest.is_empty() {
                return Err("universe expects a size or attribute names".into());
            }
            if let Ok(n) = rest.parse::<usize>() {
                Ok(Request::Universe(UniverseSpec::Size(n)))
            } else {
                Ok(Request::Universe(UniverseSpec::Names(
                    rest.split_whitespace().map(str::to_string).collect(),
                )))
            }
        }
        "session" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let slot_id = |text: &str| -> Result<u64, String> {
                text.parse()
                    .map_err(|_| format!("session expects a numeric slot id, got `{text}`"))
            };
            match parts.as_slice() {
                ["new"] => Ok(Request::SessionNew),
                ["use", id] => Ok(Request::SessionUse(slot_id(id)?)),
                ["close"] => Ok(Request::SessionClose(None)),
                ["close", id] => Ok(Request::SessionClose(Some(slot_id(id)?))),
                ["list"] => Ok(Request::SessionList),
                _ => Err("session expects `new`, `use <id>`, `close [<id>]`, or `list`".into()),
            }
        }
        "assert" => Ok(Request::Assert(need("assert", rest)?)),
        "retract" => Ok(Request::Retract(need("retract", rest)?)),
        "implies" => Ok(Request::Implies(need("implies", rest)?)),
        "witness" => Ok(Request::Witness(need("witness", rest)?)),
        "derive" => Ok(Request::Derive(need("derive", rest)?)),
        "explain" => Ok(Request::Explain(need("explain", rest)?)),
        "analyze" => match rest.split_whitespace().collect::<Vec<_>>().as_slice() {
            [] => Ok(Request::Analyze { apply: false }),
            ["apply"] => Ok(Request::Analyze { apply: true }),
            ["apply", extra, ..] => Err(format!(
                "analyze expects no argument after `apply` (unexpected `{extra}` at column {})",
                column_of(original, extra)
            )),
            [token, ..] => Err(format!(
                "analyze expects no argument or `apply`, got `{token}` at column {}",
                column_of(original, token)
            )),
        },
        "trace" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            match parts.as_slice() {
                ["on"] => Ok(Request::Trace(true)),
                ["off"] => Ok(Request::Trace(false)),
                [] => Err("trace expects `on` or `off`".into()),
                [mode, extra, ..] if *mode == "on" || *mode == "off" => Err(format!(
                    "trace expects no argument after `{mode}` (unexpected `{extra}` at column {})",
                    column_of(original, extra)
                )),
                [token, ..] => Err(format!(
                    "trace expects `on` or `off`, got `{token}` at column {}",
                    column_of(original, token)
                )),
            }
        }
        "known" => {
            // `known AB = 40` or `known AB 40`.
            let mut parts = rest.split_whitespace().filter(|p| *p != "=");
            let (set, value) = match (parts.next(), parts.next(), parts.next()) {
                (Some(set), Some(value), None) => (set, value),
                _ => return Err("known expects `<set> = <value>`".into()),
            };
            // The shared wire-endpoint parser keeps `known` input symmetric
            // with the `bound`/`knowns` output formatting (and rejects NaN).
            let value: f64 = Interval::parse_endpoint(value)
                .map_err(|_| format!("known expects a numeric value, got `{value}`"))?;
            if !value.is_finite() {
                return Err("known values must be finite".into());
            }
            Ok(Request::Known(set.to_string(), value))
        }
        "forget" => Ok(Request::Forget(need("forget", rest)?)),
        "bound" => Ok(Request::Bound(need("bound", rest)?)),
        "load" => {
            // Keep empty segments: the loader skips them but counts them,
            // so error positions match the client's own `;`-separated
            // record numbering.
            let records: Vec<String> = rest.split(';').map(|s| s.trim().to_string()).collect();
            if records.iter().all(String::is_empty) {
                Err("load expects `;`-separated baskets".into())
            } else {
                Ok(Request::Load(records))
            }
        }
        "mine" | "adopt" => {
            let budgets = if rest.is_empty() {
                None
            } else {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let budget = |text: &str| -> Result<usize, String> {
                    text.parse()
                        .map_err(|_| format!("{verb} expects numeric budgets, got `{text}`"))
                };
                match parts.as_slice() {
                    [lhs, rhs] => Some((budget(lhs)?, budget(rhs)?)),
                    _ => {
                        return Err(format!(
                            "{verb} expects no arguments or `<max_lhs> <max_rhs>`"
                        ))
                    }
                }
            };
            Ok(if verb == "mine" {
                Request::Mine(budgets)
            } else {
                Request::Adopt(budgets)
            })
        }
        "dataset" => no_args(Request::Dataset),
        "batch" => {
            let goals: Vec<String> = rest
                .split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if goals.is_empty() {
                Err("batch expects `;`-separated constraints".into())
            } else {
                Ok(Request::Batch(goals))
            }
        }
        "premises" => no_args(Request::Premises),
        "knowns" => no_args(Request::Knowns),
        "stats" => match rest.split_whitespace().collect::<Vec<_>>().as_slice() {
            [] => Ok(Request::Stats),
            ["recent"] => Ok(Request::StatsRecent),
            ["recent", extra, ..] => Err(format!(
                "stats recent expects no argument (unexpected `{extra}` at column {})",
                column_of(original, extra)
            )),
            _ => no_args(Request::Stats),
        },
        "debug" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            match parts.as_slice() {
                ["recent"] => Ok(Request::DebugRecent(None)),
                ["recent", n] => n
                    .parse()
                    .map(|n| Request::DebugRecent(Some(n)))
                    .map_err(|_| format!("debug recent expects a numeric count, got `{n}`")),
                ["trace", id] => id
                    .parse()
                    .map(Request::DebugTrace)
                    .map_err(|_| format!("debug trace expects a numeric trace id, got `{id}`")),
                ["profile", "start"] => Ok(Request::DebugProfile(ProfileAction::Start)),
                ["profile", "stop"] => Ok(Request::DebugProfile(ProfileAction::Stop)),
                ["profile", "dump"] => Ok(Request::DebugProfile(ProfileAction::Dump)),
                ["profile", other] => Err(format!(
                    "debug profile expects `start`, `stop`, or `dump`, got `{other}`"
                )),
                _ => Err(
                    "debug expects `recent [<n>]`, `trace <id>`, or `profile start|stop|dump`"
                        .into(),
                ),
            }
        }
        "reset" => no_args(Request::Reset),
        "help" => no_args(Request::Help),
        "quit" | "exit" => no_args(Request::Quit),
        other => Err(format!(
            "unknown command `{other}` at column {} (try `help`)",
            column_of(original, other)
        )),
    }
}

/// Formats a request back into its canonical wire line.
///
/// Inverse of [`parse_request`] whenever the embedded constraint/set texts
/// are themselves trimmed, nonempty, and `;`-free (as the parser produces):
/// `parse_request(&format_request(r)) == Ok(r)` — the protocol round-trip
/// property the test suite checks for every verb.
pub fn format_request(request: &Request) -> String {
    match request {
        Request::Universe(UniverseSpec::Size(n)) => format!("universe {n}"),
        Request::Universe(UniverseSpec::Names(names)) => {
            format!("universe {}", names.join(" "))
        }
        Request::SessionNew => "session new".into(),
        Request::SessionUse(id) => format!("session use {id}"),
        Request::SessionClose(None) => "session close".into(),
        Request::SessionClose(Some(id)) => format!("session close {id}"),
        Request::SessionList => "session list".into(),
        Request::Assert(text) => format!("assert {text}"),
        Request::Retract(text) => format!("retract {text}"),
        Request::Implies(text) => format!("implies {text}"),
        Request::Batch(goals) => format!("batch {}", goals.join(" ; ")),
        Request::Witness(text) => format!("witness {text}"),
        Request::Derive(text) => format!("derive {text}"),
        Request::Explain(text) => format!("explain {text}"),
        Request::Analyze { apply: false } => "analyze".into(),
        Request::Analyze { apply: true } => "analyze apply".into(),
        Request::Trace(true) => "trace on".into(),
        Request::Trace(false) => "trace off".into(),
        Request::Known(set, value) => format!("known {set} = {value}"),
        Request::Forget(set) => format!("forget {set}"),
        Request::Bound(set) => format!("bound {set}"),
        Request::Load(records) => format!("load {}", records.join(" ; ")),
        Request::Mine(None) => "mine".into(),
        Request::Mine(Some((lhs, rhs))) => format!("mine {lhs} {rhs}"),
        Request::Adopt(None) => "adopt".into(),
        Request::Adopt(Some((lhs, rhs))) => format!("adopt {lhs} {rhs}"),
        Request::Dataset => "dataset".into(),
        Request::Premises => "premises".into(),
        Request::Knowns => "knowns".into(),
        Request::Stats => "stats".into(),
        Request::StatsRecent => "stats recent".into(),
        Request::DebugRecent(None) => "debug recent".into(),
        Request::DebugRecent(Some(n)) => format!("debug recent {n}"),
        Request::DebugTrace(id) => format!("debug trace {id}"),
        Request::DebugProfile(ProfileAction::Start) => "debug profile start".into(),
        Request::DebugProfile(ProfileAction::Stop) => "debug profile stop".into(),
        Request::DebugProfile(ProfileAction::Dump) => "debug profile dump".into(),
        Request::Reset => "reset".into(),
        Request::Help => "help".into(),
        Request::Quit => "quit".into(),
        Request::Empty => String::new(),
    }
}

/// Formats a constraint in the compact, re-parseable wire form `A->{B,CD}`.
pub fn format_wire(constraint: &DiffConstraint, universe: &Universe) -> String {
    let members: Vec<String> = constraint
        .rhs
        .iter()
        .map(|m| universe.format_set(m))
        .collect();
    format!(
        "{}->{{{}}}",
        universe.format_set(constraint.lhs),
        members.join(",")
    )
}

/// The miner budgets for a `mine`/`adopt` request (the crate default when
/// the request names none).
fn miner_config(budgets: Option<(usize, usize)>) -> MinerConfig {
    match budgets {
        Some((max_lhs, max_rhs)) => MinerConfig { max_lhs, max_rhs },
        None => MinerConfig::default(),
    }
}

/// A reply's not-yet-committed flight record.  Commits to the global ring
/// on drop, so a reply consumed without crossing a wire (in-process
/// drivers, tests) still leaves its record; the TCP front-end takes the
/// record out first ([`Reply::take_flight`]) and commits it with the
/// measured reply-write latency instead.
#[derive(Debug, Default)]
pub(crate) struct PendingFlight(Option<FlightRecord>);

impl Drop for PendingFlight {
    fn drop(&mut self) {
        if let Some(record) = self.0.take() {
            record.commit_unsent();
        }
    }
}

/// One response line plus the should-terminate flag.
#[derive(Debug, Default)]
pub struct Reply {
    /// The response line (empty for [`Request::Empty`]).
    pub text: String,
    /// `true` after a `quit`.
    pub quit: bool,
    /// The request's flight record, carried from evaluation to the reply
    /// write.  Not part of the reply's value: ignored by `==`, not cloned.
    pub(crate) flight: PendingFlight,
}

/// Equality is over the wire-visible value (text and termination), not the
/// flight-record telemetry riding along.
impl PartialEq for Reply {
    fn eq(&self, other: &Reply) -> bool {
        self.text == other.text && self.quit == other.quit
    }
}

impl Eq for Reply {}

/// Clones the wire-visible value; the flight record stays with the
/// original (a request completes exactly once).
impl Clone for Reply {
    fn clone(&self) -> Reply {
        Reply {
            text: self.text.clone(),
            quit: self.quit,
            flight: PendingFlight(None),
        }
    }
}

impl Reply {
    /// A non-terminating reply line (transports inject framing-level
    /// replies with this plus [`crate::server_state::Pipeline::push_reply`]).
    pub fn line(text: impl Into<String>) -> Reply {
        Reply {
            text: text.into(),
            quit: false,
            flight: PendingFlight(None),
        }
    }

    /// An `err <message>` reply line.
    pub fn err(message: impl Into<String>) -> Reply {
        Reply::line(format!("err {}", message.into()))
    }

    /// Attaches the flight record the reply will commit (on drop, or when
    /// the transport takes it to time the reply write).  Carried inline —
    /// no allocation on the per-request hot path.
    pub(crate) fn attach_flight(&mut self, record: FlightRecord) {
        self.flight = PendingFlight(Some(record));
    }

    /// Takes the pending flight record out, leaving none to auto-commit.
    pub fn take_flight(&mut self) -> Option<FlightRecord> {
        self.flight.0.take()
    }

    /// Borrows the pending flight record (the slow-query log renders it
    /// without disturbing the commit-on-write lifecycle).
    pub(crate) fn flight_ref(&self) -> Option<&FlightRecord> {
        self.flight.0.as_ref()
    }
}

/// Formats an `implies` outcome as its wire reply.
pub(crate) fn implies_reply(outcome: &QueryOutcome) -> Reply {
    Reply::line(format!(
        "{} route={} cached={} us={}",
        if outcome.implied { "yes" } else { "no" },
        outcome.route_name(),
        outcome.cached as u8,
        outcome.elapsed.as_micros()
    ))
}

/// Formats an `explain` outcome as its wire reply.  The trailing `trace`
/// and `queue_us` fields match the request's flight record exactly (the
/// same trace id; queue wait truncated to the same microsecond).
pub(crate) fn explain_reply(
    outcome: ExplainOutcome,
    trace: u64,
    queue: std::time::Duration,
) -> Reply {
    Reply::line(format!(
        "explain verdict={} route={} cached={} epoch={} probe_us={} plan_us={} decide_us={} total_us={} trace={} queue_us={}",
        if outcome.outcome.implied { "yes" } else { "no" },
        outcome.outcome.route_name(),
        outcome.outcome.cached as u8,
        outcome.epoch,
        outcome.probe.as_micros(),
        outcome.plan.as_micros(),
        outcome.decide.as_micros(),
        outcome.total.as_micros(),
        trace,
        queue.as_nanos() as u64 / 1_000
    ))
}

/// Formats the windowed live stats (see [`EngineMetrics::recent`]) as the
/// `stats recent` wire reply.  Stage percentiles are in microseconds; `qps`
/// is requests over the window scaled to per-second.
fn stats_recent_reply() -> Reply {
    let recent = EngineMetrics::global().recent();
    if !recent.baseline {
        // Cold start: no snapshot frame exists yet, so there is nothing to
        // difference against.  Say so explicitly — an all-zero rate line
        // would read as a stalled server.
        return Reply::line("stats recent window_us=0 warming=1".to_string());
    }
    let window_us = recent.window.as_micros() as u64;
    let qps = (recent.requests * 1_000_000)
        .checked_div(window_us)
        .unwrap_or(0);
    Reply::line(format!(
        "stats recent window_us={window_us} queries={} replies={} qps={qps} \
         queue_p50us={} queue_p99us={} plan_p50us={} plan_p99us={} \
         frame_p50us={} frame_p99us={} reply_p50us={} reply_p99us={} \
         bytes_read={} bytes_written={}",
        recent.requests,
        recent.replies,
        recent.queue.quantile(0.50) / 1_000,
        recent.queue.quantile(0.99) / 1_000,
        recent.plan.quantile(0.50) / 1_000,
        recent.plan.quantile(0.99) / 1_000,
        recent.frame.quantile(0.50) / 1_000,
        recent.frame.quantile(0.99) / 1_000,
        recent.reply.quantile(0.50) / 1_000,
        recent.reply.quantile(0.99) / 1_000,
        recent.bytes_read,
        recent.bytes_written
    ))
}

/// Formats a `batch` outcome vector as its wire reply.
pub(crate) fn batch_reply(outcomes: &[QueryOutcome]) -> Reply {
    let mut reply = format!("results n={}", outcomes.len());
    for outcome in outcomes {
        reply.push(' ');
        reply.push(if outcome.implied { 'y' } else { 'n' });
    }
    Reply::line(reply)
}

/// Formats a `bound` outcome (or its infeasibility) as its wire reply.
pub(crate) fn bound_reply(result: Result<BoundOutcome, DeriveError>) -> Reply {
    match result {
        Ok(outcome) => Reply::line(format!(
            "bound lo={} hi={} exact={} route={} cached={} us={}",
            Interval::format_endpoint(outcome.interval.lo),
            Interval::format_endpoint(outcome.interval.hi),
            outcome.interval.is_exact() as u8,
            outcome.route_name(),
            outcome.cached as u8,
            outcome.elapsed.as_micros()
        )),
        Err(e) => Reply::err(format!("infeasible: {e}")),
    }
}

/// Formats a `witness` outcome as its wire reply.
pub(crate) fn witness_reply(universe: &Universe, witness: Option<AttrSet>) -> Reply {
    match witness {
        None => Reply::line("witness none"),
        Some(set) => Reply::line(format!("witness set={}", universe.format_set(set))),
    }
}

/// Formats a `mine` outcome as its wire reply (the cover in wire form, or
/// the no-dataset error when the snapshot holds none).
pub(crate) fn mined_reply(universe: &Universe, discovery: Option<Discovery>) -> Reply {
    match discovery {
        Some(discovery) => {
            let mut text = format!(
                "mined minimal={} cover={}",
                discovery.minimal.len(),
                discovery.cover.len()
            );
            for c in &discovery.cover {
                text.push(' ');
                text.push_str(&format_wire(c, universe));
            }
            Reply::line(text)
        }
        None => Reply::err("no dataset (send `load` first)"),
    }
}

/// Formats an `analyze` outcome as its wire reply: the counts first, then
/// the machine-checkable evidence — each redundant premise with the
/// subfamily implying it, the minimal conflicting known set when the state
/// is infeasible, and example dead density variables.
pub(crate) fn analyze_reply(universe: &Universe, outcome: &AnalyzeOutcome) -> Reply {
    let analysis = &outcome.analysis;
    let mut text = format!(
        "analyze premises={} redundant={} infeasible={} dead={} epoch={} us={}",
        analysis.premises,
        analysis.redundant.len(),
        analysis.conflict.is_some() as u8,
        analysis.dead_vars,
        outcome.epoch,
        outcome.elapsed.as_micros()
    );
    for r in &analysis.redundant {
        text.push_str(&format!(
            " redundant[{}]={}<=[",
            r.index,
            format_wire(&r.premise, universe)
        ));
        for (i, w) in r.witness.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            text.push_str(&format_wire(w, universe));
        }
        text.push(']');
    }
    if let Some(conflict) = &analysis.conflict {
        text.push_str(" conflict=");
        for (i, (set, value)) in conflict.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            text.push_str(&format!(
                "{}={}",
                universe.format_set(*set),
                Interval::format_endpoint(*value)
            ));
        }
    }
    if !analysis.dead_examples.is_empty() {
        text.push_str(" dead_eg=");
        for (i, set) in analysis.dead_examples.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            text.push_str(&universe.format_set(*set));
        }
    }
    Reply::line(text)
}

/// Formats a `derive` outcome as its wire reply.
pub(crate) fn derive_reply(proof: Option<Derivation>) -> Reply {
    match proof {
        Some(proof) => Reply::line(format!(
            "proof size={} depth={}",
            proof.size(),
            proof.depth()
        )),
        None => Reply::line("unprovable"),
    }
}

/// The result of beginning one request: either a finished reply, or a pure
/// query captured with its target session's snapshot for evaluation on any
/// thread (see [`crate::server_state`]).
#[derive(Debug)]
pub enum Step {
    /// The request was executed (mutations, listings, errors).
    Done(Reply),
    /// A read-only query, deferred against the captured snapshot.
    Deferred(DeferredQuery),
}

/// A multi-session `diffcond` server: feed it request lines, print the
/// replies.  IO-free, so tests drive it directly.
///
/// The server holds a [`SessionRegistry`] of numbered slots; the `session`
/// verbs manage them and every other verb targets the current slot.
/// [`Server::handle_line`] answers synchronously; [`Server::begin_line`]
/// additionally exposes the snapshot-deferred form of the read-only verbs,
/// which [`crate::server_state::Pipeline`] uses to evaluate interleaved
/// queries from many sessions concurrently.
#[derive(Debug)]
pub struct Server {
    config: SessionConfig,
    registry: SessionRegistry,
    /// `trace on` state: query replies gain an ` epoch=N` suffix.
    trace: bool,
    /// This server's process-unique connection id, the upper half of every
    /// trace id it mints (so traces stay unique across connections).
    origin: u64,
    /// Count of trace ids minted; the lower half of the next trace id.
    trace_seq: u64,
}

impl Server {
    /// Creates a server; sessions it opens use `config`.
    pub fn new(config: SessionConfig) -> Self {
        Server {
            config,
            registry: SessionRegistry::new(),
            trace: false,
            origin: next_connection_id(),
            trace_seq: 0,
        }
    }

    /// The process-unique id of the connection this server instance serves
    /// (in-process drivers count as connections too).
    pub fn connection_id(&self) -> u64 {
        self.origin
    }

    /// Mints the next request trace id: connection id in the upper 32 bits,
    /// a per-connection sequence number in the lower — unique across the
    /// process, monotone within a connection.
    fn next_trace(&mut self) -> u64 {
        self.trace_seq += 1;
        (self.origin << 32) | self.trace_seq
    }

    /// The current slot's session, if a `universe` request has opened one.
    pub fn session(&self) -> Option<&Session> {
        self.registry.session()
    }

    /// The session registry (slot ids, current slot).
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Handles one raw request line.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        match self.begin_line(line) {
            Step::Done(reply) => reply,
            Step::Deferred(query) => query.run(),
        }
    }

    /// Handles one parsed request.
    pub fn handle(&mut self, request: Request) -> Reply {
        match self.begin(request) {
            Step::Done(reply) => reply,
            Step::Deferred(query) => query.run(),
        }
    }

    /// Begins one raw request line (see [`Server::begin`]).
    pub fn begin_line(&mut self, line: &str) -> Step {
        match parse_request(line) {
            Ok(request) => self.begin(request),
            Err(message) => Step::Done(Reply::err(message)),
        }
    }

    /// Begins one parsed request: mutations, listings, and errors execute
    /// immediately; the read-only query verbs (`implies`, `batch`, `bound`,
    /// `witness`, `derive`, `mine`) are returned deferred, captured against
    /// the current slot's snapshot at this position in the request order.
    pub fn begin(&mut self, request: Request) -> Step {
        match request {
            Request::Implies(text) => self.defer_goal(&text, QueryKind::Implies),
            Request::Witness(text) => self.defer_goal(&text, QueryKind::Witness),
            Request::Derive(text) => self.defer_goal(&text, QueryKind::Derive),
            Request::Explain(text) => self.defer_goal(&text, QueryKind::Explain),
            Request::Bound(text) => self.defer_bound(&text),
            Request::Batch(texts) => self.defer_batch(&texts),
            Request::Mine(budgets) => self.defer_mine(miner_config(budgets)),
            Request::Analyze { apply: false } => self.defer_analyze(),
            other => Step::Done(self.execute(other)),
        }
    }

    /// Defers a single-constraint query against the current snapshot.
    fn defer_goal(&mut self, text: &str, make: fn(DiffConstraint) -> QueryKind) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => match DiffConstraint::parse(text, session.universe()) {
                Ok(goal) => Step::Deferred(
                    DeferredQuery::new(session.snapshot(), make(goal))
                        .traced(self.trace)
                        .with_origin(trace, origin, slot),
                ),
                Err(e) => Step::Done(Reply::err(e.to_string())),
            },
        }
    }

    /// Defers a `bound` query against the current snapshot.
    fn defer_bound(&mut self, text: &str) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => match session.universe().parse_set(text) {
                Ok(set) => Step::Deferred(
                    DeferredQuery::new(session.snapshot(), QueryKind::Bound(set))
                        .traced(self.trace)
                        .with_origin(trace, origin, slot),
                ),
                Err(e) => Step::Done(Reply::err(e.to_string())),
            },
        }
    }

    /// Validates a bitmask against the session's universe: bits at or above
    /// the attribute count name nothing and answer `err` (the binary
    /// framing's analogue of an unknown attribute name).
    fn checked_mask(universe: &Universe, mask: u64) -> Result<AttrSet, String> {
        let n = universe.len();
        if n < setlat::MAX_UNIVERSE && mask >> n != 0 {
            Err(format!(
                "attribute mask 0x{mask:x} has bits outside the {n}-attribute universe"
            ))
        } else {
            Ok(AttrSet::from_bits(mask))
        }
    }

    /// Builds the constraint a fixed-width binary frame denotes, through the
    /// same [`Family::from_sets`] constructor the text parser uses — so a
    /// mask frame and its textual spelling produce identical constraints.
    fn mask_constraint(
        universe: &Universe,
        lhs: u64,
        rhs: impl Iterator<Item = u64>,
    ) -> Result<DiffConstraint, String> {
        let lhs = Server::checked_mask(universe, lhs)?;
        let members: Vec<AttrSet> = rhs
            .map(|mask| Server::checked_mask(universe, mask))
            .collect::<Result<_, _>>()?;
        Ok(DiffConstraint::new(lhs, Family::from_sets(members)))
    }

    /// Begins a binary-framed `implies` over attribute bitmasks (frame tag
    /// `01`): deferred against the current snapshot exactly like the
    /// textual `implies`, with no text parse on the hot path.
    pub fn begin_implies_mask(&mut self, lhs: u64, rhs: impl Iterator<Item = u64>) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => match Server::mask_constraint(session.universe(), lhs, rhs) {
                Ok(goal) => Step::Deferred(
                    DeferredQuery::new(session.snapshot(), QueryKind::Implies(goal))
                        .traced(self.trace)
                        .with_origin(trace, origin, slot),
                ),
                Err(e) => Step::Done(Reply::err(e)),
            },
        }
    }

    /// Begins a binary-framed `bound` over an attribute bitmask (frame tag
    /// `02`), deferred like the textual `bound`.
    pub fn begin_bound_mask(&mut self, set: u64) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => match Server::checked_mask(session.universe(), set) {
                Ok(set) => Step::Deferred(
                    DeferredQuery::new(session.snapshot(), QueryKind::Bound(set))
                        .traced(self.trace)
                        .with_origin(trace, origin, slot),
                ),
                Err(e) => Step::Done(Reply::err(e)),
            },
        }
    }

    /// Executes a binary-framed `assert` over attribute bitmasks (frame tag
    /// `03`), answering exactly what the textual `assert` answers.
    pub fn assert_mask(&mut self, lhs: u64, rhs: impl Iterator<Item = u64>) -> Reply {
        self.with_session(
            |session| match Server::mask_constraint(session.universe(), lhs, rhs) {
                Ok(constraint) => {
                    let (id, added) = session.assert_constraint(&constraint);
                    Reply::line(format!(
                        "ok assert id={} added={} premises={}",
                        id.index(),
                        added as u8,
                        session.premises().len()
                    ))
                }
                Err(e) => Reply::err(e),
            },
        )
    }

    /// Defers a `batch` query against the current snapshot.
    fn defer_batch(&mut self, texts: &[String]) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => {
                let universe = session.universe();
                let mut goals = Vec::with_capacity(texts.len());
                for text in texts {
                    match DiffConstraint::parse(text, universe) {
                        Ok(c) => goals.push(c),
                        Err(e) => return Step::Done(Reply::err(format!("in `{text}`: {e}"))),
                    }
                }
                Step::Deferred(
                    DeferredQuery::new(session.snapshot(), QueryKind::Batch(goals))
                        .traced(self.trace)
                        .with_origin(trace, origin, slot),
                )
            }
        }
    }

    /// Defers a `mine` query against the current snapshot — the heaviest
    /// verb the server accepts, so stalling the serial scan on it would
    /// idle every worker.  The wedge-threshold refusals run here, at scan
    /// time (see [`Server::mine_refusal`]).
    fn defer_mine(&mut self, config: MinerConfig) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => match Server::mine_refusal(session.universe().len(), &config) {
                Some(refusal) => Step::Done(refusal),
                None => Step::Deferred(
                    DeferredQuery::new(session.snapshot(), QueryKind::Mine(config))
                        .traced(self.trace)
                        .with_origin(trace, origin, slot),
                ),
            },
        }
    }

    /// Defers an `analyze` (premise-core static analysis) against the
    /// current snapshot: a pure read, answered on a worker like `explain`.
    fn defer_analyze(&mut self) -> Step {
        let (trace, origin, slot) = (self.next_trace(), self.origin, self.registry.current_id());
        match self.registry.session() {
            None => Step::Done(Reply::err("no session (send `universe` first)")),
            Some(session) => Step::Deferred(
                DeferredQuery::new(session.snapshot(), QueryKind::Analyze)
                    .traced(self.trace)
                    .with_origin(trace, origin, slot),
            ),
        }
    }

    /// The discovery wedge-threshold refusals: mining past the measured
    /// limits would wedge a worker for unbounded time, so such requests are
    /// refused up front.  `None` means the request is within limits.
    fn mine_refusal(universe_len: usize, config: &MinerConfig) -> Option<Reply> {
        if universe_len > MAX_MINE_UNIVERSE {
            return Some(Reply::err(format!(
                "mining is limited to universes of at most {MAX_MINE_UNIVERSE} attributes"
            )));
        }
        if config.max_rhs.saturating_mul(universe_len) > MAX_MINE_RHS_WORK {
            return Some(Reply::err(format!(
                "mine budget too large: max |𝒴| × universe size must be at most \
                 {MAX_MINE_RHS_WORK}, got {} × {universe_len}",
                config.max_rhs
            )));
        }
        None
    }

    /// Executes one non-deferrable request.
    fn execute(&mut self, request: Request) -> Reply {
        match request {
            Request::Implies(_)
            | Request::Witness(_)
            | Request::Derive(_)
            | Request::Explain(_)
            | Request::Bound(_)
            | Request::Batch(_)
            | Request::Mine(_)
            | Request::Analyze { apply: false } => {
                unreachable!("query verbs are handled by begin")
            }
            Request::Empty => Reply::line(""),
            Request::Help => Reply::line(help_reply()),
            Request::Analyze { apply: true } => {
                self.with_session(|session| match session.apply_core() {
                    Ok(applied) => {
                        EngineMetrics::global().analyze_applies.inc();
                        Reply::line(format!(
                            "ok analyze applied premises={} core={} dropped={}",
                            applied.before, applied.after, applied.dropped
                        ))
                    }
                    Err(e) => Reply::err(e),
                })
            }
            Request::Trace(enabled) => {
                self.trace = enabled;
                Reply::line(format!("ok trace={}", enabled as u8))
            }
            Request::SessionNew => {
                let id = self.registry.open();
                Reply::line(format!(
                    "ok session id={id} sessions={}",
                    self.registry.len()
                ))
            }
            Request::SessionUse(id) => {
                if self.registry.switch(id) {
                    Reply::line(format!("ok session id={id}"))
                } else {
                    Reply::err(format!("no session slot with id {id}"))
                }
            }
            Request::SessionClose(id) => {
                let target = id.unwrap_or_else(|| self.registry.current_id());
                if self.registry.close(target) {
                    Reply::line(format!(
                        "ok session closed={target} sessions={} current={}",
                        self.registry.len(),
                        self.registry.current_id()
                    ))
                } else {
                    Reply::err(format!("no session slot with id {target}"))
                }
            }
            Request::SessionList => {
                let mut text = format!(
                    "sessions n={} current={}",
                    self.registry.len(),
                    self.registry.current_id()
                );
                for (id, session) in self.registry.iter() {
                    text.push(' ');
                    match session {
                        Some(s) => text.push_str(&format!(
                            "{id}:u{}p{}q{}",
                            s.universe().len(),
                            s.premises().len(),
                            s.costs().queries.get()
                        )),
                        None => text.push_str(&format!("{id}:-")),
                    }
                }
                Reply::line(text)
            }
            Request::Quit => Reply {
                text: "bye".into(),
                quit: true,
                flight: PendingFlight(None),
            },
            Request::Universe(spec) => {
                let universe = match spec {
                    UniverseSpec::Size(n) => {
                        if n == 0 || n > setlat::MAX_UNIVERSE {
                            return Reply::err(format!(
                                "universe size must be in 1..={}",
                                setlat::MAX_UNIVERSE
                            ));
                        }
                        Universe::of_size(n)
                    }
                    UniverseSpec::Names(names) => {
                        // The constraint text syntax addresses attributes by
                        // single characters ("ACD" = {A, C, D}), so longer
                        // names would be unreachable from the wire.
                        if let Some(bad) = names.iter().find(|n| n.chars().count() != 1) {
                            return Reply::err(format!(
                                "attribute names must be single characters, got `{bad}`"
                            ));
                        }
                        match Universe::from_names(names) {
                            Ok(u) => u,
                            Err(e) => return Reply::err(e.to_string()),
                        }
                    }
                };
                let reply = format!(
                    "ok universe n={} attrs={}",
                    universe.len(),
                    universe.names().join(",")
                );
                self.registry
                    .install(Session::with_config(universe, self.config));
                self.register_current_session();
                Reply::line(reply)
            }
            Request::Reset => match self.registry.session() {
                Some(old) => {
                    let universe = old.universe().clone();
                    self.registry
                        .install(Session::with_config(universe, self.config));
                    self.register_current_session();
                    Reply::line("ok reset")
                }
                None => Reply::err("no session (send `universe` first)"),
            },
            Request::Premises => self.with_session(|session| {
                let universe = session.universe();
                let mut text = format!("premises n={}", session.premises().len());
                for p in session.premises() {
                    text.push(' ');
                    text.push_str(&format_wire(p, universe));
                }
                Reply::line(text)
            }),
            Request::Knowns => self.with_session(|session| {
                let universe = session.universe();
                let mut text = format!("knowns n={}", session.knowns().len());
                for &(set, value) in session.knowns() {
                    text.push(' ');
                    text.push_str(&format!(
                        "{}={}",
                        universe.format_set(set),
                        Interval::format_endpoint(value)
                    ));
                }
                Reply::line(text)
            }),
            Request::Known(set_text, value) => self.with_set(&set_text, |session, set| {
                let added = session.set_known(set, value);
                Reply::line(format!(
                    "ok known set={} value={} added={} knowns={}",
                    session.universe().format_set(set),
                    Interval::format_endpoint(value),
                    added as u8,
                    session.knowns().len()
                ))
            }),
            Request::Forget(set_text) => self.with_set(&set_text, |session, set| {
                if session.forget_known(set) {
                    Reply::line(format!("ok forget knowns={}", session.knowns().len()))
                } else {
                    Reply::err("set has no known value")
                }
            }),
            Request::Load(records) => self.with_session(|session| {
                match session.load_records(records.iter().map(String::as_str)) {
                    Ok(added) => Reply::line(format!(
                        "ok load added={} baskets={}",
                        added,
                        session.dataset().map_or(0, |ds| ds.len())
                    )),
                    Err(e) => Reply::err(e.to_string()),
                }
            }),
            Request::Dataset => self.with_session(|session| match session.dataset() {
                Some(ds) => Reply::line(format!(
                    "dataset baskets={} items={} occurring={}",
                    ds.len(),
                    ds.universe().len(),
                    ds.universe().format_set(ds.occurring_items())
                )),
                None => Reply::err("no dataset (send `load` first)"),
            }),
            Request::Adopt(budgets) => {
                let config = miner_config(budgets);
                self.with_session(|session| {
                    if let Some(refusal) = Server::mine_refusal(session.universe().len(), &config)
                    {
                        return refusal;
                    }
                    match session.adopt_discovered(&config) {
                        Some(outcome) => Reply::line(format!(
                            "ok adopt minimal={} cover={} added={} premises={}",
                            outcome.discovery.minimal.len(),
                            outcome.discovery.cover.len(),
                            outcome.newly_asserted,
                            session.premises().len()
                        )),
                        None => Reply::err("no dataset (send `load` first)"),
                    }
                })
            }
            Request::Stats => self.with_session(|session| {
                let stats = session.stats();
                let mut text = format!(
                    "stats queries={} trivial={}",
                    stats.planner.total_queries(),
                    stats.planner.trivial
                );
                for kind in ALL_PROCEDURES {
                    let p = stats.planner.of(kind);
                    // Only procedures that served traffic; in particular the
                    // semantic cross-check procedure is never planner-routed.
                    if p.decided == 0 && p.cache_hits == 0 {
                        continue;
                    }
                    text.push_str(&format!(
                        " {}={}/{}c/{}us",
                        kind.name(),
                        p.decided,
                        p.cache_hits,
                        p.total_time.as_micros()
                    ));
                }
                let bounds = stats.planner.bounds;
                if bounds.total() > 0 {
                    text.push_str(&format!(
                        " bound={}p/{}r/{}c/{}us",
                        bounds.propagation,
                        bounds.relaxed,
                        bounds.cache_hits,
                        bounds.total_time.as_micros()
                    ));
                }
                text.push_str(&format!(
                    " answer_cache=h{}/m{}/e{}/c{} lattice_cache=h{}/m{}/e{}/c{} prop_cache=h{}/m{}/e{}/c{} premises={} interned={}",
                    stats.answer_cache.hits,
                    stats.answer_cache.misses,
                    stats.answer_cache.evictions,
                    stats.answer_cache.collisions,
                    stats.lattice_cache.hits,
                    stats.lattice_cache.misses,
                    stats.lattice_cache.evictions,
                    stats.lattice_cache.collisions,
                    stats.prop_cache.hits,
                    stats.prop_cache.misses,
                    stats.prop_cache.evictions,
                    stats.prop_cache.collisions,
                    stats.premises,
                    stats.interned,
                ));
                if stats.knowns > 0 {
                    text.push_str(&format!(" knowns={}", stats.knowns));
                }
                if stats.dataset_baskets > 0 {
                    text.push_str(&format!(" dataset_baskets={}", stats.dataset_baskets));
                }
                if stats.interner_compactions > 0 {
                    text.push_str(&format!(" compactions={}", stats.interner_compactions));
                }
                let dropped = EngineMetrics::global().slow_log_dropped.get();
                if dropped > 0 {
                    text.push_str(&format!(" slow_log_dropped={dropped}"));
                }
                text.push_str(&format!(
                    " shards={} epoch={}",
                    stats.cache_shards, stats.epoch
                ));
                text.push_str(&format!(
                    " answer_occ={}/{}",
                    stats.answer_occupancy.min, stats.answer_occupancy.max
                ));
                for (slot, kind) in ALL_PROCEDURES.iter().enumerate() {
                    if stats.planner.of(*kind).decided == 0 {
                        continue;
                    }
                    let (p50, p99) = stats.route_latency_us[slot];
                    text.push_str(&format!(
                        " {name}_p50us={p50} {name}_p99us={p99}",
                        name = kind.name()
                    ));
                }
                let costs = session.costs();
                text.push_str(&format!(
                    " queue_us={} decide_us={}",
                    costs.queue_ns.get() / 1_000,
                    costs.decide_ns.get() / 1_000
                ));
                Reply::line(text)
            }),
            Request::StatsRecent => stats_recent_reply(),
            Request::DebugRecent(n) => {
                let flight = &EngineMetrics::global().flight;
                let records = flight.dump(n.unwrap_or(10));
                let mut text = format!("flight n={} written={}", records.len(), flight.written());
                for (i, (_, words)) in records.iter().enumerate() {
                    text.push_str(if i == 0 { " " } else { " | " });
                    text.push_str(&FlightRecord::decode(words).render());
                }
                Reply::line(text)
            }
            Request::DebugTrace(id) => {
                let flight = &EngineMetrics::global().flight;
                let found = flight
                    .dump(flight.capacity())
                    .into_iter()
                    .map(|(_, words)| FlightRecord::decode(&words))
                    .find(|record| record.trace == id);
                match found {
                    Some(record) => Reply::line(format!("flight n=1 {}", record.render())),
                    None => Reply::err(format!("no flight record for trace {id}")),
                }
            }
            Request::DebugProfile(action) => match action {
                ProfileAction::Start => {
                    let hz = profile::sampler_start(0);
                    Reply::line(format!("ok profile running=1 hz={hz}"))
                }
                ProfileAction::Stop => {
                    profile::sampler_stop();
                    Reply::line(format!(
                        "ok profile running=0 samples={}",
                        profile::samples_total()
                    ))
                }
                ProfileAction::Dump => {
                    let stacks = profile::top_stacks(usize::MAX);
                    let mut text = format!(
                        "profile samples={} stacks={}",
                        profile::samples_total(),
                        stacks.len()
                    );
                    for (i, (stack, count)) in stacks.iter().enumerate() {
                        text.push_str(if i == 0 { " " } else { " | " });
                        text.push_str(&format!("{stack} {count}"));
                    }
                    Reply::line(text)
                }
            },
            Request::Assert(text) => self.with_constraint(&text, |session, constraint| {
                let (id, added) = session.assert_constraint(&constraint);
                Reply::line(format!(
                    "ok assert id={} added={} premises={}",
                    id.index(),
                    added as u8,
                    session.premises().len()
                ))
            }),
            Request::Retract(text) => self.with_constraint(&text, |session, constraint| {
                if session.retract_constraint(&constraint) {
                    Reply::line(format!("ok retract premises={}", session.premises().len()))
                } else {
                    Reply::err("constraint is not an asserted premise")
                }
            }),
        }
    }

    /// Registers the just-installed current session's cost counters with the
    /// global metrics registry, keyed by (connection, slot), so `stats`,
    /// `session list`, and the Prometheus endpoint can attribute cost to it.
    fn register_current_session(&self) {
        if let Some(session) = self.registry.session() {
            EngineMetrics::global().register_session(
                self.origin,
                self.registry.current_id(),
                session.costs(),
            );
        }
    }

    fn with_session(&mut self, f: impl FnOnce(&mut Session) -> Reply) -> Reply {
        match self.registry.session_mut() {
            Some(session) => f(session),
            None => Reply::err("no session (send `universe` first)"),
        }
    }

    fn with_constraint(
        &mut self,
        text: &str,
        f: impl FnOnce(&mut Session, DiffConstraint) -> Reply,
    ) -> Reply {
        self.with_session(
            |session| match DiffConstraint::parse(text, session.universe()) {
                Ok(constraint) => f(session, constraint),
                Err(e) => Reply::err(e.to_string()),
            },
        )
    }

    fn with_set(&mut self, text: &str, f: impl FnOnce(&mut Session, AttrSet) -> Reply) -> Reply {
        self.with_session(|session| match session.universe().parse_set(text) {
            Ok(set) => f(session, set),
            Err(e) => Reply::err(e.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(SessionConfig::default())
    }

    #[test]
    fn full_conversation() {
        let mut s = server();
        assert_eq!(
            s.handle_line("universe 4").text,
            "ok universe n=4 attrs=A,B,C,D"
        );
        assert_eq!(
            s.handle_line("assert A -> {B}").text,
            "ok assert id=0 added=1 premises=1"
        );
        assert_eq!(
            s.handle_line("assert B -> {C}").text,
            "ok assert id=1 added=1 premises=2"
        );
        let reply = s.handle_line("implies A -> {C}");
        assert!(reply.text.starts_with("yes route="), "got: {}", reply.text);
        let reply = s.handle_line("implies C -> {A}");
        assert!(reply.text.starts_with("no route="), "got: {}", reply.text);
        // Second ask is served from the cache.
        let reply = s.handle_line("implies A -> {C}");
        assert!(reply.text.contains("cached=1"), "got: {}", reply.text);
        assert_eq!(s.handle_line("witness A -> {C}").text, "witness none");
        assert!(s
            .handle_line("witness C -> {A}")
            .text
            .starts_with("witness set="));
        assert!(s
            .handle_line("derive A -> {C}")
            .text
            .starts_with("proof size="));
        assert_eq!(s.handle_line("derive C -> {A}").text, "unprovable");
        assert_eq!(
            s.handle_line("batch A -> {C}; C -> {A}; AB -> {B}").text,
            "results n=3 y n y"
        );
        assert_eq!(s.handle_line("premises").text, "premises n=2 A->{B} B->{C}");
        let stats = s.handle_line("stats").text;
        assert!(stats.starts_with("stats queries="), "got: {stats}");
        assert!(stats.contains("premises=2"), "got: {stats}");
        assert_eq!(
            s.handle_line("retract B -> {C}").text,
            "ok retract premises=1"
        );
        let reply = s.handle_line("implies A -> {C}");
        assert!(reply.text.starts_with("no"), "got: {}", reply.text);
        assert_eq!(s.handle_line("reset").text, "ok reset");
        assert_eq!(s.handle_line("premises").text, "premises n=0");
        let bye = s.handle_line("quit");
        assert_eq!(bye.text, "bye");
        assert!(bye.quit);
    }

    #[test]
    fn named_universes() {
        let mut s = server();
        assert_eq!(
            s.handle_line("universe P Q R").text,
            "ok universe n=3 attrs=P,Q,R"
        );
        assert_eq!(
            s.handle_line("assert P -> {Q}").text,
            "ok assert id=0 added=1 premises=1"
        );
        assert!(s.handle_line("implies P -> {Q}").text.starts_with("yes"));
        // Multi-character names are unreachable from the constraint syntax,
        // so the server rejects them up front.
        assert!(s
            .handle_line("universe Lo Hi Vol")
            .text
            .starts_with("err attribute names"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = server();
        assert!(s
            .handle_line("implies A -> {B}")
            .text
            .starts_with("err no session"));
        s.handle_line("universe 3");
        assert!(s.handle_line("implies A -> {Z}").text.starts_with("err"));
        assert!(s
            .handle_line("frobnicate")
            .text
            .starts_with("err unknown command"));
        assert!(s.handle_line("assert").text.starts_with("err"));
        assert!(s.handle_line("universe 0").text.starts_with("err"));
        assert!(s.handle_line("batch ;;").text.starts_with("err"));
        assert!(s.handle_line("retract A -> {B}").text.starts_with("err"));
        // The session survives all of the above.
        assert!(s.handle_line("implies AB -> {B}").text.starts_with("yes"));
    }

    #[test]
    fn trailing_garbage_is_rejected_with_token_and_column() {
        let mut s = server();
        s.handle_line("universe 3");
        for (line, token, col) in [
            ("quit now", "now", 6),
            ("exit 0", "0", 6),
            ("stats --verbose", "--verbose", 7),
            ("premises 3", "3", 10),
            ("help me", "me", 6),
            ("reset all", "all", 7),
            ("knowns x", "x", 8),
            ("dataset full", "full", 9),
        ] {
            let reply = s.handle_line(line).text;
            assert!(reply.starts_with("err "), "`{line}` got: {reply}");
            assert!(
                reply.contains(&format!("`{token}` at column {col}")),
                "`{line}` got: {reply}"
            );
        }
        // The unknown-command error names the verb's column too.
        let reply = s.handle_line("frobnicate 7").text;
        assert!(reply.contains("`frobnicate` at column 1"), "got: {reply}");
        // Columns count from the line as received: leading whitespace (and
        // a two-char glyph) shift them exactly as an editor would show.
        let reply = s.handle_line("  quit now").text;
        assert!(reply.contains("`now` at column 8"), "got: {reply}");
        let reply = s.handle_line("  frobnicate").text;
        assert!(reply.contains("`frobnicate` at column 3"), "got: {reply}");
        // The session survives the whole sweep, and `quit` alone still quits.
        assert!(s.handle_line("implies AB -> {B}").text.starts_with("yes"));
        assert!(s.handle_line("quit").quit);
    }

    #[test]
    fn framing_helpers_decode_strip_and_locate() {
        assert_eq!(
            decode_request(b"implies A -> {B}").unwrap(),
            "implies A -> {B}"
        );
        // One trailing CR is stripped (CRLF clients); interior CRs are not.
        assert_eq!(decode_request(b"stats\r").unwrap(), "stats");
        assert_eq!(decode_request(b"a\rb").unwrap(), "a\rb");
        let err = decode_request(&[b'o', b'k', 0xff, b'x']).unwrap_err();
        assert!(err.contains("0xff"), "got: {err}");
        assert!(err.contains("position 3"), "got: {err}");
        assert_eq!(
            oversized_request(70000, MAX_REQUEST_BYTES),
            "request line exceeds 65536 bytes (got 70000)"
        );
        assert!(is_silent(""));
        assert!(is_silent("   "));
        assert!(is_silent("# comment"));
        assert!(is_silent("  # indented comment"));
        assert!(!is_silent("stats"));
    }

    #[test]
    fn known_values_reject_nan_and_accept_wire_numbers() {
        let mut s = server();
        s.handle_line("universe 3");
        assert!(s.handle_line("known A = nan").text.starts_with("err known"));
        assert!(s.handle_line("known A = inf").text.starts_with("err known"));
        // A value printed by the wire formatter feeds straight back in.
        assert_eq!(
            s.handle_line("known A = 2.5").text,
            "ok known set=A value=2.5 added=1 knowns=1"
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut s = server();
        assert_eq!(s.handle_line("").text, "");
        assert_eq!(s.handle_line("# a comment").text, "");
        assert_eq!(s.handle_line("   ").text, "");
    }

    #[test]
    fn session_slots_are_independent_and_listable() {
        let mut s = server();
        // The default slot (id 0) exists but has no session yet.
        assert_eq!(
            s.handle_line("session list").text,
            "sessions n=1 current=0 0:-"
        );
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        // A fresh slot is empty and current; the old one keeps its state.
        assert_eq!(
            s.handle_line("session new").text,
            "ok session id=1 sessions=2"
        );
        assert!(s
            .handle_line("implies A -> {B}")
            .text
            .starts_with("err no session"));
        s.handle_line("universe 3");
        s.handle_line("assert B -> {C}");
        assert_eq!(
            s.handle_line("session list").text,
            "sessions n=2 current=1 0:u4p1q0 1:u3p1q0"
        );
        // Premises do not leak between slots.
        assert!(s.handle_line("implies A -> {B}").text.starts_with("no"));
        assert!(s.handle_line("implies B -> {C}").text.starts_with("yes"));
        assert_eq!(s.handle_line("session use 0").text, "ok session id=0");
        assert!(s.handle_line("implies A -> {B}").text.starts_with("yes"));
        assert!(s.handle_line("implies B -> {C}").text.starts_with("no"));
        // The slot descriptors attribute the served queries per slot.
        assert_eq!(
            s.handle_line("session list").text,
            "sessions n=2 current=0 0:u4p1q2 1:u3p1q2"
        );
        // Closing the current slot falls back to the lowest remaining id.
        assert_eq!(
            s.handle_line("session close").text,
            "ok session closed=0 sessions=1 current=1"
        );
        assert!(s.handle_line("implies B -> {C}").text.starts_with("yes"));
        // Closing the last slot opens a fresh empty one; ids never recycle.
        assert_eq!(
            s.handle_line("session close 1").text,
            "ok session closed=1 sessions=1 current=2"
        );
        assert_eq!(
            s.handle_line("session list").text,
            "sessions n=1 current=2 2:-"
        );
        // Errors: unknown ids and malformed forms.
        assert!(s
            .handle_line("session use 0")
            .text
            .starts_with("err no session slot"));
        assert!(s
            .handle_line("session close 99")
            .text
            .starts_with("err no session slot"));
        assert!(s
            .handle_line("session")
            .text
            .starts_with("err session expects"));
        assert!(s
            .handle_line("session use x")
            .text
            .starts_with("err session expects"));
        assert!(s
            .handle_line("session frob")
            .text
            .starts_with("err session expects"));
        // The fresh slot still serves once opened.
        s.handle_line("universe 2");
        assert!(s.handle_line("implies AB -> {A}").text.starts_with("yes"));
    }

    #[test]
    fn begin_defers_queries_and_executes_mutations() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        // Mutations finish inline.
        assert!(matches!(s.begin_line("assert B -> {C}"), Step::Done(_)));
        // Queries come back deferred, bound to the snapshot at this point.
        let deferred = match s.begin_line("implies A -> {C}") {
            Step::Deferred(d) => d,
            Step::Done(r) => panic!("implies should defer, got {:?}", r.text),
        };
        // A later retraction must not leak into the captured snapshot.
        s.handle_line("retract B -> {C}");
        assert!(deferred.run().text.starts_with("yes"));
        // Re-issuing against the mutated server answers no.
        assert!(s.handle_line("implies A -> {C}").text.starts_with("no"));
        // Parse failures and missing sessions surface at begin time.
        assert!(matches!(s.begin_line("implies A -> {Z}"), Step::Done(_)));
        let mut fresh = server();
        assert!(matches!(
            fresh.begin_line("implies A -> {B}"),
            Step::Done(_)
        ));
    }

    #[test]
    fn wire_format_round_trips() {
        let u = Universe::of_size(4);
        for text in ["A -> {B, CD}", " -> {}", "AB -> {C}", "A -> {}"] {
            let c = DiffConstraint::parse(text, &u).unwrap();
            let wire = format_wire(&c, &u);
            let back = DiffConstraint::parse(&wire, &u).unwrap();
            assert_eq!(c, back, "round-trip failed for {wire}");
        }
    }

    #[test]
    fn bound_conversation() {
        let mut s = server();
        s.handle_line("universe 4");
        assert_eq!(
            s.handle_line("assert A -> {B}").text,
            "ok assert id=0 added=1 premises=1"
        );
        assert_eq!(
            s.handle_line("known A = 40").text,
            "ok known set=A value=40 added=1 knowns=1"
        );
        // The constraint kills every density term separating AB from A, so
        // the single known value pins the unobserved superset exactly.
        let reply = s.handle_line("bound AB").text;
        assert!(
            reply.starts_with("bound lo=40 hi=40 exact=1 route=propagation cached=0"),
            "got: {reply}"
        );
        // Second ask is served from the bound cache.
        let reply = s.handle_line("bound AB").text;
        assert!(reply.contains("route=cached cached=1"), "got: {reply}");
        // Without the premise the same state only yields the sandwich.
        s.handle_line("retract A -> {B}");
        let reply = s.handle_line("bound AB").text;
        assert!(
            reply.starts_with("bound lo=0 hi=40 exact=0 route=propagation"),
            "got: {reply}"
        );
        // An unknown, unconstrained set is only floored by nonnegativity.
        let reply = s.handle_line("bound CD").text;
        assert!(
            reply.starts_with("bound lo=0 hi=inf exact=0"),
            "got: {reply}"
        );
        assert_eq!(s.handle_line("knowns").text, "knowns n=1 A=40");
        // The `=` in `known` is optional; replacement reports added=0.
        assert_eq!(
            s.handle_line("known A 41.5").text,
            "ok known set=A value=41.5 added=0 knowns=1"
        );
        assert_eq!(s.handle_line("forget A").text, "ok forget knowns=0");
        assert!(s.handle_line("forget A").text.starts_with("err set has no"));
        let stats = s.handle_line("stats").text;
        assert!(stats.contains(" bound="), "got: {stats}");
        // The empty set is addressable as {}.
        assert_eq!(
            s.handle_line("known {} = 100").text,
            "ok known set=∅ value=100 added=1 knowns=1"
        );
        let reply = s.handle_line("bound A").text;
        assert!(reply.starts_with("bound lo=0 hi=100"), "got: {reply}");
    }

    #[test]
    fn bound_infeasibility_is_an_error_not_fatal() {
        let mut s = server();
        s.handle_line("universe 3");
        s.handle_line("known A = 3");
        s.handle_line("known AB = 9");
        assert!(s
            .handle_line("bound ABC")
            .text
            .starts_with("err infeasible:"));
        // The session survives; repairing the knowns answers the query.
        s.handle_line("known AB = 2");
        assert!(s
            .handle_line("bound ABC")
            .text
            .starts_with("bound lo=0 hi=2"));
    }

    #[test]
    fn known_parse_errors() {
        let mut s = server();
        s.handle_line("universe 3");
        assert!(s
            .handle_line("known A")
            .text
            .starts_with("err known expects"));
        assert!(s
            .handle_line("known A = x")
            .text
            .starts_with("err known expects a numeric"));
        assert!(s.handle_line("known A = inf").text.starts_with("err known"));
        assert!(s.handle_line("known Z = 3").text.starts_with("err"));
        assert!(s.handle_line("bound").text.starts_with("err"));
        assert!(s.handle_line("bound Z").text.starts_with("err"));
        // No session yet → the usual error.
        let mut fresh = server();
        assert!(fresh
            .handle_line("bound A")
            .text
            .starts_with("err no session"));
    }

    #[test]
    fn reset_drops_knowns() {
        let mut s = server();
        s.handle_line("universe 3");
        s.handle_line("known A = 4");
        assert_eq!(s.handle_line("reset").text, "ok reset");
        assert_eq!(s.handle_line("knowns").text, "knowns n=0");
    }

    #[test]
    fn discovery_conversation() {
        let mut s = server();
        // Discovery verbs require a session and then a dataset.
        assert!(s.handle_line("load AB").text.starts_with("err no session"));
        s.handle_line("universe 3");
        assert!(s.handle_line("mine").text.starts_with("err no dataset"));
        assert!(s.handle_line("adopt").text.starts_with("err no dataset"));
        assert!(s.handle_line("dataset").text.starts_with("err no dataset"));
        // Ingest a dataset satisfying A → {B}.
        assert_eq!(
            s.handle_line("load AB; ABC; B; C; BC").text,
            "ok load added=5 baskets=5"
        );
        assert_eq!(
            s.handle_line("dataset").text,
            "dataset baskets=5 items=3 occurring=ABC"
        );
        // Loads accumulate.
        assert_eq!(s.handle_line("load {}").text, "ok load added=1 baskets=6");
        // Parse failures are located and the session survives.
        let reply = s.handle_line("load AB; AZ").text;
        assert!(reply.starts_with("err line 2"), "got: {reply}");
        assert!(reply.contains("`Z`"), "got: {reply}");
        // Empty segments are skipped but still counted, so the reported
        // position matches the client's own record numbering.
        let reply = s.handle_line("load AB; ; AZ").text;
        assert!(reply.starts_with("err line 3"), "got: {reply}");
        // Mining reports the discovery and lists the cover in wire form.
        let mined = s.handle_line("mine 2 2").text;
        assert!(mined.starts_with("mined minimal="), "got: {mined}");
        assert!(mined.contains("A->{B}"), "got: {mined}");
        // Nothing asserted yet; adopt asserts the cover.
        assert_eq!(s.handle_line("premises").text, "premises n=0");
        let adopted = s.handle_line("adopt").text;
        assert!(adopted.starts_with("ok adopt minimal="), "got: {adopted}");
        assert!(adopted.contains("added="), "got: {adopted}");
        // The adopted premises answer implication queries…
        assert!(s.handle_line("implies A -> {B}").text.starts_with("yes"));
        // …and pin bound queries that were loose before adoption.
        s.handle_line("known A = 2");
        let reply = s.handle_line("bound AB").text;
        assert!(reply.starts_with("bound lo=2 hi=2 exact=1"), "got: {reply}");
        // Re-adopting is idempotent.
        let again = s.handle_line("adopt").text;
        assert!(again.contains("added=0"), "got: {again}");
        // Stats surface the dataset.
        let stats = s.handle_line("stats").text;
        assert!(stats.contains("dataset_baskets=8"), "got: {stats}");
        // Reset drops the dataset with the rest of the state.
        s.handle_line("reset");
        assert!(s.handle_line("dataset").text.starts_with("err no dataset"));
    }

    #[test]
    fn discovery_request_errors() {
        let mut s = server();
        s.handle_line("universe 3");
        assert!(s.handle_line("load").text.starts_with("err load expects"));
        assert!(s
            .handle_line("load ;;")
            .text
            .starts_with("err load expects"));
        assert!(s.handle_line("mine 2").text.starts_with("err mine expects"));
        assert!(s
            .handle_line("mine a b")
            .text
            .starts_with("err mine expects"));
        assert!(s
            .handle_line("adopt 1 2 3")
            .text
            .starts_with("err adopt expects"));
        // Oversized universes refuse to mine but keep serving other verbs.
        s.handle_line("universe 30");
        s.handle_line("load {}");
        assert!(s
            .handle_line("mine")
            .text
            .starts_with("err mining is limited"));
        assert!(s
            .handle_line("adopt 1 1")
            .text
            .starts_with("err mining is limited"));
        assert!(s
            .handle_line("dataset")
            .text
            .starts_with("dataset baskets=1"));
        // Family budgets past the measured wedge threshold are refused even
        // on legal universes; tighter budgets on the same session work.
        s.handle_line("universe 14");
        s.handle_line("load AB; BC");
        assert!(s
            .handle_line("mine 2 3")
            .text
            .starts_with("err mine budget too large"));
        assert!(s
            .handle_line("adopt 2 4")
            .text
            .starts_with("err mine budget too large"));
        assert!(s.handle_line("mine 3 2").text.starts_with("mined "));
    }

    #[test]
    fn explain_reports_route_epoch_and_stage_latency() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        s.handle_line("assert B -> {C}");
        let reply = s.handle_line("explain A -> {C}").text;
        assert!(
            reply.starts_with("explain verdict=yes route=fd cached=0 epoch="),
            "got: {reply}"
        );
        for field in ["probe_us=", "plan_us=", "decide_us=", "total_us="] {
            assert!(reply.contains(field), "missing {field}: {reply}");
        }
        // The second ask is a cache hit: no planning, no decision.
        let reply = s.handle_line("explain A -> {C}").text;
        assert!(reply.contains("cached=1"), "got: {reply}");
        assert!(reply.contains("plan_us=0"), "got: {reply}");
        assert!(reply.contains("decide_us=0"), "got: {reply}");
        // An explained query counts in the planner exactly like `implies`.
        let stats = s.handle_line("stats").text;
        assert!(stats.contains("fd=1/1c"), "got: {stats}");
        // Parse errors surface like any other verb's.
        assert!(s
            .handle_line("explain")
            .text
            .starts_with("err explain expects"));
        assert!(s.handle_line("explain A -> {Z}").text.starts_with("err"));
    }

    #[test]
    fn trace_toggles_the_epoch_suffix() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        assert_eq!(s.handle_line("trace on").text, "ok trace=1");
        let traced = s.handle_line("implies A -> {B}").text;
        assert!(traced.contains(" epoch="), "got: {traced}");
        let epoch_field = traced.split_whitespace().last().unwrap().to_string();
        assert!(epoch_field.starts_with("epoch="), "got: {traced}");
        // Every deferred query verb gains the suffix, not just `implies`.
        assert!(s
            .handle_line("batch A -> {B}; B -> {A}")
            .text
            .contains(" epoch="));
        assert!(s.handle_line("witness A -> {B}").text.contains(" epoch="));
        // A mutation bumps the answering epoch the traced reply names.
        s.handle_line("assert B -> {C}");
        let bumped = s.handle_line("implies A -> {B}").text;
        assert_ne!(
            bumped.split_whitespace().last().unwrap(),
            epoch_field,
            "got: {bumped}"
        );
        assert_eq!(s.handle_line("trace off").text, "ok trace=0");
        assert!(!s.handle_line("implies A -> {B}").text.contains("epoch="));
        // Malformed forms are located and non-fatal.
        assert!(s.handle_line("trace").text.starts_with("err trace expects"));
        assert!(s
            .handle_line("trace maybe")
            .text
            .contains("`maybe` at column 7"));
        assert!(s
            .handle_line("trace on now")
            .text
            .contains("`now` at column 10"));
    }

    #[test]
    fn stats_reports_occupancy_and_route_percentiles() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        s.handle_line("implies A -> {B}");
        let stats = s.handle_line("stats").text;
        assert!(stats.contains(" answer_occ=0/1"), "got: {stats}");
        assert!(stats.contains(" fd_p50us="), "got: {stats}");
        assert!(stats.contains(" fd_p99us="), "got: {stats}");
        // Collision counts ride the cache fields (fourth `/c` component).
        assert!(stats.contains("answer_cache=h0/m1/e0/c0"), "got: {stats}");
    }

    #[test]
    fn duplicate_batch_goals_use_one_decision() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        assert_eq!(
            s.handle_line("batch A -> {B}; A -> {B}; A -> {B}").text,
            "results n=3 y y y"
        );
        let stats = s.handle_line("stats").text;
        // One decided query; the in-batch repeats follow it as cache hits.
        assert!(stats.contains("fd=1/2c"), "got: {stats}");
        assert!(stats.contains("answer_cache=h0/m1/e0"), "got: {stats}");
    }

    #[test]
    fn analyze_reports_redundancy_and_infeasibility() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        s.handle_line("assert B -> {C}");
        s.handle_line("assert A -> {C}"); // implied by the two above
        let reply = s.handle_line("analyze").text;
        assert!(
            reply.starts_with("analyze premises=3 redundant=1 infeasible=0"),
            "got: {reply}"
        );
        assert!(reply.contains(" epoch="), "got: {reply}");
        assert!(reply.contains(" us="), "got: {reply}");
        assert!(reply.contains("redundant[2]=A->{C}<=["), "got: {reply}");
        // An infeasible known pair: f is monotone decreasing along ⊆, so
        // f(AB) cannot exceed f(A).
        s.handle_line("known A = 1");
        s.handle_line("known AB = 10");
        let reply = s.handle_line("analyze").text;
        assert!(reply.contains("infeasible=1"), "got: {reply}");
        assert!(reply.contains(" conflict="), "got: {reply}");
        // The engine agrees at query time.
        assert!(
            s.handle_line("bound AB").text.starts_with("err"),
            "engine disagrees"
        );
    }

    #[test]
    fn analyze_apply_installs_the_minimal_core() {
        let mut s = server();
        s.handle_line("universe 4");
        s.handle_line("assert A -> {B}");
        s.handle_line("assert B -> {C}");
        s.handle_line("assert A -> {C}");
        assert_eq!(
            s.handle_line("analyze apply").text,
            "ok analyze applied premises=3 core=2 dropped=1"
        );
        assert_eq!(s.handle_line("premises").text, "premises n=2 A->{B} B->{C}");
        // Answers survive the reduction.
        assert!(s.handle_line("implies A -> {C}").text.starts_with("yes"));
        // Applying again is a no-op.
        assert_eq!(
            s.handle_line("analyze apply").text,
            "ok analyze applied premises=2 core=2 dropped=0"
        );
        // Malformed forms are located and non-fatal.
        assert!(s
            .handle_line("analyze now")
            .text
            .contains("`now` at column 9"));
        assert!(s
            .handle_line("analyze apply now")
            .text
            .contains("`now` at column 15"));
    }

    #[test]
    fn every_verb_is_in_help_and_every_example_parses() {
        // The canonical table drives the help reply, so `help` can never
        // miss a verb; each documented example must parse as its own verb.
        let help = help_reply();
        for verb in VERBS {
            assert!(
                help.split_whitespace().any(|w| w == verb.name),
                "help reply is missing `{}`: {help}",
                verb.name
            );
            let parsed = parse_request(verb.example)
                .unwrap_or_else(|e| panic!("example `{}` fails to parse: {e}", verb.example));
            assert_eq!(
                verb.example.split_whitespace().next().unwrap(),
                verb.name,
                "example for `{}` starts with the wrong verb",
                verb.name
            );
            // The example round-trips through the canonical formatter.
            let _ = format_request(&parsed);
        }
        let mut s = server();
        assert_eq!(s.handle_line("help").text, help);
    }
}
