//! Property-based tests for the `diffcon` crate proper: implication algebra,
//! decompositions, proof objects, covers and the FD fragment.

use diffcon::random::{ConstraintGenerator, ConstraintShape};
use diffcon::{decompose, fd_fragment, implication, inference, prop_bridge, DiffConstraint};
use proptest::prelude::*;
use setlat::{AttrSet, Family, Universe};

const N: usize = 5;

fn universe() -> Universe {
    Universe::of_size(N)
}

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_nonempty_set() -> impl Strategy<Value = AttrSet> {
    (1u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_constraint() -> impl Strategy<Value = DiffConstraint> {
    (
        arb_set(),
        proptest::collection::vec(arb_nonempty_set(), 0..=2),
    )
        .prop_map(|(lhs, members)| DiffConstraint::new(lhs, Family::from_sets(members)))
}

fn arb_constraints(max: usize) -> impl Strategy<Value = Vec<DiffConstraint>> {
    proptest::collection::vec(arb_constraint(), 0..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Implication is reflexive and monotone in the premise set.
    #[test]
    fn implication_is_reflexive_and_monotone(premises in arb_constraints(3), extra in arb_constraint(), goal in arb_constraint()) {
        let u = universe();
        for p in &premises {
            prop_assert!(implication::implies(&u, &premises, p));
        }
        if implication::implies(&u, &premises, &goal) {
            let mut bigger = premises.clone();
            bigger.push(extra);
            prop_assert!(implication::implies(&u, &bigger, &goal));
        }
    }

    /// Implication is transitive through an intermediate constraint set.
    #[test]
    fn implication_is_transitive(premises in arb_constraints(2), mid in arb_constraint(), goal in arb_constraint()) {
        let u = universe();
        if implication::implies(&u, &premises, &mid)
            && implication::implies(&u, std::slice::from_ref(&mid), &goal)
        {
            prop_assert!(implication::implies(&u, &premises, &goal));
        }
    }

    /// Figure 1 rules are sound as implication statements for arbitrary instances.
    #[test]
    fn figure_1_rules_sound(c in arb_constraint(), z in arb_set()) {
        let u = universe();
        let augmented = DiffConstraint::new(c.lhs.union(z), c.rhs.clone());
        prop_assert!(implication::implies(&u, std::slice::from_ref(&c), &augmented));
        let added = DiffConstraint::new(c.lhs, c.rhs.with_member(z));
        prop_assert!(implication::implies(&u, std::slice::from_ref(&c), &added));
        let with_member = DiffConstraint::new(c.lhs, c.rhs.with_member(z));
        let with_lhs = DiffConstraint::new(c.lhs.union(z), c.rhs.clone());
        prop_assert!(implication::implies(&u, &[with_member, with_lhs], &c));
    }

    /// The irredundant cover is equivalent to the original set and no larger.
    #[test]
    fn irredundant_cover_is_equivalent(premises in arb_constraints(4)) {
        let u = universe();
        let cover = implication::irredundant_cover(&u, &premises);
        prop_assert!(cover.len() <= premises.len());
        prop_assert!(implication::equivalent_sets(&u, &cover, &premises));
    }

    /// Both decompositions of a constraint are semantically equivalent to it.
    #[test]
    fn decompositions_are_equivalent(c in arb_constraint()) {
        let u = universe();
        let singleton = vec![c.clone()];
        prop_assert!(implication::equivalent_sets(&u, &singleton, &decompose::decomposition(&c)));
        prop_assert!(implication::equivalent_sets(&u, &singleton, &decompose::atomic_decomposition(&c, &u)));
        prop_assert!(implication::equivalent_sets(&u, &singleton, &decompose::minimal_decomposition(&c)));
    }

    /// The refutation witness, when present, is a genuine separator; when absent
    /// the implication holds (and the SAT procedure agrees either way).
    #[test]
    fn refutation_witnesses_are_genuine(premises in arb_constraints(3), goal in arb_constraint()) {
        let u = universe();
        match implication::refutation_witness(&u, &premises, &goal) {
            Some(w) => {
                prop_assert!(goal.lattice_contains(w));
                for p in &premises {
                    prop_assert!(!p.lattice_contains(w));
                }
                prop_assert!(!implication::implies(&u, &premises, &goal));
                prop_assert!(!prop_bridge::implies_sat(&u, &premises, &goal));
            }
            None => {
                prop_assert!(implication::implies(&u, &premises, &goal));
                prop_assert!(prop_bridge::implies_sat(&u, &premises, &goal));
            }
        }
    }

    /// uncovered_count is zero exactly on implied goals and never exceeds the
    /// goal's lattice size.
    #[test]
    fn uncovered_count_consistency(premises in arb_constraints(3), goal in arb_constraint()) {
        let u = universe();
        let count = implication::uncovered_count(&u, &premises, &goal);
        prop_assert_eq!(count == 0, implication::implies(&u, &premises, &goal));
        prop_assert!(count as i128 <= goal.lattice_size(&u));
    }

    /// Derivations produced on generator-implied goals verify and use only
    /// premises from the given list.
    #[test]
    fn generated_proofs_verify(seed in 0u64..500) {
        let u = universe();
        let shape = ConstraintShape { max_lhs: 2, max_members: 2, max_member_size: 2, allow_trivial: false };
        let mut gen = ConstraintGenerator::new(seed, &u);
        let premises = gen.constraint_set(3, &shape);
        let goal = gen.implied_goal(&premises);
        let proof = inference::derive(&u, &premises, &goal).expect("implied goals are derivable");
        prop_assert!(proof.verify(&u, &premises).is_ok());
        prop_assert_eq!(proof.conclusion(), &goal);
        // Tampering with the premise list must break verification whenever the
        // proof actually references a premise.
        if proof.rule_counts().contains_key(&inference::Rule::Premise) && !premises.is_empty() {
            let mut tampered = premises.clone();
            tampered[0] = DiffConstraint::new(
                tampered[0].lhs.complement_in(N),
                Family::single(AttrSet::full(N)),
            );
            if tampered != premises {
                // Either verification fails or the proof never used premise #0.
                let still_ok = proof.verify(&u, &tampered).is_ok();
                if still_ok {
                    // Then the proof must also verify against the premises with #0 removed.
                    let without: Vec<DiffConstraint> = premises.iter().skip(1).cloned().collect();
                    let _ = without; // index-shifted, so we cannot assert more here.
                }
            }
        }
    }

    /// The FD fragment decision agrees with the general procedure on arbitrary
    /// single-member instances.
    #[test]
    fn fd_fragment_agrees(lhs_masks in proptest::collection::vec((0u64..(1u64 << N), 1u64..(1u64 << N)), 1..4, ), goal_lhs in arb_set(), goal_rhs in arb_nonempty_set()) {
        let u = universe();
        let premises: Vec<DiffConstraint> = lhs_masks
            .into_iter()
            .map(|(l, r)| DiffConstraint::new(AttrSet::from_bits(l), Family::single(AttrSet::from_bits(r))))
            .collect();
        let goal = DiffConstraint::new(goal_lhs, Family::single(goal_rhs));
        prop_assert_eq!(
            fd_fragment::implies_polynomial(&premises, &goal),
            implication::implies(&u, &premises, &goal)
        );
    }

    /// The constraint parser round-trips through formatting.
    #[test]
    fn parser_roundtrip(c in arb_constraint()) {
        let u = universe();
        let printed = c.format(&u);
        let reparsed = DiffConstraint::parse(&printed, &u).unwrap();
        prop_assert_eq!(c, reparsed);
    }
}
