//! # diffcon-discover — mine differential constraints from basket data
//!
//! Section 6 of *Differential Constraints* (Sayrafi & Van Gucht, PODS 2005)
//! proves that a basket database satisfies the disjunctive constraint
//! `X ⇒disj 𝒴` iff its support function satisfies the differential
//! constraint `X → 𝒴` (Proposition 6.3), and that the two implication
//! problems coincide (Proposition 6.4).  Constraints that *hold in data* are
//! therefore first-class premises for everything the implication and bound
//! engines do: assert them and `bound` queries tighten, NDI mining scans
//! fewer candidates, implication queries answer more goals.
//!
//! This crate is the data plane that turns that observation into a workflow:
//!
//! * [`dataset::Dataset`] — streaming ingestion of basket records into a
//!   horizontal [`fis::BasketDb`] mirrored by a columnar
//!   [`fis::VerticalIndex`], so the miner's support and cover queries run at
//!   bitmap-intersection speed;
//! * [`miner`] — enumeration of the **minimal satisfied** disjunctive
//!   constraints of a dataset up to configurable `|X|` / `|𝒴|` budgets,
//!   pruned by lattice monotonicity, with a brute-force reference
//!   implementation ([`miner::mine_bruteforce`]) the property suite checks
//!   against, and a non-redundant cover computed with the engine's own
//!   implication decider ([`diffcon::implication`]).
//!
//! The serving layer (`diffcon-engine`) wires both into sessions and the
//! `diffcond` wire protocol (`load` / `mine` / `adopt` / `dataset` verbs), so
//! one session can ingest a dataset, discover its constraints, adopt them as
//! premises, and immediately answer provably tighter `bound` queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod miner;

pub use dataset::Dataset;
pub use miner::{mine, Discovery, MinerConfig, MinerStats, MAX_MINE_RHS_WORK, MAX_MINE_UNIVERSE};
