//! Observability invariants, property-tested end to end:
//!
//! * the Prometheus exposition rendered by [`EngineMetrics::exposition`]
//!   always parses under the text-format grammar, never repeats a series,
//!   and its counters are monotone across scrapes — for *any* request
//!   traffic, including parse errors and no-session failures;
//! * the route `explain` reports is always the route the planner actually
//!   charged: the matching per-procedure counter (decided, cache-hit, or
//!   trivial) grows by exactly one.

use diffcon::procedure::ALL_PROCEDURES;
use diffcon_engine::{EngineMetrics, Pipeline, Server, SessionConfig};
use diffcon_obs::parse_exposition;
use proptest::prelude::*;
use std::collections::HashMap;

/// A request line drawn from every verb class, valid and malformed alike —
/// the exposition must stay well-formed under arbitrary traffic.
fn arb_request_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("universe 4".to_string()),
        Just("assert A->{B}".to_string()),
        Just("assert B->{C}".to_string()),
        Just("retract A->{B}".to_string()),
        Just("implies A->{C}".to_string()),
        Just("implies AB->{B}".to_string()),
        Just("batch A->{B} ; C->{D}".to_string()),
        Just("witness C->{A}".to_string()),
        Just("derive A->{B}".to_string()),
        Just("explain A->{B}".to_string()),
        Just("bound AB".to_string()),
        Just("known A = 3".to_string()),
        Just("trace on".to_string()),
        Just("trace off".to_string()),
        Just("stats".to_string()),
        Just("premises".to_string()),
        Just("frobnicate".to_string()),
        Just("implies A->{Z}".to_string()),
        Just("".to_string()),
    ]
}

/// Counter samples (`*_total` series plus the bare counters) keyed by
/// series identity, for cross-scrape monotonicity checks.  Per-session and
/// per-connection attribution series (any series with a `conn` label) are
/// excluded: their registry is capacity-bounded, so an entry present in an
/// earlier scrape can be evicted — vanish, not regress — by later traffic.
fn counter_samples(text: &str) -> HashMap<String, f64> {
    parse_exposition(text)
        .expect("exposition must parse")
        .into_iter()
        .filter(|s| s.name.ends_with("_total"))
        .filter(|s| !s.key().contains("conn="))
        .map(|s| (s.key(), s.value))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any traffic mix leaves the exposition parseable, duplicate-free,
    /// and with counters that only ever grow between scrapes.
    #[test]
    fn exposition_stays_wellformed_and_counters_monotone(
        lines in proptest::collection::vec(arb_request_line(), 1..25),
        threads in 1usize..3,
    ) {
        let before = counter_samples(&EngineMetrics::global().exposition());
        let mut pipeline = Pipeline::new(SessionConfig::default(), threads);
        for line in &lines {
            let (_, quit) = pipeline.push_line(line);
            if quit {
                break;
            }
        }
        pipeline.finish();
        let text = EngineMetrics::global().exposition();
        let series = parse_exposition(&text).expect("exposition must parse");
        // No duplicate series: every (name, labels) identity appears once.
        let mut seen = std::collections::HashSet::new();
        for s in &series {
            prop_assert!(seen.insert(s.key()), "duplicate series {}", s.key());
        }
        // Counters are monotone across scrapes.  Other tests run in
        // parallel against the same global registry, so growth floors are
        // the strongest safe assertion.
        let after = counter_samples(&text);
        for (key, earlier) in &before {
            let later = after.get(key).copied().unwrap_or(f64::NAN);
            prop_assert!(
                later >= *earlier,
                "counter {key} regressed: {earlier} -> {later}"
            );
        }
        // The traffic we just pushed is visible: requests_total grew.
        let requests = "diffcond_requests_total";
        prop_assert!(
            after[requests] > before[requests],
            "requests_total did not grow: {} -> {}",
            before[requests],
            after[requests]
        );
    }

    /// The route `explain` reports is the route the planner charged: the
    /// matching counter (per-procedure decided / cache-hit, or trivial)
    /// grows by exactly one, and no other route's does.
    #[test]
    fn explain_route_matches_planner_accounting(
        lhs in 0u64..16,
        members in proptest::collection::vec(0u64..16, 0..3),
        premises in proptest::collection::vec((0u64..16, 0u64..16), 0..4),
        repeat in any::<bool>(),
    ) {
        let mut server = Server::new(SessionConfig::default());
        server.handle_line("universe 4");
        for (p_lhs, p_rhs) in premises {
            let u = server.session().unwrap().universe().clone();
            let text = format!(
                "assert {}->{{{}}}",
                u.format_set(setlat::AttrSet::from_bits(p_lhs)),
                u.format_set(setlat::AttrSet::from_bits(p_rhs)),
            );
            server.handle_line(&text);
        }
        let u = server.session().unwrap().universe().clone();
        let member_texts: Vec<String> = members
            .iter()
            .map(|m| u.format_set(setlat::AttrSet::from_bits(*m)))
            .collect();
        let goal = format!(
            "explain {}->{{{}}}",
            u.format_set(setlat::AttrSet::from_bits(lhs)),
            member_texts.join(",")
        );
        if repeat {
            // Warm the answer cache so the cached route is exercised too.
            server.handle_line(&goal);
        }
        let stats_before = server.session().unwrap().stats().planner;
        let reply = server.handle_line(&goal).text;
        let stats_after = server.session().unwrap().stats().planner;
        prop_assert!(reply.starts_with("explain verdict="), "got: {reply}");
        let field = |key: &str| -> String {
            reply
                .split_whitespace()
                .find_map(|t| t.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("{key} missing: {reply}"))
                .to_string()
        };
        let route = field("route");
        let cached = field("cached") == "1";
        // The reply's trailing trace id and queue wait must match the
        // request's flight record exactly — the reply and the record are
        // two views of the same request.
        let trace = field("trace");
        let dump = server.handle_line(&format!("debug trace {trace}")).text;
        prop_assert!(dump.starts_with("flight n=1 "), "got: {dump}");
        let record_field = |key: &str| -> String {
            dump.split_whitespace()
                .find_map(|t| t.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("{key} missing: {dump}"))
                .to_string()
        };
        prop_assert_eq!(record_field("trace"), trace);
        prop_assert_eq!(record_field("verb"), "explain");
        prop_assert_eq!(record_field("route"), route.clone());
        prop_assert_eq!(record_field("cached"), field("cached"));
        prop_assert_eq!(record_field("queue_us"), field("queue_us"));
        prop_assert_eq!(record_field("decide_us"), field("decide_us"));
        prop_assert_eq!(record_field("epoch"), field("epoch"));
        if route == "trivial" {
            prop_assert_eq!(stats_after.trivial, stats_before.trivial + 1, "trivial: {}", reply);
        } else {
            for kind in ALL_PROCEDURES {
                let before = stats_before.of(kind);
                let after = stats_after.of(kind);
                let charged = kind.name() == route;
                let (expect_decided, expect_hits) = if charged && cached {
                    (before.decided, before.cache_hits + 1)
                } else if charged {
                    (before.decided + 1, before.cache_hits)
                } else {
                    (before.decided, before.cache_hits)
                };
                prop_assert_eq!(
                    (after.decided, after.cache_hits),
                    (expect_decided, expect_hits),
                    "route {} counters for {}: {}", kind.name(), route, reply
                );
            }
        }
    }
}
