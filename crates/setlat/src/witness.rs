//! Witness sets (Definition 2.5 of the paper).
//!
//! A subset `W ⊆ ⋃𝒴` is a *witness set* of a family `𝒴` if `W ∩ Y ≠ ∅` for every
//! `Y ∈ 𝒴` (i.e. `W` is a hitting set of `𝒴` drawn from `⋃𝒴`).  The set of all
//! witness sets is written `𝒲(𝒴)`; note `𝒲(∅) = {∅}` and `𝒲(𝒴) = ∅` whenever
//! `∅ ∈ 𝒴`.
//!
//! Witness sets drive both the lattice decomposition `L(X, 𝒴)` (Definition 2.6)
//! and the *decomposition* of a constraint into witness constraints
//! (Definition 4.4), so this module provides full enumeration, minimal-witness
//! enumeration, and counting.

use crate::attrset::AttrSet;
use crate::family::Family;
use crate::powerset::subsets;

/// Returns `true` iff `w` is a witness set of `fam`: `w ⊆ ⋃𝒴` and `w` meets
/// every member of `𝒴`.
pub fn is_witness(fam: &Family, w: AttrSet) -> bool {
    if !w.is_subset(fam.union_all()) {
        return false;
    }
    fam.iter().all(|y| y.intersects(w))
}

/// Enumerates all witness sets `𝒲(𝒴)`, in increasing mask order.
///
/// `𝒲(∅) = {∅}`; if any member of `𝒴` is empty there are no witness sets.
/// The enumeration is exponential in `|⋃𝒴|` (as it must be: `|𝒲(𝒴)|` itself can
/// be exponential).
pub fn witness_sets(fam: &Family) -> Vec<AttrSet> {
    if fam.is_empty() {
        return vec![AttrSet::EMPTY];
    }
    if fam.has_empty_member() {
        return Vec::new();
    }
    let support = fam.union_all();
    subsets(support)
        .filter(|&w| fam.iter().all(|y| y.intersects(w)))
        .collect()
}

/// Enumerates the *minimal* witness sets of `𝒴` (the minimal hitting sets).
///
/// Every witness set is a superset (within `⋃𝒴`) of a minimal one, so the
/// minimal witnesses are a compact generator of `𝒲(𝒴)`.
pub fn minimal_witness_sets(fam: &Family) -> Vec<AttrSet> {
    let all = witness_sets(fam);
    let mut minimal: Vec<AttrSet> = Vec::new();
    // `all` is in increasing mask order, which is not cardinality order, so do a
    // straightforward minimality filter.
    for &w in &all {
        if !all.iter().any(|&v| v != w && v.is_subset(w)) {
            minimal.push(w);
        }
    }
    minimal.sort();
    minimal
}

/// Counts the witness sets of `𝒴` without materializing them, via
/// inclusion–exclusion over the members of `𝒴`:
///
/// `|𝒲(𝒴)| = Σ_{𝒵 ⊆ 𝒴} (−1)^{|𝒵|} · 2^{|⋃𝒴| − |⋃𝒵|}`
///
/// (each term counts subsets of `⋃𝒴` avoiding every member of `𝒵`).
pub fn count_witness_sets(fam: &Family) -> i128 {
    if fam.is_empty() {
        return 1;
    }
    if fam.has_empty_member() {
        return 0;
    }
    let support = fam.union_all();
    let members = fam.members();
    let k = members.len();
    assert!(
        k <= 30,
        "inclusion-exclusion over more than 30 members is infeasible"
    );
    let mut total: i128 = 0;
    for chooser in 0u64..(1u64 << k) {
        let mut union = AttrSet::EMPTY;
        for (i, &m) in members.iter().enumerate() {
            if (chooser >> i) & 1 == 1 {
                union = union.union(m);
            }
        }
        let sign: i128 = if chooser.count_ones() % 2 == 0 { 1 } else { -1 };
        let free = support.len() - union.len();
        total += sign * (1i128 << free);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn abcd() -> Universe {
        Universe::of_size(4)
    }

    fn fam(u: &Universe, members: &[&str]) -> Family {
        Family::from_sets(members.iter().map(|m| u.parse_set(m).unwrap()))
    }

    #[test]
    fn example_2_7_first_family() {
        // W({B, CD}) = {BC, BD, BCD}.
        let u = abcd();
        let f = fam(&u, &["B", "CD"]);
        let ws = witness_sets(&f);
        let expected: Vec<AttrSet> = ["BC", "BD", "BCD"]
            .iter()
            .map(|s| u.parse_set(s).unwrap())
            .collect();
        let mut sorted = expected.clone();
        sorted.sort();
        assert_eq!(ws, sorted);
    }

    #[test]
    fn example_2_7_second_family() {
        // W({BC, BD}) = {B, BC, BD, CD, BCD}.
        let u = abcd();
        let f = fam(&u, &["BC", "BD"]);
        let ws = witness_sets(&f);
        let mut expected: Vec<AttrSet> = ["B", "BC", "BD", "CD", "BCD"]
            .iter()
            .map(|s| u.parse_set(s).unwrap())
            .collect();
        expected.sort();
        assert_eq!(ws, expected);
    }

    #[test]
    fn empty_family_has_single_empty_witness() {
        let f = Family::empty();
        assert_eq!(witness_sets(&f), vec![AttrSet::EMPTY]);
        assert_eq!(count_witness_sets(&f), 1);
        assert!(is_witness(&f, AttrSet::EMPTY));
    }

    #[test]
    fn empty_member_kills_witnesses() {
        let u = abcd();
        let f = Family::from_sets([AttrSet::EMPTY, u.parse_set("B").unwrap()]);
        assert!(witness_sets(&f).is_empty());
        assert_eq!(count_witness_sets(&f), 0);
    }

    #[test]
    fn is_witness_respects_support() {
        let u = abcd();
        let f = fam(&u, &["B", "CD"]);
        // {A, B, C} hits both members but is not ⊆ ⋃𝒴 = BCD, so it is not a witness.
        assert!(!is_witness(&f, u.parse_set("ABC").unwrap()));
        assert!(is_witness(&f, u.parse_set("BC").unwrap()));
        assert!(!is_witness(&f, u.parse_set("B").unwrap()));
    }

    #[test]
    fn minimal_witnesses() {
        let u = abcd();
        let f = fam(&u, &["B", "CD"]);
        let min = minimal_witness_sets(&f);
        let mut expected: Vec<AttrSet> =
            vec![u.parse_set("BC").unwrap(), u.parse_set("BD").unwrap()];
        expected.sort();
        assert_eq!(min, expected);

        let g = fam(&u, &["BC", "BD"]);
        let min = minimal_witness_sets(&g);
        let mut expected: Vec<AttrSet> =
            vec![u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()];
        expected.sort();
        assert_eq!(min, expected);
    }

    #[test]
    fn witness_of_singleton_family_of_witness_is_itself() {
        // Remark 4.5: for each witness W ∈ 𝒲(𝒴), 𝒲(W̄) = {W} where W̄ is the family
        // of singletons of W.
        let u = abcd();
        let f = fam(&u, &["B", "CD"]);
        for w in witness_sets(&f) {
            let singles = Family::of_singletons(w);
            assert_eq!(witness_sets(&singles), vec![w]);
        }
    }

    #[test]
    fn count_matches_enumeration() {
        let u = Universe::of_size(6);
        let f = Family::from_sets([
            u.parse_set("AB").unwrap(),
            u.parse_set("CD").unwrap(),
            u.parse_set("BE").unwrap(),
            u.parse_set("F").unwrap(),
        ]);
        assert_eq!(count_witness_sets(&f), witness_sets(&f).len() as i128);
    }

    #[test]
    fn every_witness_contains_a_minimal_one() {
        let u = Universe::of_size(5);
        let f = Family::from_sets([
            u.parse_set("AB").unwrap(),
            u.parse_set("BC").unwrap(),
            u.parse_set("DE").unwrap(),
        ]);
        let all = witness_sets(&f);
        let minimal = minimal_witness_sets(&f);
        for w in all {
            assert!(minimal.iter().any(|&m| m.is_subset(w)));
        }
    }
}
