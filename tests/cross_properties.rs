//! Property-based tests spanning the whole workspace: the bridges and decision
//! procedures must agree on arbitrary randomly-generated inputs, not just the
//! curated cases of the other integration tests.

use diffcon::{fis_bridge, implication, inference, prop_bridge, rel_bridge, DiffConstraint};
use fis::basket::BasketDb;
use proptest::prelude::*;
use relational::distribution::ProbabilisticRelation;
use relational::relation::Relation;
use setlat::{mobius, AttrSet, Family, SetFunction, Universe};

const N: usize = 5;

fn universe() -> Universe {
    Universe::of_size(N)
}

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_nonempty_set() -> impl Strategy<Value = AttrSet> {
    (1u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_constraint() -> impl Strategy<Value = DiffConstraint> {
    (
        arb_set(),
        proptest::collection::vec(arb_nonempty_set(), 0..=2),
    )
        .prop_map(|(lhs, members)| DiffConstraint::new(lhs, Family::from_sets(members)))
}

fn arb_constraint_set(max: usize) -> impl Strategy<Value = Vec<DiffConstraint>> {
    proptest::collection::vec(arb_constraint(), 0..=max)
}

fn arb_baskets() -> impl Strategy<Value = BasketDb> {
    proptest::collection::vec(arb_set(), 0..20)
        .prop_map(|baskets| BasketDb::from_baskets(N, baskets))
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0u32..3, N), 1..12)
        .prop_map(|tuples| Relation::from_tuples(N, tuples))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.5 + Theorem 4.8: lattice implication, semantic implication and
    /// derivability coincide; produced proofs verify.
    #[test]
    fn implication_procedures_agree(premises in arb_constraint_set(3), goal in arb_constraint()) {
        let u = universe();
        let lattice = implication::implies(&u, &premises, &goal);
        prop_assert_eq!(lattice, implication::implies_semantic(&u, &premises, &goal));
        prop_assert_eq!(lattice, prop_bridge::implies_sat(&u, &premises, &goal));
        match inference::derive(&u, &premises, &goal) {
            Some(proof) => {
                prop_assert!(lattice);
                prop_assert!(proof.verify(&u, &premises).is_ok());
                prop_assert_eq!(proof.conclusion(), &goal);
            }
            None => prop_assert!(!lattice),
        }
    }

    /// Proposition 6.3 on arbitrary basket databases and constraints.
    #[test]
    fn disjunctive_satisfaction_matches_support_semantics(db in arb_baskets(), c in arb_constraint()) {
        let disj = fis_bridge::to_disjunctive(&c).satisfied_by(&db);
        let dense = diffcon::semantics::satisfies(&fis_bridge::support_function(&db), &c);
        let shortcut = fis_bridge::support_function_satisfies(&db, &c);
        prop_assert_eq!(disj, dense);
        prop_assert_eq!(disj, shortcut);
    }

    /// Proposition 7.3 on arbitrary relations and constraints (uniform distribution).
    #[test]
    fn boolean_satisfaction_matches_simpson_semantics(r in arb_relation(), c in arb_constraint()) {
        let pr = ProbabilisticRelation::uniform(r.clone());
        let via_bool = rel_bridge::to_boolean_dependency(&c).satisfied_by(&r);
        let via_simpson = rel_bridge::simpson_satisfies(&pr, &c);
        prop_assert_eq!(via_bool, via_simpson);
    }

    /// Satisfaction is preserved by implication: if f satisfies C and C ⊨ goal,
    /// then f satisfies goal (on arbitrary dense functions).
    #[test]
    fn satisfaction_closed_under_implication(
        values in proptest::collection::vec(-3.0f64..3.0, 1usize << N),
        premises in arb_constraint_set(2),
        goal in arb_constraint(),
    ) {
        let u = universe();
        let f = SetFunction::from_values(N, values);
        if diffcon::semantics::satisfies_all(&f, &premises)
            && implication::implies(&u, &premises, &goal)
        {
            prop_assert!(diffcon::semantics::satisfies(&f, &goal));
        }
    }

    /// Frequency functions: for nonnegative densities the two satisfaction
    /// semantics coincide (the positive(S) part of Proposition 6.4 / Remark 3.6).
    #[test]
    fn semantics_coincide_on_frequency_functions(
        density_values in proptest::collection::vec(0.0f64..3.0, 1usize << N),
        c in arb_constraint(),
    ) {
        let density = SetFunction::from_values(N, density_values);
        let f = mobius::from_density(&density);
        prop_assert_eq!(
            diffcon::semantics::satisfies(&f, &c),
            diffcon::semantics::satisfies_differential(&f, &c)
        );
    }

    /// The support function of a basket database always satisfies every
    /// constraint implied by the constraints it satisfies (soundness of
    /// implication "in the data").
    #[test]
    fn implied_constraints_hold_in_the_data(db in arb_baskets(), premises in arb_constraint_set(2), goal in arb_constraint()) {
        let u = universe();
        let all_premises_hold = premises.iter().all(|p| fis_bridge::support_function_satisfies(&db, p));
        if all_premises_hold && implication::implies(&u, &premises, &goal) {
            prop_assert!(fis_bridge::support_function_satisfies(&db, &goal));
        }
    }

    /// Counterexample bundles really separate premises from goal in all worlds.
    #[test]
    fn counterexamples_separate(premises in arb_constraint_set(2), goal in arb_constraint()) {
        let u = universe();
        if let Some(ce) = diffcon::counterexample::find(&u, &premises, &goal) {
            prop_assert!(!implication::implies(&u, &premises, &goal));
            prop_assert!(diffcon::semantics::satisfies_all(&ce.function, &premises));
            prop_assert!(!diffcon::semantics::satisfies(&ce.function, &goal));
            for p in &premises {
                prop_assert!(fis_bridge::support_function_satisfies(&ce.baskets, p));
            }
            prop_assert!(!fis_bridge::support_function_satisfies(&ce.baskets, &goal));
            // The relational witness exists unless some premise has an empty
            // right-hand side (the simpson(S)-vacuous corner).
            match &ce.relation {
                Some(relation) => {
                    for p in &premises {
                        prop_assert!(rel_bridge::simpson_satisfies(relation, p));
                    }
                    prop_assert!(!rel_bridge::simpson_satisfies(relation, &goal));
                }
                None => prop_assert!(rel_bridge::vacuous_over_relations(&premises)),
            }
        } else {
            prop_assert!(implication::implies(&u, &premises, &goal));
        }
    }
}
