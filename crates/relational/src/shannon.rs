//! Shannon-entropy measures over attribute sets.
//!
//! Lee, Malvestuto and later Dalkilic & Robertson studied relational
//! dependencies through the entropy `H(X) = −Σ_x p_X(x) log₂ p_X(x)` of the
//! marginal distribution on an attribute set.  The paper leaves open whether
//! its Section 7 results transfer from the Simpson function to the Shannon
//! function; this module implements the Shannon measure so that the experiments
//! can at least compare the two empirically (e.g. both detect functional
//! dependencies, but their densities differ in sign behaviour).

use crate::distribution::ProbabilisticRelation;
use setlat::{mobius, AttrSet, SetFunction};

/// The Shannon entropy (base 2) of the marginal distribution on `x`.
pub fn entropy_at(pr: &ProbabilisticRelation, x: AttrSet) -> f64 {
    pr.marginal(x)
        .values()
        .map(|&p| if p > 0.0 { -p * p.log2() } else { 0.0 })
        .sum()
}

/// Materializes the entropy function `X ↦ H(X)` as a dense [`SetFunction`].
pub fn entropy_function(pr: &ProbabilisticRelation) -> SetFunction {
    SetFunction::from_fn(pr.arity(), |x| entropy_at(pr, x))
}

/// The *information dependency measure* of Dalkilic & Robertson:
/// `InD(X → Y) = H(X ∪ Y) − H(X)`, the conditional entropy `H(Y | X)`.
/// It is zero iff the functional dependency `X → Y` holds in the relation.
pub fn conditional_entropy(pr: &ProbabilisticRelation, x: AttrSet, y: AttrSet) -> f64 {
    entropy_at(pr, x.union(y)) - entropy_at(pr, x)
}

/// The density function of the entropy function (for comparison with the
/// Simpson density; it is *not* nonnegative in general, which is one obstacle
/// to transferring Section 7 to Shannon functions).
pub fn entropy_density(pr: &ProbabilisticRelation) -> SetFunction {
    mobius::density_function(&entropy_function(pr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn sample() -> ProbabilisticRelation {
        ProbabilisticRelation::uniform(Relation::from_tuples(
            3,
            vec![
                vec![1, 10, 100],
                vec![1, 10, 200],
                vec![2, 20, 100],
                vec![2, 30, 100],
            ],
        ))
    }

    #[test]
    fn entropy_of_empty_set_is_zero() {
        let pr = sample();
        assert!(entropy_at(&pr, AttrSet::EMPTY).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_key_is_log_n() {
        let pr = sample();
        assert!((entropy_at(&pr, AttrSet::full(3)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_monotone() {
        let pr = sample();
        let f = entropy_function(&pr);
        for mask in 0u64..8 {
            let x = AttrSet::from_bits(mask);
            for i in 0..3 {
                if !x.contains(i) {
                    assert!(f.get(x) <= f.get(x.with(i)) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn conditional_entropy_detects_fds() {
        // In the sample relation attribute 1 determines attribute 0
        // (10→1, 20→2, 30→2) but attribute 0 does not determine attribute 1.
        let pr = sample();
        let a = AttrSet::from_indices([0]);
        let b = AttrSet::from_indices([1]);
        assert!(conditional_entropy(&pr, b, a).abs() < 1e-12);
        assert!(conditional_entropy(&pr, a, b) > 0.1);
    }

    #[test]
    fn entropy_density_can_be_negative() {
        // Unlike the Simpson density, the entropy density takes negative values
        // on generic relations — the empirical face of the paper's open problem.
        let pr = ProbabilisticRelation::uniform(Relation::from_tuples(
            2,
            vec![vec![1, 1], vec![1, 2], vec![2, 1]],
        ));
        let d = entropy_density(&pr);
        let has_negative = d.values().iter().any(|&v| v < -1e-9);
        assert!(has_negative);
    }
}
