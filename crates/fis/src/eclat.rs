//! Eclat: vertical (tidset-intersection) frequent-itemset mining.
//!
//! Eclat is the standard depth-first alternative to the levelwise Apriori
//! algorithm: each itemset carries the bitmap of transaction ids (tids) that
//! contain it, and extending an itemset by one item is a bitmap intersection.
//! It produces exactly the same collection of frequent itemsets as Apriori and
//! serves as the baseline miner in the benchmark harness (it does no
//! deduction at all, so it is the "count everything" end of the
//! concise-representation spectrum).

use crate::basket::BasketDb;
use setlat::AttrSet;
use std::collections::HashMap;

/// A bitmap over transaction ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TidSet {
    blocks: Vec<u64>,
    count: usize,
}

impl TidSet {
    /// An empty tidset sized for `num_tids` transactions.
    pub fn empty(num_tids: usize) -> Self {
        TidSet {
            blocks: vec![0; num_tids.div_ceil(64)],
            count: 0,
        }
    }

    /// The full tidset `{0, …, num_tids − 1}`.
    pub fn full(num_tids: usize) -> Self {
        let mut blocks = vec![u64::MAX; num_tids.div_ceil(64)];
        let tail = num_tids % 64;
        if tail != 0 {
            *blocks.last_mut().expect("num_tids > 0 has a block") = (1u64 << tail) - 1;
        }
        TidSet {
            blocks,
            count: num_tids,
        }
    }

    /// Extends the block storage to hold `num_tids` transactions (a no-op when
    /// already large enough).  Existing membership is preserved.
    pub fn grow(&mut self, num_tids: usize) {
        let blocks = num_tids.div_ceil(64);
        if blocks > self.blocks.len() {
            self.blocks.resize(blocks, 0);
        }
    }

    /// Inserts a transaction id.
    pub fn insert(&mut self, tid: usize) {
        let block = tid / 64;
        let bit = 1u64 << (tid % 64);
        if self.blocks[block] & bit == 0 {
            self.blocks[block] |= bit;
            self.count += 1;
        }
    }

    /// The number of transactions in the set (the support).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` iff no transaction is present.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Intersection of two tidsets.
    pub fn intersect(&self, other: &TidSet) -> TidSet {
        let blocks: Vec<u64> = self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a & b)
            .collect();
        let count = blocks.iter().map(|b| b.count_ones() as usize).sum();
        TidSet { blocks, count }
    }

    /// In-place intersection (`self ∩= other`).  Blocks beyond `other`'s
    /// length are cleared, so differently grown tidsets intersect soundly.
    pub fn intersect_in_place(&mut self, other: &TidSet) {
        for (i, block) in self.blocks.iter_mut().enumerate() {
            *block &= other.blocks.get(i).copied().unwrap_or(0);
        }
        self.count = self.blocks.iter().map(|b| b.count_ones() as usize).sum();
    }

    /// Set difference `self ∖ other`.
    pub fn difference(&self, other: &TidSet) -> TidSet {
        let blocks: Vec<u64> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| b & !other.blocks.get(i).copied().unwrap_or(0))
            .collect();
        let count = blocks.iter().map(|b| b.count_ones() as usize).sum();
        TidSet { blocks, count }
    }

    /// Returns `true` iff `tid` is present.
    pub fn contains(&self, tid: usize) -> bool {
        let block = tid / 64;
        block < self.blocks.len() && self.blocks[block] & (1u64 << (tid % 64)) != 0
    }

    /// Iterates over the present transaction ids, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tid = i * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(tid)
                }
            })
        })
    }
}

/// Runs Eclat over `db` with absolute support threshold `kappa`, returning every
/// frequent itemset with its support.
///
/// Matches [`crate::apriori::apriori`] exactly (tested), including reporting the
/// empty itemset when `|B| ≥ κ`.
pub fn eclat(db: &BasketDb, kappa: usize) -> HashMap<AttrSet, usize> {
    let n = db.universe_size();
    let num_tids = db.len();
    let mut result: HashMap<AttrSet, usize> = HashMap::new();

    if num_tids >= kappa {
        result.insert(AttrSet::EMPTY, num_tids);
    } else {
        return result;
    }

    // Vertical representation: one tidset per item.
    let mut item_tids: Vec<TidSet> = (0..n).map(|_| TidSet::empty(num_tids)).collect();
    for (tid, &basket) in db.baskets().iter().enumerate() {
        for item in basket.iter() {
            item_tids[item].insert(tid);
        }
    }

    // Initial prefix class: frequent single items.
    let initial: Vec<(AttrSet, TidSet)> = (0..n)
        .filter(|&i| item_tids[i].len() >= kappa)
        .map(|i| (AttrSet::singleton(i), item_tids[i].clone()))
        .collect();
    for (itemset, tids) in &initial {
        result.insert(*itemset, tids.len());
    }
    eclat_recurse(&initial, kappa, &mut result);
    result
}

fn eclat_recurse(class: &[(AttrSet, TidSet)], kappa: usize, result: &mut HashMap<AttrSet, usize>) {
    for (i, (itemset_a, tids_a)) in class.iter().enumerate() {
        let mut next_class: Vec<(AttrSet, TidSet)> = Vec::new();
        for (itemset_b, tids_b) in &class[i + 1..] {
            let joined = itemset_a.union(*itemset_b);
            let tids = tids_a.intersect(tids_b);
            if tids.len() >= kappa {
                result.insert(joined, tids.len());
                next_class.push((joined, tids));
            }
        }
        if !next_class.is_empty() {
            eclat_recurse(&next_class, kappa, result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use setlat::Universe;

    fn sample_db() -> BasketDb {
        let u = Universe::of_size(5);
        BasketDb::parse(&u, "ABC\nABD\nAB\nACD\nBCD\nABCD\nAE\nBE\nABE\nC").unwrap()
    }

    #[test]
    fn tidset_basics() {
        let mut t = TidSet::empty(130);
        assert!(t.is_empty());
        t.insert(0);
        t.insert(64);
        t.insert(129);
        t.insert(129);
        assert_eq!(t.len(), 3);
        assert!(t.contains(64));
        assert!(!t.contains(63));

        let mut s = TidSet::empty(130);
        s.insert(64);
        s.insert(100);
        let i = t.intersect(&s);
        assert_eq!(i.len(), 1);
        assert!(i.contains(64));
    }

    #[test]
    fn eclat_matches_apriori() {
        let db = sample_db();
        for kappa in [1usize, 2, 3, 4, 6, 11] {
            let a = apriori(&db, kappa);
            let e = eclat(&db, kappa);
            assert_eq!(a.frequent, e, "mismatch at kappa = {kappa}");
        }
    }

    #[test]
    fn eclat_on_empty_database() {
        let db = BasketDb::new(4);
        assert!(eclat(&db, 1).is_empty());
        // At kappa = 0 every itemset has support 0 ≥ 0, so all 2^4 are reported —
        // exactly as Apriori does.
        assert_eq!(eclat(&db, 0).len(), 16);
        assert_eq!(eclat(&db, 0), apriori(&db, 0).frequent);
    }

    #[test]
    fn eclat_supports_match_counting() {
        let db = sample_db();
        let result = eclat(&db, 2);
        for (&x, &support) in &result {
            assert_eq!(support, db.support(x));
        }
    }
}
