//! The coNP-hardness reduction of Proposition 5.5, run forwards.
//!
//! Run with `cargo run --example conp_reduction`.
//!
//! A DNF formula φ is a tautology iff the constraint set
//! `C_φ = { P_ψ → {{q} | q ∈ Q_ψ} }` implies `∅ → ∅`.  This example builds both
//! a tautological and a non-tautological DNF, performs the reduction, decides
//! the resulting implication problems with the lattice procedure and with the
//! SAT-backed procedure, and cross-checks against a direct DNF-tautology test.

use diffcon::{implication, prop_bridge};
use proplogic::dnf::{Dnf, DnfTerm};
use proplogic::tautology;
use setlat::{AttrSet, Universe};

fn describe(u: &Universe, name: &str, dnf: &Dnf) {
    println!("\nφ ({name}) = {}", dnf.format(u));
    let (premises, goal) = prop_bridge::dnf_tautology_to_implication(dnf);
    println!("  reduced constraint set C_φ:");
    for c in &premises {
        println!("    {}", c.format(u));
    }
    println!("  goal: {}", goal.format(u));
    let via_lattice = implication::implies(u, &premises, &goal);
    let via_sat = prop_bridge::implies_sat(u, &premises, &goal);
    let direct = tautology::dnf_is_tautology(dnf, u);
    let exhaustive = dnf.is_tautology_exhaustive(u);
    println!(
        "  C_φ ⊨ ∅ → ∅ (lattice) = {via_lattice}, (SAT) = {via_sat}; \
         φ tautology (DPLL) = {direct}, (truth table) = {exhaustive}"
    );
    assert_eq!(via_lattice, via_sat);
    assert_eq!(via_lattice, direct);
    assert_eq!(via_lattice, exhaustive);
}

fn main() {
    let u = Universe::of_size(4);

    // A tautology: "some variable is true, or all of them are false".
    let covering = Dnf::new(
        (0..4)
            .map(|i| DnfTerm::new(AttrSet::singleton(i), AttrSet::EMPTY))
            .chain([DnfTerm::new(AttrSet::EMPTY, AttrSet::full(4))])
            .collect::<Vec<_>>(),
    );
    describe(&u, "covering, a tautology", &covering);

    // Not a tautology: A ∨ (B ∧ ¬C).
    let contingent = Dnf::new([
        DnfTerm::new(AttrSet::singleton(0), AttrSet::EMPTY),
        DnfTerm::new(AttrSet::singleton(1), AttrSet::singleton(2)),
    ]);
    describe(&u, "contingent", &contingent);

    println!(
        "\nBoth reductions agree with the direct tautology checks — the implication \
         problem for differential constraints is as hard as DNF tautology (coNP-hard) \
         and, by the SAT refutation above, also inside coNP."
    );
}
