//! Constraint discovery end to end: ingest a basket dataset, mine the
//! minimal disjunctive constraints it satisfies, adopt them as premises,
//! and watch bound queries tighten and NDI mining scan less.
//!
//! ```console
//! $ cargo run --example discover_explorer
//! ```
//!
//! The first section drives the `diffcond` wire protocol (the transcript in
//! the README); the second uses the library API directly and finishes with
//! the constraint-pruned NDI build.

use diffcon_bounds::{mining, BoundsConfig};
use diffcon_discover::{miner, Dataset, MinerConfig};
use diffcon_engine::{Server, SessionConfig};
use fis::basket::BasketDb;
use setlat::Universe;

fn main() {
    // ── 1. The wire protocol: load / dataset / mine / adopt / bound ──────
    println!("── diffcond: discovery over the wire ──");
    let mut server = Server::new(SessionConfig::default());
    for request in [
        "universe 4",
        "load AB; ABC; ABD; B; C; CD; ABCD",
        "dataset",
        "mine",
        "known A = 4",
        "bound AB",
        "adopt",
        "bound AB",
        "implies A -> {B}",
        "load AB; AZ",
        "stats",
    ] {
        let reply = server.handle_line(request);
        println!("> {request}");
        println!("{}", reply.text);
    }

    // ── 2. The library API: Dataset + miner ──────────────────────────────
    println!("\n── diffcon-discover: the miner, up close ──");
    let u = Universe::of_size(4);
    let db = BasketDb::parse(&u, "AB\nABC\nABD\nB\nC\nCD\nABCD").unwrap();
    let dataset = Dataset::from_db(u.clone(), db.clone());
    let discovery = miner::mine(&dataset, &MinerConfig::default());
    println!(
        "  {} minimal constraints, cover of {} ({} candidates, {} lhs pruned):",
        discovery.minimal.len(),
        discovery.cover.len(),
        discovery.stats.candidates,
        discovery.stats.lhs_pruned,
    );
    for c in &discovery.cover {
        println!("    {}", c.format(&u));
    }

    // ── 3. What adoption buys NDI mining ─────────────────────────────────
    println!("\n── constraint-pruned NDI mining ──");
    let (plain_rep, plain) =
        mining::ndi_under_constraints(&db, &[], 1, &BoundsConfig::mining()).unwrap();
    let (adopted_rep, adopted) =
        mining::ndi_under_constraints(&db, &discovery.cover, 1, &BoundsConfig::mining()).unwrap();
    println!(
        "  without constraints: {} support scans, {} itemsets stored",
        plain.support_scans,
        plain_rep.size()
    );
    println!(
        "  with the mined cover: {} support scans, {} itemsets stored",
        adopted.support_scans,
        adopted_rep.size()
    );
    assert!(adopted.support_scans <= plain.support_scans);
}
