//! Sessions: a universe plus an incrementally maintained premise set, with
//! snapshot publication, shared sharded memoization, and batch evaluation
//! layered over the one-shot procedures in `diffcon`.
//!
//! A [`Session`] is the unit of engine *write* state.  It owns:
//!
//! * the premise set, with `O(|C|)` incremental [`assert`](Session::assert_constraint)
//!   / [`retract`](Session::retract_constraint) that keep three derived
//!   structures in sync — the propositional translations (for the SAT
//!   procedure), the FD translation index (for the polynomial fragment fast
//!   path), and an order-independent 64-bit **premise digest** (XOR of
//!   constraint fingerprints) that versions every cached answer;
//! * the known point values `f(X) = v` with their own digest (versioning
//!   bound intervals), the loaded dataset, and a [`ConstraintInterner`]
//!   assigning dense ids to asserted premises;
//! * handles to the session's *shared* serving infrastructure: the sharded
//!   concurrent caches (full answers, goal lattices, propositional
//!   translations, bound intervals — see [`crate::cache::ShardedCache`])
//!   and the atomic [`Planner`] accounting.
//!
//! Every mutation republishes an immutable [`Snapshot`] (bumping an epoch);
//! the query methods — [`Session::implies`], [`Session::implies_batch`],
//! [`Session::bound`] — take **`&self`** and simply delegate to the current
//! snapshot, so a session's own read path is byte-for-byte the same code any
//! number of concurrent snapshot readers execute.  Writers never wait for
//! readers: an in-flight reader keeps its `Arc<Snapshot>` alive and the
//! writer publishes past it.

use crate::cache::{ShardOccupancy, ShardedCache};
use crate::intern::{ConstraintId, ConstraintInterner};
use crate::metrics::{CacheFamily, EngineMetrics, SessionCosts};
use crate::planner::{Planner, PlannerConfig, PlannerStats};
use crate::snapshot::{EngineCaches, Snapshot, SnapshotParts};
use diffcon::inference::Derivation;
use diffcon::{fd_fragment, prop_bridge, DiffConstraint};
use diffcon_bounds::problem::{BoundsConfig, DeriveError};
use diffcon_bounds::SideConditions;
use diffcon_discover::{Dataset, Discovery, MinerConfig};
use fis::basket::BasketParseError;
use proplogic::implication::ImplicationConstraint;
use relational::fd::FunctionalDependency;
use setlat::{AttrSet, Universe};
use std::sync::Arc;

pub use crate::cache::CacheStats;
pub use crate::snapshot::{BoundOutcome, QueryOutcome};

/// Capacity and planner settings for a session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Bound on memoized query answers.
    pub answer_cache_capacity: usize,
    /// Bound on memoized goal lattice decompositions.
    pub lattice_cache_capacity: usize,
    /// Bound on memoized propositional translations.
    pub prop_cache_capacity: usize,
    /// Bound on memoized bound-query intervals.
    pub bound_cache_capacity: usize,
    /// Number of shards each concurrent cache is split into.  Concurrent
    /// readers contend only within a shard; one shard degenerates to a
    /// single mutex-guarded LRU.  (Clamped per cache so a shard is never
    /// smaller than one entry.)
    pub cache_shards: usize,
    /// Side conditions under which `bound` queries interpret the unknown set
    /// function (the default is the support-function interpretation —
    /// nonnegative density — matching the `known <set> = <support>` verbs of
    /// the wire protocol).
    pub bound_side: SideConditions,
    /// Derivation knobs for the bound engine (propagation rounds, pairwise
    /// pass); routing between the full path and the relaxation is governed
    /// by [`PlannerConfig::bound_budget`], not by
    /// [`BoundsConfig::budget_ops`].
    pub bounds: BoundsConfig,
    /// Distinct-constraint count past which the interner is compacted.
    ///
    /// Only asserted premises are interned (queries never touch the
    /// interner), so the table grows with assert/retract churn, not query
    /// traffic.  When it exceeds this threshold it is rebuilt with only the
    /// current premises.  The threshold is a floor, not an exact trigger:
    /// compaction only runs when it can actually shrink the table, so the
    /// engine always allows at least `2·|premises| + 16` entries.
    pub interner_compaction_threshold: usize,
    /// Procedure-routing configuration.
    pub planner: PlannerConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            answer_cache_capacity: 1 << 16,
            lattice_cache_capacity: 1 << 12,
            prop_cache_capacity: 1 << 12,
            bound_cache_capacity: 1 << 12,
            cache_shards: 16,
            bound_side: SideConditions::support(),
            bounds: BoundsConfig::default(),
            interner_compaction_threshold: 1 << 18,
            planner: PlannerConfig::default(),
        }
    }
}

/// A point-in-time view of a session's accumulated statistics.
#[derive(Debug, Clone, Copy)]
pub struct SessionStats {
    /// Per-procedure planner accounting.
    pub planner: PlannerStats,
    /// Answer-cache counters (aggregated across shards).
    pub answer_cache: CacheStats,
    /// Lattice-cache counters (aggregated across shards).
    pub lattice_cache: CacheStats,
    /// Translation-cache counters (aggregated across shards).
    pub prop_cache: CacheStats,
    /// Bound-cache counters (aggregated across shards).
    pub bound_cache: CacheStats,
    /// Shards in the answer cache.  A cache whose capacity is below the
    /// configured shard count is clamped to one shard per entry (see
    /// [`crate::cache::ShardedCache::new`]), so smaller caches may hold
    /// fewer shards than reported here.
    pub cache_shards: usize,
    /// Per-shard occupancy skew of the answer cache (least/most populated
    /// shard), the observable `--cache-shards` tuning signal.
    pub answer_occupancy: ShardOccupancy,
    /// Per-procedure decision-latency percentiles `(p50, p99)` in
    /// microseconds, in [`diffcon::procedure::ALL_PROCEDURES`] order
    /// (zeros for procedures that never decided).
    pub route_latency_us: [(u64, u64); 4],
    /// Current number of known point values.
    pub knowns: usize,
    /// Baskets in the loaded dataset (0 when none is loaded).
    pub dataset_baskets: usize,
    /// Current number of premises.
    pub premises: usize,
    /// Distinct constraints currently interned (asserted premises, past and
    /// present, until compaction).
    pub interned: usize,
    /// Times the interner has been compacted (see
    /// [`SessionConfig::interner_compaction_threshold`]).
    pub interner_compactions: u64,
    /// The current snapshot epoch (bumped by every mutation).
    pub epoch: u64,
}

/// Which state component a mutation touched (each mutator touches exactly
/// one); [`Session::publish`] re-freezes only that component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    Premises,
    Knowns,
    Dataset,
}

/// The outcome of adopting discovered constraints as premises.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptOutcome {
    /// The discovery that was adopted (minimal set, cover, miner stats).
    pub discovery: Discovery,
    /// How many cover constraints were newly asserted (the rest were
    /// already premises).
    pub newly_asserted: usize,
}

/// The outcome of reducing the premise family to its minimal core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreApplied {
    /// Premises before the reduction.
    pub before: usize,
    /// Premises after the reduction (the core size).
    pub after: usize,
    /// Redundant premises retracted.
    pub dropped: usize,
}

/// A stateful query-serving session over one universe.
#[derive(Debug)]
pub struct Session {
    universe: Arc<Universe>,
    interner: ConstraintInterner,
    /// The premise set, deduplicated, in assertion order.
    premise_ids: Vec<ConstraintId>,
    premises: Vec<DiffConstraint>,
    /// Index-aligned propositional translations of `premises`.
    premise_props: Vec<ImplicationConstraint>,
    /// Index-aligned FD translations when *every* premise is single-member.
    fd_index: Option<Vec<FunctionalDependency>>,
    /// XOR of the premise fingerprints; versions the answer cache.
    premise_digest: u64,
    /// Known point values `f(X) = v`, sorted by set, for `bound` queries.
    knowns: Vec<(AttrSet, f64)>,
    /// XOR of the known-entry fingerprints; versions the bound cache
    /// together with the premise digest.
    knowns_digest: u64,
    bound_side: SideConditions,
    bounds_config: BoundsConfig,
    /// The loaded basket dataset, if any: the discovery subsystem's handle.
    /// Loading data touches no premise or known state, so no cache digest
    /// involves it; `adopt` flows back through
    /// [`Session::assert_constraint`], which versions everything as usual.
    dataset: Option<Arc<Dataset>>,
    /// Shared across every snapshot this session publishes.
    caches: Arc<EngineCaches>,
    planner: Arc<Planner>,
    /// Cost-attribution ledger shared with the planner and every snapshot;
    /// registered with the global metrics registry when the session is
    /// bound to a `(connection, slot)` pair.
    costs: Arc<SessionCosts>,
    /// Monotone publication counter; `snapshot.epoch()` exposes it.
    epoch: u64,
    /// The currently published snapshot (readers clone the `Arc`).
    current: Arc<Snapshot>,
    interner_compaction_threshold: usize,
    interner_compactions: u64,
}

impl Session {
    /// Creates an empty session over `universe` with default configuration.
    pub fn new(universe: Universe) -> Self {
        Session::with_config(universe, SessionConfig::default())
    }

    /// Creates an empty session with explicit cache and planner settings.
    pub fn with_config(universe: Universe, config: SessionConfig) -> Self {
        let universe = Arc::new(universe);
        let caches = Arc::new(EngineCaches {
            answer: ShardedCache::named(
                CacheFamily::Answer,
                config.cache_shards,
                config.answer_cache_capacity,
            ),
            lattice: ShardedCache::named(
                CacheFamily::Lattice,
                config.cache_shards,
                config.lattice_cache_capacity,
            ),
            prop: ShardedCache::named(
                CacheFamily::Prop,
                config.cache_shards,
                config.prop_cache_capacity,
            ),
            bound: ShardedCache::named(
                CacheFamily::Bound,
                config.cache_shards,
                config.bound_cache_capacity,
            ),
        });
        let costs = Arc::new(SessionCosts::default());
        let planner = Arc::new(Planner::with_costs(config.planner, Arc::clone(&costs)));
        let current = Arc::new(Snapshot::from_parts(SnapshotParts {
            universe: universe.clone(),
            premises: Arc::from([]),
            premise_props: Arc::from([]),
            fd_index: Some(Arc::from([])),
            premise_digest: 0,
            knowns: Arc::from([]),
            knowns_digest: 0,
            bound_side: config.bound_side,
            bounds_config: config.bounds,
            dataset: None,
            epoch: 0,
            caches: Arc::clone(&caches),
            planner: Arc::clone(&planner),
            costs: Arc::clone(&costs),
        }));
        Session {
            universe,
            interner: ConstraintInterner::new(),
            premise_ids: Vec::new(),
            premises: Vec::new(),
            premise_props: Vec::new(),
            fd_index: Some(Vec::new()),
            premise_digest: 0,
            knowns: Vec::new(),
            knowns_digest: 0,
            bound_side: config.bound_side,
            bounds_config: config.bounds,
            dataset: None,
            caches,
            planner,
            costs,
            epoch: 0,
            current,
            interner_compaction_threshold: config.interner_compaction_threshold.max(1),
            interner_compactions: 0,
        }
    }

    /// Publishes a fresh immutable snapshot of the current state.  Called at
    /// the end of every mutation; readers holding the previous snapshot are
    /// unaffected.
    ///
    /// Each mutation touches exactly one state component, so only that
    /// component is re-frozen; the rest is shared with the previous snapshot
    /// by `Arc` clone.  An assert therefore costs `O(|C|)` (re-freezing the
    /// premise set and its translations — the same bound the incremental
    /// maintenance already pays), never `O(|C| + knowns + dataset)`.
    fn publish(&mut self, mutated: Mutation) {
        self.epoch += 1;
        EngineMetrics::global().epoch_publishes.inc();
        let prev = &self.current;
        let (premises, premise_props, fd_index) = if mutated == Mutation::Premises {
            (
                self.premises.clone().into(),
                self.premise_props.clone().into(),
                self.fd_index.clone().map(Into::into),
            )
        } else {
            (
                prev.premises_shared(),
                prev.premise_props_shared(),
                prev.fd_index_shared(),
            )
        };
        let knowns = if mutated == Mutation::Knowns {
            self.knowns.clone().into()
        } else {
            prev.knowns_shared()
        };
        let dataset = if mutated == Mutation::Dataset {
            self.dataset.clone()
        } else {
            prev.dataset_shared()
        };
        self.current = Arc::new(Snapshot::from_parts(SnapshotParts {
            universe: self.universe.clone(),
            premises,
            premise_props,
            fd_index,
            premise_digest: self.premise_digest,
            knowns,
            knowns_digest: self.knowns_digest,
            bound_side: self.bound_side,
            bounds_config: self.bounds_config,
            dataset,
            epoch: self.epoch,
            caches: Arc::clone(&self.caches),
            planner: Arc::clone(&self.planner),
            costs: Arc::clone(&self.costs),
        }));
    }

    /// The session's cost-attribution ledger (shared with the planner and
    /// every published snapshot).
    pub fn costs(&self) -> Arc<SessionCosts> {
        Arc::clone(&self.costs)
    }

    /// The currently published snapshot: an immutable view of the session
    /// state that answers queries from any thread through `&self` and stays
    /// frozen while the session mutates past it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current)
    }

    /// The session's universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The current premise set, in assertion order.
    pub fn premises(&self) -> &[DiffConstraint] {
        &self.premises
    }

    /// The premise ids aligned with [`Session::premises`].
    pub fn premise_ids(&self) -> &[ConstraintId] {
        &self.premise_ids
    }

    /// The order-independent digest of the current premise set.
    pub fn premise_digest(&self) -> u64 {
        self.premise_digest
    }

    /// The known point values `f(X) = v`, sorted by set.
    pub fn knowns(&self) -> &[(AttrSet, f64)] {
        &self.knowns
    }

    /// The order-independent digest of the known-value map.
    pub fn knowns_digest(&self) -> u64 {
        self.knowns_digest
    }

    /// Stable fingerprint of one known entry; XORed into the knowns digest.
    fn known_fingerprint(set: AttrSet, value: f64) -> u64 {
        set.fingerprint().rotate_left(17) ^ value.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Records `f(set) = value` for bound derivation.  Returns `true` when
    /// the set was new, `false` when an existing value was replaced.
    ///
    /// # Panics
    /// Panics if `value` is not finite or `set` lies outside the universe.
    pub fn set_known(&mut self, set: AttrSet, value: f64) -> bool {
        assert!(value.is_finite(), "known values must be finite");
        assert!(
            set.is_subset(self.universe.full_set()),
            "known set lies outside the universe"
        );
        let added = match self.knowns.binary_search_by(|(x, _)| x.cmp(&set)) {
            Ok(pos) => {
                let old = self.knowns[pos].1;
                self.knowns_digest ^= Session::known_fingerprint(set, old);
                self.knowns_digest ^= Session::known_fingerprint(set, value);
                self.knowns[pos].1 = value;
                false
            }
            Err(pos) => {
                self.knowns.insert(pos, (set, value));
                self.knowns_digest ^= Session::known_fingerprint(set, value);
                true
            }
        };
        self.publish(Mutation::Knowns);
        added
    }

    /// Forgets a known point value.  Returns `false` when it was not known.
    pub fn forget_known(&mut self, set: AttrSet) -> bool {
        match self.knowns.binary_search_by(|(x, _)| x.cmp(&set)) {
            Ok(pos) => {
                let (_, value) = self.knowns.remove(pos);
                self.knowns_digest ^= Session::known_fingerprint(set, value);
                self.publish(Mutation::Knowns);
                true
            }
            Err(_) => false,
        }
    }

    /// Derives the tightest provable interval for `f(query)` under the
    /// current premises, knowns, and side conditions, consulting and feeding
    /// the shared bound cache (keyed on both state digests, so premise
    /// retraction and value forgetting version answers exactly like
    /// [`Session::implies`]).
    ///
    /// # Errors
    /// [`DeriveError::Infeasible`] when the knowns contradict the premises
    /// under the side conditions; infeasible outcomes are not cached.
    pub fn bound(&self, query: AttrSet) -> Result<BoundOutcome, DeriveError> {
        self.current.bound(query)
    }

    /// The session's loaded dataset, if any.
    pub fn dataset(&self) -> Option<&Dataset> {
        self.dataset.as_deref()
    }

    /// Streams textual basket records (compact `"ACD"` / `"{}"` notation)
    /// into the session's dataset, creating it on first use.  Returns the
    /// number of baskets appended.
    ///
    /// Loading touches no premise or known state, so cached answers stay
    /// valid; only [`Session::adopt_discovered`] (which asserts premises)
    /// re-versions them.
    ///
    /// Snapshot isolation makes loading copy-on-write: the published
    /// snapshot always shares the dataset handle, so each call clones the
    /// dataset once before appending — `O(dataset)` per call, never per
    /// record — which is what keeps a reader mid-`mine` on an older
    /// snapshot safe from concurrent mutation.  Batch records into as few
    /// calls as the source allows; the per-call copy, not the record
    /// count, is the incremental cost.
    ///
    /// # Errors
    /// [`BasketParseError`] locating the first bad record (1-based) and its
    /// offending token.  Records before it are still appended (and
    /// published).
    pub fn load_records<I>(&mut self, records: I) -> Result<usize, BasketParseError>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let dataset = Arc::make_mut(
            self.dataset
                .get_or_insert_with(|| Arc::new(Dataset::new((*self.universe).clone()))),
        );
        let result = dataset.load(records);
        self.publish(Mutation::Dataset);
        result
    }

    /// Mines the minimal satisfied disjunctive constraints of the loaded
    /// dataset (as differential constraints, Proposition 6.3) within the
    /// budgets.  `None` when no dataset has been loaded.
    pub fn mine_dataset(&self, config: &MinerConfig) -> Option<Discovery> {
        self.current.mine_dataset(config)
    }

    /// Mines the dataset and asserts the discovery's non-redundant cover as
    /// premises, so subsequent `implies` and `bound` queries reason from
    /// what provably holds in the data.  `None` when no dataset has been
    /// loaded.
    pub fn adopt_discovered(&mut self, config: &MinerConfig) -> Option<AdoptOutcome> {
        let discovery = self.mine_dataset(config)?;
        let mut newly_asserted = 0usize;
        for constraint in &discovery.cover {
            let (_, added) = self.assert_constraint(constraint);
            newly_asserted += added as usize;
        }
        Some(AdoptOutcome {
            discovery,
            newly_asserted,
        })
    }

    /// Adds a premise.  Returns its id and `true`, or its existing id and
    /// `false` when the constraint (up to normalization) is already asserted.
    pub fn assert_constraint(&mut self, constraint: &DiffConstraint) -> (ConstraintId, bool) {
        if self.compaction_due() && self.interner.lookup(constraint).is_none() {
            self.compact_interner();
        }
        let id = self.interner.intern(constraint);
        if self.premise_ids.contains(&id) {
            return (id, false);
        }
        self.premise_ids.push(id);
        self.premises.push(constraint.clone());
        self.premise_props
            .push(prop_bridge::to_implication_constraint(constraint));
        if let Some(index) = self.fd_index.as_mut() {
            match fd_fragment::to_fd(constraint) {
                Some(fd) => index.push(fd),
                None => self.fd_index = None,
            }
        }
        self.premise_digest ^= constraint.fingerprint();
        self.publish(Mutation::Premises);
        (id, true)
    }

    /// Removes a premise.  Returns `false` when it was not asserted.
    pub fn retract_constraint(&mut self, constraint: &DiffConstraint) -> bool {
        let Some(id) = self.interner.lookup(constraint) else {
            return false;
        };
        self.retract_id(id)
    }

    /// Removes a premise by id.  Returns `false` when it was not asserted.
    pub fn retract_id(&mut self, id: ConstraintId) -> bool {
        let Some(pos) = self.premise_ids.iter().position(|&p| p == id) else {
            return false;
        };
        self.premise_ids.remove(pos);
        let removed = self.premises.remove(pos);
        self.premise_props.remove(pos);
        self.premise_digest ^= removed.fingerprint();
        match self.fd_index.as_mut() {
            // Still all-fragment: the index is aligned, drop the same slot.
            Some(index) => {
                index.remove(pos);
            }
            // The retraction may have removed the last wide premise; rebuild.
            None => self.rebuild_fd_index(),
        }
        self.publish(Mutation::Premises);
        true
    }

    /// Reduces the premise family to its redundancy-free minimal core
    /// ([`diffcon_analyze::minimal_core`]): every premise implied by the
    /// rest is retracted.  The reduction is answer-preserving — the dropped
    /// premises' lattices are covered by the core, so `implies` verdicts
    /// and every derived bound are unchanged (see
    /// [`diffcon_analyze::premise`] for the argument) — and the core's
    /// certificate is re-verified here before any premise is touched.
    pub fn apply_core(&mut self) -> Result<CoreApplied, &'static str> {
        let core = diffcon_analyze::minimal_core(&self.universe, &self.premises);
        if !diffcon_analyze::check_certificate(&self.universe, &core) {
            return Err("core certificate failed verification; premises unchanged");
        }
        let before = self.premises.len();
        for dropped in &core.dropped {
            self.retract_constraint(&dropped.premise);
        }
        Ok(CoreApplied {
            before,
            after: self.premises.len(),
            dropped: before - self.premises.len(),
        })
    }

    fn rebuild_fd_index(&mut self) {
        self.fd_index = self
            .premises
            .iter()
            .map(fd_fragment::to_fd)
            .collect::<Option<Vec<_>>>();
    }

    /// Returns `true` when the interner has outgrown its threshold *and*
    /// compaction would make progress.  The `2·|premises| + 16` floor
    /// guarantees geometric headroom between compactions, so assert/retract
    /// churn cannot trigger a compaction per mutation.
    fn compaction_due(&self) -> bool {
        let floor = self.premises.len().saturating_mul(2).saturating_add(16);
        self.interner.len() >= self.interner_compaction_threshold.max(floor)
    }

    /// Rebuilds the interner with only the current premises.  Ids are
    /// reassigned, so previously returned [`ConstraintId`]s become stale;
    /// the caches are unaffected (they are keyed on digest-versioned
    /// constraints, never on ids).
    fn compact_interner(&mut self) {
        let mut fresh = ConstraintInterner::new();
        for (slot, premise) in self.premises.iter().enumerate() {
            self.premise_ids[slot] = fresh.intern(premise);
        }
        self.interner = fresh;
        self.interner_compactions += 1;
    }

    /// Decides `premises ⊨ goal`, consulting and feeding the shared caches.
    ///
    /// Delegates to the current [`Snapshot`] — the session's serial read
    /// path and a concurrent reader's are the same code.
    pub fn implies(&self, goal: &DiffConstraint) -> QueryOutcome {
        self.current.implies(goal)
    }

    /// Decides `premises ⊨ goal` like [`Session::implies`], additionally
    /// reporting the snapshot epoch and a per-stage latency decomposition.
    pub fn explain(&self, goal: &DiffConstraint) -> crate::snapshot::ExplainOutcome {
        self.current.explain(goal)
    }

    /// Decides a whole batch of goals against the current premise set.
    ///
    /// In-batch duplicates are decided once and the cache-missing goals are
    /// decided in parallel on the rayon pool.  The returned outcomes are
    /// index-aligned with `goals`, and identical in answers to calling
    /// [`Session::implies`] goal-by-goal.
    pub fn implies_batch(&self, goals: &[DiffConstraint]) -> Vec<QueryOutcome> {
        self.current.implies_batch(goals)
    }

    /// A refutation witness for a non-implied goal: a set in `L(goal)` not
    /// covered by any premise lattice.  `None` means the goal is implied.
    pub fn refutation_witness(&self, goal: &DiffConstraint) -> Option<AttrSet> {
        self.current.refutation_witness(goal)
    }

    /// Produces a machine-checkable Figure 1 derivation of an implied goal
    /// (`None` when the goal is not implied).
    pub fn derive(&self, goal: &DiffConstraint) -> Option<Derivation> {
        self.current.derive(goal)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            planner: self.planner.stats(),
            answer_cache: self.caches.answer.stats(),
            lattice_cache: self.caches.lattice.stats(),
            prop_cache: self.caches.prop.stats(),
            bound_cache: self.caches.bound.stats(),
            cache_shards: self.caches.answer.shard_count(),
            answer_occupancy: self.caches.answer.occupancy(),
            route_latency_us: {
                let mut out = [(0u64, 0u64); 4];
                for (slot, kind) in diffcon::procedure::ALL_PROCEDURES.iter().enumerate() {
                    let latency = self.planner.latency(*kind);
                    if latency.count() > 0 {
                        out[slot] = (latency.p50() / 1_000, latency.p99() / 1_000);
                    }
                }
                out
            },
            knowns: self.knowns.len(),
            dataset_baskets: self.dataset.as_deref().map_or(0, Dataset::len),
            premises: self.premises.len(),
            interned: self.interner.len(),
            interner_compactions: self.interner_compactions,
            epoch: self.epoch,
        }
    }

    /// Drops all cached answers and derived data from the shared caches
    /// (premises and knowns are kept).  Affects every snapshot of this
    /// session, since the caches are a shared performance layer, never a
    /// source of truth.
    pub fn clear_caches(&self) {
        self.caches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diffcon::implication;
    use diffcon::procedure::ProcedureKind;
    use diffcon_bounds::problem::DeriveRoute;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    fn example_session() -> (Session, Vec<DiffConstraint>) {
        let u = Universe::of_size(4);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let mut s = Session::new(u);
        for p in &premises {
            s.assert_constraint(p);
        }
        (s, premises)
    }

    #[test]
    fn answers_match_the_one_shot_procedure() {
        let (s, premises) = example_session();
        let goals = parse(
            s.universe(),
            &["A -> {C}", "C -> {A}", "AB -> {B}", "A -> {B, CD}"],
        );
        for goal in &goals {
            let expected = implication::implies(s.universe(), &premises, goal);
            assert_eq!(s.implies(goal).implied, expected, "wrong on {goal:?}");
        }
    }

    #[test]
    fn repeat_queries_hit_the_answer_cache() {
        let (s, _) = example_session();
        let goal = DiffConstraint::parse("A -> {C}", s.universe()).unwrap();
        let first = s.implies(&goal);
        assert!(!first.cached);
        let second = s.implies(&goal);
        assert!(second.cached);
        assert_eq!(first.implied, second.implied);
        assert_eq!(first.procedure, second.procedure);
        assert_eq!(s.stats().answer_cache.hits, 1);
    }

    #[test]
    fn trivial_goals_short_circuit() {
        let (s, _) = example_session();
        let goal = DiffConstraint::parse("AB -> {B}", s.universe()).unwrap();
        let outcome = s.implies(&goal);
        assert!(outcome.implied);
        assert_eq!(outcome.procedure, None);
        assert_eq!(outcome.route_name(), "trivial");
        assert_eq!(s.stats().planner.trivial, 1);
    }

    #[test]
    fn premise_mutation_versions_the_answer_cache() {
        let (mut s, premises) = example_session();
        let goal = DiffConstraint::parse("A -> {C}", s.universe()).unwrap();
        assert!(s.implies(&goal).implied);
        // Retract B → {C}: transitivity is gone, the answer must flip even
        // though the stale cached entry still exists under the old digest.
        assert!(s.retract_constraint(&premises[1]));
        let outcome = s.implies(&goal);
        assert!(!outcome.implied);
        assert!(!outcome.cached);
        // Re-assert: the digest returns to its old value, so the original
        // answer is served straight from the cache again.
        s.assert_constraint(&premises[1]);
        let outcome = s.implies(&goal);
        assert!(outcome.implied);
        assert!(
            outcome.cached,
            "digest restoration should revalidate the cache"
        );
    }

    #[test]
    fn duplicate_assert_is_a_noop() {
        let (mut s, premises) = example_session();
        let digest = s.premise_digest();
        let epoch = s.stats().epoch;
        let (_, added) = s.assert_constraint(&premises[0]);
        assert!(!added);
        assert_eq!(s.premises().len(), 2);
        assert_eq!(s.premise_digest(), digest, "digest must not XOR-cancel");
        assert_eq!(s.stats().epoch, epoch, "no mutation, no republication");
    }

    #[test]
    fn fd_index_tracks_fragment_membership() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u);
        let narrow = parse(s.universe(), &["A -> {B}"]);
        let wide = parse(s.universe(), &["B -> {C, D}"]);
        s.assert_constraint(&narrow[0]);
        let goal = DiffConstraint::parse("A -> {B}", s.universe()).unwrap();
        // ⊤-trivial goals bypass procedures, so use a non-trivial FD goal.
        let fd_goal = DiffConstraint::parse("AC -> {B}", s.universe()).unwrap();
        assert_eq!(
            s.implies(&fd_goal).procedure,
            Some(ProcedureKind::FdFragment)
        );
        // A wide premise disables the fast path…
        s.assert_constraint(&wide[0]);
        let outcome = s.implies(&goal);
        assert_ne!(outcome.procedure, Some(ProcedureKind::FdFragment));
        // …and retracting it restores the rebuilt index.
        assert!(s.retract_constraint(&wide[0]));
        let fd_goal2 = DiffConstraint::parse("AD -> {B}", s.universe()).unwrap();
        assert_eq!(
            s.implies(&fd_goal2).procedure,
            Some(ProcedureKind::FdFragment)
        );
    }

    #[test]
    fn batch_agrees_with_serial_and_preserves_order() {
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "BC -> {D, EF}", "D -> {E}"]);
        let mut batch_session = Session::new(u.clone());
        let mut serial_session = Session::new(u.clone());
        for p in &premises {
            batch_session.assert_constraint(p);
            serial_session.assert_constraint(p);
        }
        let mut gen = diffcon::random::ConstraintGenerator::new(5, &u);
        let shape = diffcon::random::ConstraintShape::default();
        // Include duplicates so the batch exercises the answer cache.
        let mut goals = gen.constraint_set(40, &shape);
        let dup = goals[3].clone();
        goals.push(dup);
        let batch_outcomes = batch_session.implies_batch(&goals);
        assert_eq!(batch_outcomes.len(), goals.len());
        for (goal, outcome) in goals.iter().zip(&batch_outcomes) {
            assert_eq!(outcome.implied, serial_session.implies(goal).implied);
            assert_eq!(
                outcome.implied,
                implication::implies(&u, &premises, goal),
                "batch wrong on {}",
                goal.format(&u)
            );
        }
        // The duplicated goal must have been served from the cache.
        assert!(batch_outcomes.last().unwrap().cached);
    }

    #[test]
    fn witness_and_derivation_are_consistent_with_answers() {
        let (s, _) = example_session();
        let implied = DiffConstraint::parse("A -> {C}", s.universe()).unwrap();
        let refuted = DiffConstraint::parse("C -> {A}", s.universe()).unwrap();
        assert!(s.implies(&implied).implied);
        assert_eq!(s.refutation_witness(&implied), None);
        let proof = s.derive(&implied).expect("implied goals are derivable");
        assert!(proof.verify(s.universe(), s.premises()).is_ok());
        assert!(!s.implies(&refuted).implied);
        assert!(s.refutation_witness(&refuted).is_some());
        assert!(s.derive(&refuted).is_none());
    }

    #[test]
    fn tiny_caches_still_answer_correctly() {
        let u = Universe::of_size(5);
        let premises = parse(&u, &["A -> {B}", "B -> {C, DE}"]);
        let config = SessionConfig {
            answer_cache_capacity: 2,
            lattice_cache_capacity: 1,
            prop_cache_capacity: 1,
            ..SessionConfig::default()
        };
        let mut s = Session::with_config(u.clone(), config);
        for p in &premises {
            s.assert_constraint(p);
        }
        let mut gen = diffcon::random::ConstraintGenerator::new(77, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(30, &shape);
        // Query twice in interleaved order so eviction churns constantly.
        for goal in goals.iter().chain(goals.iter()) {
            assert_eq!(
                s.implies(goal).implied,
                implication::implies(&u, &premises, goal),
                "wrong under eviction on {}",
                goal.format(&u)
            );
        }
        assert!(s.stats().answer_cache.evictions > 0, "expected churn");
    }

    #[test]
    fn queries_never_grow_the_interner() {
        // The interner tracks asserted premises only; query traffic — the
        // unbounded input of a serving process — must not grow it.
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "B -> {C, DE}"]);
        let mut s = Session::new(u.clone());
        for p in &premises {
            s.assert_constraint(p);
        }
        let mut gen = diffcon::random::ConstraintGenerator::new(3, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(200, &shape);
        for goal in &goals {
            assert_eq!(
                s.implies(goal).implied,
                implication::implies(&u, &premises, goal),
                "wrong on {}",
                goal.format(&u)
            );
        }
        let stats = s.stats();
        assert_eq!(stats.interned, 2, "queries must not intern goals");
        assert_eq!(stats.interner_compactions, 0);
    }

    #[test]
    fn interner_compaction_bounds_assert_retract_churn() {
        let u = Universe::of_size(6);
        let config = SessionConfig {
            interner_compaction_threshold: 8,
            ..SessionConfig::default()
        };
        let mut s = Session::with_config(u.clone(), config);
        let mut gen = diffcon::random::ConstraintGenerator::new(3, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let churn = gen.constraint_set(100, &shape);
        let keeper = DiffConstraint::parse("A -> {B}", &u).unwrap();
        s.assert_constraint(&keeper);
        for c in &churn {
            if c.is_trivial() || *c == keeper {
                continue;
            }
            let (_, added) = s.assert_constraint(c);
            if added {
                assert!(s.retract_constraint(c));
            }
            // The bound holds throughout: with 1 premise the effective
            // threshold is the progress floor 2·1 + 16 = 18 (the configured
            // 8 lies below it), plus the entry just interned.
            assert!(s.stats().interned <= 19, "interner grew past its bound");
            // Answers always reflect exactly the surviving premise.
            let goal = DiffConstraint::parse("AC -> {B}", &u).unwrap();
            assert!(s.implies(&goal).implied);
        }
        let stats = s.stats();
        assert!(
            stats.interner_compactions >= 3,
            "expected repeated compaction, got {}",
            stats.interner_compactions
        );
        assert_eq!(stats.premises, 1);
        // Premise ids stay coherent after many compactions: mutation and
        // batch evaluation still work.
        assert!(s.retract_constraint(&keeper));
        assert_eq!(s.premises().len(), 0);
        let batch = s.implies_batch(&churn[..10]);
        for (goal, outcome) in churn[..10].iter().zip(&batch) {
            assert_eq!(outcome.implied, implication::implies(&u, &[], goal));
        }
    }

    #[test]
    fn large_premise_sets_do_not_thrash_compaction() {
        // A premise count at/above the configured threshold must not trigger
        // a compaction per assertion (the progress floor kicks in).
        let u = Universe::of_size(6);
        let config = SessionConfig {
            interner_compaction_threshold: 4,
            ..SessionConfig::default()
        };
        let mut s = Session::with_config(u.clone(), config);
        let mut gen = diffcon::random::ConstraintGenerator::new(9, &u);
        let shape = diffcon::random::ConstraintShape::default();
        for p in &gen.constraint_set(10, &shape) {
            s.assert_constraint(p);
        }
        let goal = gen.constraint(&shape);
        s.implies(&goal);
        let warm = s.implies(&goal);
        assert!(warm.cached, "repeat query must stay cached");
        assert_eq!(s.stats().interner_compactions, 0);
    }

    #[test]
    fn bound_queries_use_constraints_knowns_and_the_cache() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u.clone());
        let premise = DiffConstraint::parse("A -> {B}", &u).unwrap();
        s.assert_constraint(&premise);
        assert!(s.set_known(u.parse_set("A").unwrap(), 40.0));
        let ab = u.parse_set("AB").unwrap();
        // The acceptance scenario: the constraint pins σ(AB) = σ(A).
        let first = s.bound(ab).unwrap();
        assert!(!first.cached);
        assert_eq!(first.route, DeriveRoute::Propagation);
        assert_eq!(first.route_name(), "propagation");
        assert!(first.interval.is_exact());
        assert_eq!(first.interval.lo, 40.0);
        // Second ask is a cache hit with the same interval.
        let second = s.bound(ab).unwrap();
        assert!(second.cached);
        assert_eq!(second.route_name(), "cached");
        assert_eq!(second.interval, first.interval);
        let stats = s.stats();
        assert_eq!(stats.planner.bounds.propagation, 1);
        assert_eq!(stats.planner.bounds.cache_hits, 1);
        assert_eq!(stats.knowns, 1);
        // Retracting the premise widens the interval (and misses the cache);
        // re-asserting revalidates the original cached answer.
        assert!(s.retract_constraint(&premise));
        let loose = s.bound(ab).unwrap();
        assert!(!loose.cached);
        assert_eq!(loose.interval.lo, 0.0);
        assert_eq!(loose.interval.hi, 40.0);
        s.assert_constraint(&premise);
        assert!(s.bound(ab).unwrap().cached);
        // Forgetting the known value widens again; re-knowing revalidates.
        assert!(s.forget_known(u.parse_set("A").unwrap()));
        let unknown = s.bound(ab).unwrap();
        assert_eq!(unknown.interval.hi, f64::INFINITY);
        s.set_known(u.parse_set("A").unwrap(), 40.0);
        assert!(s.bound(ab).unwrap().cached);
    }

    #[test]
    fn retraction_changes_the_versioned_cache_key() {
        use crate::cache::version_salt;
        let (mut s, premises) = example_session();
        let answer_salt = version_salt(s.premise_digest(), 0);
        let bound_salt = version_salt(s.premise_digest(), s.knowns_digest());
        assert!(s.retract_constraint(&premises[1]));
        assert_ne!(
            version_salt(s.premise_digest(), 0),
            answer_salt,
            "retraction must change the answer-cache key salt"
        );
        assert_ne!(
            version_salt(s.premise_digest(), s.knowns_digest()),
            bound_salt,
            "retraction must change the bound-cache key salt"
        );
        // Re-asserting restores the salt exactly (instant revalidation).
        s.assert_constraint(&premises[1]);
        assert_eq!(version_salt(s.premise_digest(), 0), answer_salt);
        // Knowns version the bound salt but not the answer salt.
        let a = s.universe().parse_set("A").unwrap();
        s.set_known(a, 1.0);
        assert_eq!(version_salt(s.premise_digest(), 0), answer_salt);
        assert_ne!(
            version_salt(s.premise_digest(), s.knowns_digest()),
            bound_salt
        );
    }

    #[test]
    fn known_replacement_and_digest_restoration() {
        let u = Universe::of_size(3);
        let mut s = Session::new(u.clone());
        let a = u.parse_set("A").unwrap();
        let digest0 = s.knowns_digest();
        assert!(s.set_known(a, 5.0));
        let digest5 = s.knowns_digest();
        assert!(!s.set_known(a, 7.0), "replacement is not an addition");
        assert_eq!(s.knowns().len(), 1);
        assert_ne!(s.knowns_digest(), digest5);
        assert!(!s.set_known(a, 5.0));
        assert_eq!(s.knowns_digest(), digest5, "digest must restore exactly");
        assert!(s.forget_known(a));
        assert_eq!(s.knowns_digest(), digest0);
        assert!(!s.forget_known(a), "double forget reports absence");
    }

    #[test]
    fn infeasible_knowns_surface_and_are_not_cached() {
        let u = Universe::of_size(3);
        let mut s = Session::new(u.clone());
        s.set_known(u.parse_set("A").unwrap(), 3.0);
        s.set_known(u.parse_set("AB").unwrap(), 9.0);
        let q = u.parse_set("ABC").unwrap();
        assert_eq!(s.bound(q), Err(DeriveError::Infeasible));
        // Repairing the state makes the same query answerable.
        s.set_known(u.parse_set("AB").unwrap(), 2.0);
        let b = s.bound(q).unwrap();
        assert!(!b.cached);
        assert_eq!(b.interval.lo, 0.0);
        assert_eq!(b.interval.hi, 2.0);
    }

    #[test]
    fn oversized_universes_fall_back_to_the_relaxed_route() {
        let u = Universe::of_size(26);
        let mut s = Session::new(u.clone());
        s.set_known(AttrSet::EMPTY, 100.0);
        s.set_known(u.parse_set("ABCD").unwrap(), 30.0);
        let b = s.bound(u.parse_set("AB").unwrap()).unwrap();
        assert_eq!(b.route, DeriveRoute::Relaxed);
        assert_eq!(b.interval.lo, 30.0);
        assert_eq!(b.interval.hi, 100.0);
        assert_eq!(s.stats().planner.bounds.relaxed, 1);
    }

    #[test]
    fn load_mine_adopt_tightens_bounds() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u.clone());
        assert!(s.dataset().is_none());
        assert!(s.mine_dataset(&MinerConfig::default()).is_none());
        assert!(s.adopt_discovered(&MinerConfig::default()).is_none());
        // Every basket containing A contains B: the data satisfies A → {B}.
        let added = s.load_records("AB;ABC;B;C;BC".split(';')).unwrap();
        assert_eq!(added, 5);
        assert_eq!(s.stats().dataset_baskets, 5);
        let ab = u.parse_set("AB").unwrap();
        s.set_known(u.parse_set("A").unwrap(), 2.0);
        let before = s.bound(ab).unwrap().interval;
        let outcome = s.adopt_discovered(&MinerConfig::default()).unwrap();
        assert!(outcome.newly_asserted > 0);
        assert_eq!(s.premises().len(), outcome.newly_asserted);
        // Adopted premises hold on the data, so σ(AB) = σ(A) is now pinned.
        let after = s.bound(ab).unwrap().interval;
        assert!(
            after.lo >= before.lo && after.hi <= before.hi,
            "adoption widened the bound"
        );
        assert!(after.is_exact());
        assert_eq!(after.lo, 2.0);
        // Re-adopting asserts nothing new.
        let again = s.adopt_discovered(&MinerConfig::default()).unwrap();
        assert_eq!(again.newly_asserted, 0);
    }

    #[test]
    fn load_errors_locate_records_and_keep_the_session_usable() {
        let u = Universe::of_size(3);
        let mut s = Session::new(u);
        let err = s.load_records(["AB", "AZ"]).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token, "Z");
        // The record before the failure was ingested.
        assert_eq!(s.dataset().unwrap().len(), 1);
        assert_eq!(s.load_records(["C"]).unwrap(), 1);
        assert_eq!(s.stats().dataset_baskets, 2);
    }

    #[test]
    fn stats_reflect_activity() {
        let (s, _) = example_session();
        let goals = parse(s.universe(), &["A -> {C}", "C -> {A}"]);
        for g in &goals {
            s.implies(g);
            s.implies(g);
        }
        let stats = s.stats();
        assert_eq!(stats.premises, 2);
        assert_eq!(stats.interned, 2);
        assert!(stats.cache_shards >= 1);
        assert_eq!(stats.planner.total_queries(), 4);
        assert_eq!(stats.answer_cache.hits, 2);
        s.clear_caches();
        let g = &goals[0];
        assert!(!s.implies(g).cached);
    }
}
