//! Closed real intervals with infinite endpoints, and the sum accumulator the
//! derivation passes use to combine per-variable bounds soundly.
//!
//! Endpoints are `f64` with `±∞` standing for "unbounded on that side".  The
//! workloads this crate serves (supports of itemsets, probabilistic masses)
//! take integer or small rational values, so all finite arithmetic here is
//! exact; infinity is handled symbolically by [`SumAcc`], which counts
//! infinite contributions instead of adding them (adding `+∞` and later
//! subtracting one element back out would otherwise poison the sum).

use std::fmt;

/// A closed interval `[lo, hi]`, possibly unbounded on either side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// The lower endpoint (`-∞` when unbounded below).
    pub lo: f64,
    /// The upper endpoint (`+∞` when unbounded above).
    pub hi: f64,
}

impl Interval {
    /// The whole real line `(-∞, +∞)`.
    pub const UNBOUNDED: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if an endpoint is NaN or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval endpoints must not be NaN"
        );
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single point `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// The nonnegative half-line `[0, +∞)`.
    pub fn nonnegative() -> Interval {
        Interval::new(0.0, f64::INFINITY)
    }

    /// Returns `true` iff the interval pins a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Width `hi − lo` (`+∞` when unbounded).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Returns `true` iff `v` lies inside (within `tol` of an endpoint).
    pub fn contains(&self, v: f64, tol: f64) -> bool {
        v >= self.lo - tol && v <= self.hi + tol
    }

    /// Returns `true` iff this interval lies inside `other` (within `tol`).
    pub fn within(&self, other: &Interval, tol: f64) -> bool {
        self.lo >= other.lo - tol && self.hi <= other.hi + tol
    }

    /// The intersection with `other`, or `None` when they are disjoint by
    /// more than `tol` (an infeasibility witness for the caller).
    pub fn intersect(&self, other: &Interval, tol: f64) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi + tol {
            None
        } else {
            // Snap away sub-tolerance inversions produced by rounding.
            Some(Interval { lo, hi: hi.max(lo) })
        }
    }

    /// The interval shifted by `c`: `[lo + c, hi + c]`.
    pub fn shift(&self, c: f64) -> Interval {
        Interval {
            lo: self.lo + c,
            hi: self.hi + c,
        }
    }

    /// The reflected interval `c − [lo, hi] = [c − hi, c − lo]`.
    pub fn reflect(&self, c: f64) -> Interval {
        Interval {
            lo: c - self.hi,
            hi: c - self.lo,
        }
    }

    /// Formats one endpoint for the wire protocol: integers without a
    /// fractional part, `inf`/`-inf` for unbounded ends.
    pub fn format_endpoint(v: f64) -> String {
        if v == f64::INFINITY {
            "inf".to_string()
        } else if v == f64::NEG_INFINITY {
            "-inf".to_string()
        } else if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]",
            Interval::format_endpoint(self.lo),
            Interval::format_endpoint(self.hi)
        )
    }
}

/// A sum of interval endpoints that tracks infinite contributions by count,
/// so removing one term back out of the total stays exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumAcc {
    finite: f64,
    pos_inf: usize,
    neg_inf: usize,
}

impl SumAcc {
    /// The empty sum.
    pub fn new() -> SumAcc {
        SumAcc::default()
    }

    /// Adds one endpoint.
    pub fn add(&mut self, v: f64) {
        if v == f64::INFINITY {
            self.pos_inf += 1;
        } else if v == f64::NEG_INFINITY {
            self.neg_inf += 1;
        } else {
            self.finite += v;
        }
    }

    /// The total (`±∞` when any infinite term was added; a sum containing
    /// both signs of infinity cannot arise from endpoint sums of one side).
    pub fn total(&self) -> f64 {
        debug_assert!(
            self.pos_inf == 0 || self.neg_inf == 0,
            "endpoint sums never mix +∞ and -∞"
        );
        if self.pos_inf > 0 {
            f64::INFINITY
        } else if self.neg_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.finite
        }
    }

    /// The total with one previously added endpoint `v` removed.
    pub fn total_without(&self, v: f64) -> f64 {
        let (pos, neg, finite) = if v == f64::INFINITY {
            (self.pos_inf - 1, self.neg_inf, self.finite)
        } else if v == f64::NEG_INFINITY {
            (self.pos_inf, self.neg_inf - 1, self.finite)
        } else {
            (self.pos_inf, self.neg_inf, self.finite - v)
        };
        if pos > 0 {
            f64::INFINITY
        } else if neg > 0 {
            f64::NEG_INFINITY
        } else {
            finite
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_predicates() {
        let i = Interval::new(1.0, 4.0);
        assert!(!i.is_exact());
        assert_eq!(i.width(), 3.0);
        assert!(i.contains(1.0, 0.0));
        assert!(i.contains(4.0, 0.0));
        assert!(!i.contains(4.5, 0.0));
        assert!(Interval::point(2.0).is_exact());
        assert!(Interval::UNBOUNDED.contains(1e300, 0.0));
        assert_eq!(Interval::nonnegative().lo, 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, f64::INFINITY);
        assert_eq!(a.intersect(&b, 0.0), Some(Interval::new(3.0, 5.0)));
        let c = Interval::new(6.0, 7.0);
        assert_eq!(a.intersect(&c, 0.0), None);
        // Sub-tolerance gaps snap to a point instead of failing.
        let d = Interval::new(5.0 + 1e-12, 9.0);
        let snapped = a.intersect(&d, 1e-9).unwrap();
        assert!(snapped.is_exact());
    }

    #[test]
    fn shift_and_reflect() {
        let i = Interval::new(1.0, 3.0);
        assert_eq!(i.shift(2.0), Interval::new(3.0, 5.0));
        assert_eq!(i.reflect(10.0), Interval::new(7.0, 9.0));
        let half = Interval::new(2.0, f64::INFINITY);
        assert_eq!(half.reflect(10.0), Interval::new(f64::NEG_INFINITY, 8.0));
    }

    #[test]
    fn endpoint_formatting() {
        assert_eq!(Interval::format_endpoint(40.0), "40");
        assert_eq!(Interval::format_endpoint(-2.5), "-2.5");
        assert_eq!(Interval::format_endpoint(f64::INFINITY), "inf");
        assert_eq!(Interval::format_endpoint(f64::NEG_INFINITY), "-inf");
        assert_eq!(Interval::new(0.0, 40.0).to_string(), "[0, 40]");
    }

    #[test]
    fn sum_accumulator_handles_infinities() {
        let mut s = SumAcc::new();
        s.add(2.0);
        s.add(f64::INFINITY);
        s.add(3.0);
        assert_eq!(s.total(), f64::INFINITY);
        assert_eq!(s.total_without(f64::INFINITY), 5.0);
        assert_eq!(s.total_without(2.0), f64::INFINITY);
        let mut t = SumAcc::new();
        t.add(1.0);
        t.add(2.0);
        assert_eq!(t.total(), 3.0);
        assert_eq!(t.total_without(1.0), 2.0);
    }
}
