//! Minimal plain-text table reporting, plus a machine-readable JSON emitter.
//!
//! Criterion measures *time*; the experiments also need to report *counts*
//! (lattice sizes, representation sizes, proof sizes, agreement rates).  Each
//! bench builds a [`Table`] during setup and prints it once to stderr, so a
//! `cargo bench` run reproduces both the timing series and the count tables
//! recorded in `EXPERIMENTS.md`.
//!
//! For trend tracking across commits the human-readable tables are not
//! enough: a [`JsonReport`] collects the same tables plus scalar metrics and
//! writes them as a `BENCH_<name>.json` file at the repository root
//! ([`JsonReport::write_to_repo_root`]), so the perf trajectory is diffable
//! and scriptable without parsing stderr.  The JSON is hand-rolled (the
//! build is hermetic, no serde): an object
//! `{"bench": …, "metrics": {…}, "tables": [{caption, header, rows}, …]}`
//! where cells that parse as finite numbers are emitted as numbers.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned table with a caption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    caption: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given caption and column headers.
    pub fn new<S: Into<String>, I, T>(caption: S, header: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        Table {
            caption: caption.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push_row<I, T>(&mut self, row: I)
    where
        I: IntoIterator<Item = T>,
        T: ToString,
    {
        let row: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The caption.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows (stringified cells).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Returns `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table to stderr (used by the benches so the output interleaves
    /// with Criterion's own reporting without polluting stdout).
    pub fn eprint(&self) {
        eprintln!("{self}");
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.caption)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// A machine-readable bench report: named scalar metrics plus count tables,
/// serialized as JSON to `BENCH_<name>.json` at the repository root.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonReport {
    bench: String,
    metrics: Vec<(String, f64)>,
    tables: Vec<Table>,
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite `f64` as a valid JSON number (Rust's `Display` for
/// finite floats is JSON-compatible: no leading `+`, no bare `.5`, no
/// exponent-only forms), non-finite values as quoted strings.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        format!("\"{}\"", json_escape(&v.to_string()))
    }
}

/// Renders one cell: a normalized JSON number when it parses as a finite
/// `f64` (re-formatted, since raw cell text like `+3` or `.5` parses but is
/// not valid JSON), a JSON string otherwise.
fn json_cell(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => json_number(v),
        _ => format!("\"{}\"", json_escape(cell)),
    }
}

impl JsonReport {
    /// An empty report for the named bench.
    pub fn new(bench: impl Into<String>) -> Self {
        JsonReport {
            bench: bench.into(),
            metrics: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Records one scalar metric (later entries with the same name are kept
    /// as separate key/value pairs; use distinct names).
    pub fn push_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Attaches a count table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Serializes the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": \"{}\",\n",
            json_escape(&self.bench)
        ));
        out.push_str("  \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                json_escape(name),
                json_number(*value)
            ));
        }
        out.push_str(if self.metrics.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"tables\": [");
        for (t, table) in self.tables.iter().enumerate() {
            if t > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"caption\": \"{}\",\n      \"header\": [{}],\n      \"rows\": [",
                json_escape(table.caption()),
                table
                    .header()
                    .iter()
                    .map(|h| format!("\"{}\"", json_escape(h)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            for (r, row) in table.rows().iter().enumerate() {
                if r > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        [{}]",
                    row.iter()
                        .map(|c| json_cell(c))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            out.push_str(if table.rows().is_empty() {
                "]\n    }"
            } else {
                "\n      ]\n    }"
            });
        }
        out.push_str(if self.tables.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Writes the report as `<filename>` at the repository root (resolved
    /// relative to this crate's manifest, so it lands in the same place no
    /// matter where `cargo bench` is invoked from).  Returns the path
    /// written.
    pub fn write_to_repo_root(&self, filename: &str) -> io::Result<PathBuf> {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join(filename);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builds_and_formats() {
        let mut t = Table::new("demo", ["n", "value"]);
        assert!(t.is_empty());
        t.push_row([1, 10]);
        t.push_row([2, 20]);
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("value"));
        assert!(text.contains("20"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", ["a", "b"]);
        t.push_row([1]);
    }

    #[test]
    fn json_report_serializes_metrics_and_tables() {
        let mut table = Table::new("counts", ["n", "label"]);
        table.push_row([42.to_string(), "mixed \"cell\"".to_string()]);
        let mut report = JsonReport::new("demo_bench");
        report.push_metric("speedup", 3.5);
        report.push_table(table);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"demo_bench\""));
        assert!(json.contains("\"speedup\": 3.5"));
        // Numeric cells are numbers, strings are escaped strings.
        assert!(json.contains("[42, \"mixed \\\"cell\\\"\"]"), "got: {json}");
        // Structure sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_json_report_is_well_formed() {
        let json = JsonReport::new("empty").to_json();
        assert!(json.contains("\"metrics\": {}"));
        assert!(json.contains("\"tables\": []"));
    }

    #[test]
    fn numeric_lookalike_cells_and_nonfinite_metrics_stay_valid_json() {
        let mut table = Table::new("edge", ["cell"]);
        // All of these parse as f64 but are not valid JSON numbers verbatim.
        table.push_row(["+3"]);
        table.push_row([".5"]);
        table.push_row(["007"]);
        let mut report = JsonReport::new("edge");
        report.push_metric("bad_ratio", f64::INFINITY);
        report.push_metric("missing", f64::NAN);
        report.push_table(table);
        let json = report.to_json();
        assert!(json.contains("[3]"), "got: {json}");
        assert!(json.contains("[0.5]"), "got: {json}");
        assert!(json.contains("[7]"), "got: {json}");
        assert!(json.contains("\"bad_ratio\": \"inf\""), "got: {json}");
        assert!(json.contains("\"missing\": \"NaN\""), "got: {json}");
        // No bare non-JSON tokens survive.
        assert!(!json.contains(": inf"), "got: {json}");
        assert!(!json.contains("+3"), "got: {json}");
    }
}
