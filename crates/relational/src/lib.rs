//! # relational — relational-database substrate
//!
//! Section 7 of *Differential Constraints* (Sayrafi & Van Gucht, PODS 2005)
//! connects differential constraints to relational dependency theory: for a
//! nonempty relation `r` with a probability distribution `p`, the *Simpson
//! function* `simpson_{r,p}(X) = Σ_x p_X(x)²` is a frequency function
//! (Proposition 7.2), and it satisfies the differential constraint `X → 𝒴` iff
//! `r` satisfies the *positive boolean dependency*
//! `∀t,t′: t[X] = t′[X] ⇒ ⋁_{Y∈𝒴} t[Y] = t′[Y]` (Proposition 7.3).  Functional
//! dependencies are the single-member special case, which is why the paper's
//! conclusion observes that the singleton-right-hand-side fragment of the
//! implication problem is decidable in polynomial time.
//!
//! This crate provides:
//!
//! * [`relation`] — relations (sets of tuples) over a fixed attribute arity,
//!   with projections and agree-set machinery;
//! * [`distribution`] — probability distributions over the tuples of a
//!   relation and their marginals;
//! * [`simpson`] — the Simpson function, its density (Proposition 7.2), and the
//!   Gini/Simpson diversity interpretation;
//! * [`shannon`] — the Shannon-entropy measure of Lee/Malvestuto/Dalkilic–
//!   Robertson, implemented for comparison (its implication problem is left
//!   open by the paper);
//! * [`fd`] — functional dependencies, attribute-set closure, and the
//!   polynomial-time implication procedure;
//! * [`boolean_dep`] — positive boolean dependencies `X ⇒bool 𝒴` and their
//!   satisfaction check;
//! * [`armstrong`] — two-tuple witness relations used to refute implications
//!   (the relational counterpart of the counterexample function in the proof of
//!   Theorem 3.5);
//! * [`generator`] — random relations and distributions, including relations
//!   with planted dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod armstrong;
pub mod boolean_dep;
pub mod distribution;
pub mod fd;
pub mod generator;
pub mod relation;
pub mod shannon;
pub mod simpson;

pub use boolean_dep::BooleanDependency;
pub use distribution::ProbabilisticRelation;
pub use fd::FunctionalDependency;
pub use relation::{Relation, Tuple};
