//! E8 — Theorem 8.1: all formulations of the implication problem agree.
//!
//! For randomly generated premise sets `C` and goals `X → 𝒴` over small
//! universes, the following verdicts must coincide:
//!
//! 1. `C ⊨ X → 𝒴` (lattice procedure, Theorem 3.5);
//! 2. `C ⊨_positive(S)/support(S) X → 𝒴` (single-basket counterexamples, Prop. 6.4);
//! 3. `C ⊨_simpson(S) X → 𝒴` (Armstrong-style relation, Cor. 7.4);
//! 4. `Cprop ⊨ X ⇒prop 𝒴` (SAT refutation and exhaustive minsets, Prop. 5.4);
//! 5. `Cdisj ⊨ X ⇒disj 𝒴` (disjunctive formulation);
//! 6. `Cboolean ⊨ X ⇒bool 𝒴` (boolean-dependency formulation);
//! 7. `C ⊢ X → 𝒴` (the inference system, Theorem 4.8);
//! 8. `L(C) ⊇ L(X, 𝒴)` materialized explicitly;
//! 9. the purely semantic procedure over point-mass counterexamples.

use diffcon::random::{random_instance, ConstraintShape};
use diffcon::{fis_bridge, implication, inference, prop_bridge, rel_bridge, DiffConstraint};
use setlat::{lattice, Universe};

fn all_verdicts(
    u: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> Vec<(&'static str, bool)> {
    let parts: Vec<(setlat::AttrSet, setlat::Family)> =
        premises.iter().map(|c| (c.lhs, c.rhs.clone())).collect();
    let lc = lattice::lattice_union(u, &parts);
    let explicit_containment = goal.lattice(u).iter().all(|m| lc.binary_search(m).is_ok());
    let disj_premises: Vec<_> = premises.iter().map(fis_bridge::to_disjunctive).collect();
    let bool_premises: Vec<_> = premises
        .iter()
        .map(rel_bridge::to_boolean_dependency)
        .collect();
    vec![
        ("lattice (Thm 3.5)", implication::implies(u, premises, goal)),
        (
            "semantic point-mass",
            implication::implies_semantic(u, premises, goal),
        ),
        (
            "support(S) (Prop 6.4)",
            fis_bridge::implies_over_supports(u, premises, goal),
        ),
        (
            "propositional SAT (Prop 5.4)",
            prop_bridge::implies_sat(u, premises, goal),
        ),
        (
            "propositional exhaustive",
            prop_bridge::implies_prop_exhaustive(u, premises, goal),
        ),
        (
            "disjunctive implication",
            fis_bridge::disjunctive_implies(u, &disj_premises, &fis_bridge::to_disjunctive(goal)),
        ),
        (
            "boolean-dependency implication",
            rel_bridge::boolean_implies(
                u,
                &bool_premises,
                &rel_bridge::to_boolean_dependency(goal),
            ),
        ),
        (
            "inference system (Thm 4.8)",
            inference::derivable(u, premises, goal),
        ),
        ("explicit L(C) ⊇ L(X,𝒴)", explicit_containment),
    ]
}

#[test]
fn theorem_8_1_on_random_instances() {
    let u = Universe::of_size(5);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 2,
        max_member_size: 2,
        allow_trivial: false,
    };
    let mut implied_count = 0;
    let mut refuted_count = 0;
    for seed in 0..60u64 {
        let (premises, goal) = random_instance(seed, &u, 3, &shape, 0.5);
        let verdicts = all_verdicts(&u, &premises, &goal);
        let reference = verdicts[0].1;
        for (name, verdict) in &verdicts {
            assert_eq!(
                *verdict, reference,
                "seed {seed}: procedure {name:?} disagrees with the lattice procedure \
                 (premises {premises:?}, goal {goal:?})"
            );
        }
        // simpson(S) agrees with everything else except in the vacuous corner
        // where some premise has an empty right-hand side (no Simpson model
        // exists and the implication holds vacuously) — the one caveat to the
        // paper's Theorem 8.1 this reproduction records in EXPERIMENTS.md.
        let simpson = rel_bridge::implies_over_simpson(&u, &premises, &goal);
        if rel_bridge::vacuous_over_relations(&premises) {
            assert!(simpson, "vacuous simpson implication must hold");
        } else {
            assert_eq!(simpson, reference, "seed {seed}: simpson(S) disagrees");
        }
        if reference {
            implied_count += 1;
        } else {
            refuted_count += 1;
        }
    }
    assert!(
        implied_count > 5,
        "workload should contain implied instances"
    );
    assert!(
        refuted_count > 5,
        "workload should contain refuted instances"
    );
}

#[test]
fn theorem_8_1_on_paper_instances() {
    let u = Universe::of_size(4);
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (vec!["A -> {B}", "B -> {C}"], "A -> {C}"),
        (vec!["A -> {B}", "B -> {C}"], "C -> {A}"),
        (vec!["A -> {BC, CD}", "C -> {D}"], "AB -> {D}"),
        (vec!["A -> {B, CD}"], "A -> {B}"),
        (vec!["A -> {B, CD}"], "AC -> {B, D}"),
        (vec![], "AB -> {B}"),
        (vec![], "A -> {}"),
        (vec![" -> {A}", " -> {B}", "AB -> {}"], " -> {}"),
    ];
    for (premise_texts, goal_text) in cases {
        let premises: Vec<DiffConstraint> = premise_texts
            .iter()
            .map(|t| DiffConstraint::parse(t, &u).unwrap())
            .collect();
        let goal = DiffConstraint::parse(goal_text, &u).unwrap();
        let verdicts = all_verdicts(&u, &premises, &goal);
        let reference = verdicts[0].1;
        for (name, verdict) in &verdicts {
            assert_eq!(
                *verdict, reference,
                "procedure {name:?} disagrees on {goal_text} from {premise_texts:?}"
            );
        }
        let simpson = rel_bridge::implies_over_simpson(&u, &premises, &goal);
        if rel_bridge::vacuous_over_relations(&premises) {
            assert!(simpson);
        } else {
            assert_eq!(simpson, reference, "simpson(S) disagrees on {goal_text}");
        }
    }
}

#[test]
fn fragment_instances_also_agree_with_polynomial_procedure() {
    // For single-member instances the FD-fragment procedure joins the party.
    use diffcon::fd_fragment;
    let u = Universe::of_size(6);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 1,
        max_member_size: 2,
        allow_trivial: false,
    };
    for seed in 100..140u64 {
        let (premises, goal) = random_instance(seed, &u, 4, &shape, 0.4);
        if !fd_fragment::set_in_fragment(&premises) || !fd_fragment::in_fragment(&goal) {
            continue;
        }
        let general = implication::implies(&u, &premises, &goal);
        assert_eq!(general, fd_fragment::implies_polynomial(&premises, &goal));
        assert_eq!(general, prop_bridge::implies_sat(&u, &premises, &goal));
        assert_eq!(general, inference::derivable(&u, &premises, &goal));
    }
}
