//! Property-based tests for the relational substrate.

use proptest::prelude::*;
use relational::boolean_dep::BooleanDependency;
use relational::distribution::ProbabilisticRelation;
use relational::fd::{self, FunctionalDependency};
use relational::relation::Relation;
use relational::{shannon, simpson};
use setlat::{AttrSet, Family, Universe};

const N: usize = 4;

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0u32..3, N), 1..10)
        .prop_map(|tuples| Relation::from_tuples(N, tuples))
}

fn arb_distribution() -> impl Strategy<Value = ProbabilisticRelation> {
    (arb_relation(), any::<u64>()).prop_map(|(r, seed)| {
        // Deterministic strictly-positive weights derived from the seed.
        let weights: Vec<f64> = (0..r.len())
            .map(|i| {
                let x = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
                0.1 + ((x >> 33) % 1000) as f64 / 1000.0
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        ProbabilisticRelation::new(r, probs)
    })
}

fn arb_set() -> impl Strategy<Value = AttrSet> {
    (0u64..(1u64 << N)).prop_map(AttrSet::from_bits)
}

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::collection::vec((1u64..(1u64 << N)).prop_map(AttrSet::from_bits), 0..3)
        .prop_map(Family::from_sets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Marginals always sum to 1, for every attribute set.
    #[test]
    fn marginals_are_distributions(pr in arb_distribution(), x in arb_set()) {
        let total: f64 = pr.marginal(x).values().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Proposition 7.2: the Simpson density is nonnegative and matches the
    /// closed-form double sum over tuple pairs.
    #[test]
    fn simpson_density_nonnegative_and_closed_form(pr in arb_distribution()) {
        let density = simpson::simpson_density(&pr);
        let u = Universe::of_size(N);
        for x in u.all_subsets() {
            let closed = simpson::simpson_density_at_closed_form(&pr, x);
            prop_assert!((density.get(x) - closed).abs() < 1e-6);
            prop_assert!(closed >= -1e-9);
        }
    }

    /// The Simpson function is antitone in the attribute set and bounded by (0, 1].
    #[test]
    fn simpson_is_antitone_and_bounded(pr in arb_distribution(), x in arb_set()) {
        let value = simpson::simpson_at(&pr, x);
        prop_assert!(value > 0.0 && value <= 1.0 + 1e-9);
        for i in 0..N {
            if !x.contains(i) {
                prop_assert!(simpson::simpson_at(&pr, x.with(i)) <= value + 1e-9);
            }
        }
    }

    /// Shannon entropy is monotone in the attribute set and zero on ∅.
    #[test]
    fn entropy_is_monotone(pr in arb_distribution(), x in arb_set()) {
        prop_assert!(shannon::entropy_at(&pr, AttrSet::EMPTY).abs() < 1e-9);
        let h = shannon::entropy_at(&pr, x);
        prop_assert!(h >= -1e-9);
        for i in 0..N {
            if !x.contains(i) {
                prop_assert!(shannon::entropy_at(&pr, x.with(i)) + 1e-9 >= h);
            }
        }
    }

    /// An FD holds iff the conditional entropy vanishes iff the boolean-dependency
    /// translation holds (three ways of saying the same thing about a relation).
    #[test]
    fn fd_criteria_agree(r in arb_relation(), lhs in arb_set(), rhs in arb_set()) {
        let pr = ProbabilisticRelation::uniform(r.clone());
        let fd = FunctionalDependency::new(lhs, rhs);
        let by_definition = fd.satisfied_by(&r);
        let by_entropy = shannon::conditional_entropy(&pr, lhs, rhs).abs() < 1e-9;
        let by_boolean = BooleanDependency::from_fd(lhs, rhs).satisfied_by(&r);
        prop_assert_eq!(by_definition, by_entropy);
        prop_assert_eq!(by_definition, by_boolean);
    }

    /// Closure-based FD implication is sound on the relation it was mined from:
    /// anything implied by the satisfied FDs is itself satisfied.
    #[test]
    fn fd_implication_is_sound(r in arb_relation(), lhs in arb_set(), attr in 0usize..N) {
        let mined = fd::mine_fds(&r, N);
        let goal = FunctionalDependency::new(lhs, AttrSet::singleton(attr));
        if fd::implies(&mined, &goal) {
            prop_assert!(goal.satisfied_by(&r));
        }
    }

    /// Attribute closure is extensive, monotone and idempotent.
    #[test]
    fn closure_is_a_closure_operator(r in arb_relation(), x in arb_set(), y in arb_set()) {
        let fds = fd::mine_fds(&r, N);
        let cx = fd::attribute_closure(x, &fds);
        prop_assert!(x.is_subset(cx));
        prop_assert_eq!(fd::attribute_closure(cx, &fds), cx);
        if x.is_subset(y) {
            prop_assert!(cx.is_subset(fd::attribute_closure(y, &fds)));
        }
    }

    /// Trivial boolean dependencies always hold; the empty-family dependency holds
    /// only on the empty relation (which `arb_relation` never produces).
    #[test]
    fn boolean_dependency_degenerate_cases(r in arb_relation(), lhs in arb_set(), fam in arb_family()) {
        let trivial = BooleanDependency::new(lhs, fam.with_member(lhs.intersect(lhs)));
        // (lhs itself is a member, so the dependency is trivial)
        prop_assert!(trivial.is_trivial());
        prop_assert!(trivial.satisfied_by(&r));
        let empty = BooleanDependency::new(lhs, Family::empty());
        prop_assert!(!empty.satisfied_by(&r));
    }

    /// Agree sets behave like agree sets: a pair's agree set contains an attribute
    /// iff the two tuples coincide there, and every tuple agrees with itself on S.
    #[test]
    fn agree_sets_are_consistent(r in arb_relation()) {
        let tuples = r.tuples();
        for t in tuples {
            prop_assert_eq!(Relation::agree_set(t, t), AttrSet::full(N));
        }
        for (i, t) in tuples.iter().enumerate() {
            for t2 in &tuples[i + 1..] {
                let agree = Relation::agree_set(t, t2);
                for a in 0..N {
                    prop_assert_eq!(agree.contains(a), t[a] == t2[a]);
                }
                prop_assert!(agree != AttrSet::full(N), "distinct tuples cannot agree everywhere");
            }
        }
    }
}
