//! # proplogic — propositional-logic substrate
//!
//! Section 5 of *Differential Constraints* (Sayrafi & Van Gucht, PODS 2005)
//! characterizes the implication problem for differential constraints in terms
//! of a fragment of propositional logic: each constraint `X → 𝒴` corresponds to
//! the *implication constraint* `⋀X ⇒ ⋁_{Y∈𝒴} ⋀Y`, and
//! `negminset(X ⇒prop 𝒴) = L(X, 𝒴)` (Proposition 5.3).  The implication problem
//! is then coNP-complete (Proposition 5.5) by reduction from DNF tautology.
//!
//! This crate provides everything needed to make that section executable:
//!
//! * a propositional [`Formula`] AST over the variables of a
//!   [`setlat::Universe`], with evaluation under assignments
//!   represented as [`setlat::AttrSet`]s;
//! * minterms, minsets and negative minsets ([`minterm`], Definition 5.1);
//! * clausal form: literals, clauses, CNF, naive distribution and Tseitin
//!   transformation ([`cnf`]);
//! * DNF formulas and the DNF-tautology problem used for the coNP-hardness
//!   reduction ([`dnf`]);
//! * a complete DPLL SAT solver with unit propagation and pure-literal
//!   elimination ([`dpll`]);
//! * implication constraints `X ⇒prop 𝒴` and both decision procedures for the
//!   logical implication problem — exhaustive minset containment and SAT-based
//!   refutation ([`implication`]);
//! * tautology / contradiction / equivalence checks ([`tautology`]);
//! * a small text parser for formulas ([`parser`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dnf;
pub mod dpll;
pub mod formula;
pub mod implication;
pub mod minterm;
pub mod parser;
pub mod tautology;

pub use cnf::{Clause, Cnf, Lit};
pub use dnf::Dnf;
pub use dpll::{DpllSolver, SatResult, SolverStats};
pub use formula::Formula;
pub use implication::ImplicationConstraint;
