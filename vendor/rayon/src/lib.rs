//! Hermetic stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no registry access, so this crate implements the
//! small parallel-iterator surface the `diffcon-engine` crate uses, on top of
//! [`std::thread::scope`]:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — order-preserving
//!   parallel map over a slice (also reachable through `Vec` via deref);
//! * [`join`] — run two closures, potentially in parallel;
//! * [`current_num_threads`] — the parallelism the pool will use.
//!
//! Work is split into one contiguous chunk per available core; each chunk is
//! processed on its own scoped thread and the results are concatenated in
//! input order, so `collect` observes exactly the sequential ordering.  For
//! the workloads the engine serves (hundreds-to-thousands of independent
//! implication queries of comparable cost) contiguous chunking is within a
//! few percent of a work-stealing pool without any of its machinery.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, in parallel when more than one thread is available,
/// and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim: join closure panicked");
        (ra, rb)
    })
}

/// The traits that make `par_iter` available on slices and `Vec`s.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Parallel iterator types.
pub mod iter {
    use super::current_num_threads;

    /// Conversion of `&self` into a parallel iterator (rayon's
    /// `IntoParallelRefIterator`, restricted to slices).
    pub trait IntoParallelRefIterator<'data> {
        /// The element type yielded by the iterator.
        type Item: 'data;
        /// The parallel iterator produced.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Creates a parallel iterator over borrowed elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = SliceIter<'data, T>;

        fn par_iter(&'data self) -> SliceIter<'data, T> {
            SliceIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = SliceIter<'data, T>;

        fn par_iter(&'data self) -> SliceIter<'data, T> {
            SliceIter { slice: self }
        }
    }

    /// Minimal parallel-iterator interface: `map` then `collect`.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item;

        /// Maps each element through `f` (evaluated in parallel at `collect`).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Runs the pipeline and collects the results **in input order**.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
            Self::Item: Send;
    }

    /// Parallel iterator over a slice.
    pub struct SliceIter<'data, T> {
        slice: &'data [T],
    }

    /// A mapped parallel iterator.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<'data, T: Sync + 'data> ParallelIterator for SliceIter<'data, T> {
        type Item = &'data T;

        fn collect<C>(self) -> C
        where
            C: FromIterator<&'data T>,
        {
            self.slice.iter().collect()
        }
    }

    impl<'data, T, R, F> ParallelIterator for Map<SliceIter<'data, T>, F>
    where
        T: Sync + 'data,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        type Item = R;

        fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            parallel_map_slice(self.base.slice, &self.f)
                .into_iter()
                .collect()
        }
    }

    /// Order-preserving parallel map over a slice: one contiguous chunk per
    /// worker thread, results concatenated in input order.
    fn parallel_map_slice<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync + 'data,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let n = items.len();
        // Cap workers at one per 4 items: spawning an OS thread costs tens of
        // microseconds, so tiny batches use few threads (or none).
        let threads = current_num_threads().min(n.div_ceil(4));
        if threads <= 1 || n < 2 {
            return items.iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("rayon-shim: worker thread panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_on_small_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = vec![41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "ok");
        assert_eq!(a, 2);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
