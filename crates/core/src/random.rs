//! Random constraint generation for tests and benchmarks.
//!
//! The paper reports no datasets, so the scaling experiments generate random
//! constraint-implication instances with controllable shape: universe size,
//! number of premises, family width, member size, and whether the goal is
//! forced to be implied (by composing premises) or left to chance.

use crate::constraint::DiffConstraint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setlat::{AttrSet, Family, Universe};

/// Shape parameters for random constraint generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintShape {
    /// Maximum size of the left-hand side.
    pub max_lhs: usize,
    /// Maximum number of members in the right-hand side family.
    pub max_members: usize,
    /// Maximum size of each member.
    pub max_member_size: usize,
    /// Whether trivial constraints are allowed in the output.
    pub allow_trivial: bool,
}

impl Default for ConstraintShape {
    fn default() -> Self {
        ConstraintShape {
            max_lhs: 2,
            max_members: 2,
            max_member_size: 2,
            allow_trivial: false,
        }
    }
}

/// A seeded random generator of constraints over a fixed universe.
#[derive(Debug)]
pub struct ConstraintGenerator {
    rng: StdRng,
    n: usize,
}

impl ConstraintGenerator {
    /// Creates a generator over a universe of `universe.len()` attributes.
    pub fn new(seed: u64, universe: &Universe) -> Self {
        ConstraintGenerator {
            rng: StdRng::seed_from_u64(seed),
            n: universe.len(),
        }
    }

    /// Draws a random nonempty attribute set of at most `max_size` attributes.
    pub fn random_set(&mut self, max_size: usize) -> AttrSet {
        let size = self.rng.gen_range(1..=max_size.max(1)).min(self.n);
        let mut set = AttrSet::EMPTY;
        while set.len() < size {
            set.insert(self.rng.gen_range(0..self.n));
        }
        set
    }

    /// Draws a random (possibly empty) attribute set.
    pub fn random_possibly_empty_set(&mut self, max_size: usize) -> AttrSet {
        if self.rng.gen_bool(0.15) {
            AttrSet::EMPTY
        } else {
            self.random_set(max_size)
        }
    }

    /// Draws one random constraint with the given shape.
    pub fn constraint(&mut self, shape: &ConstraintShape) -> DiffConstraint {
        loop {
            let lhs = self.random_possibly_empty_set(shape.max_lhs);
            let member_count = self.rng.gen_range(0..=shape.max_members);
            let members: Vec<AttrSet> = (0..member_count)
                .map(|_| self.random_set(shape.max_member_size))
                .collect();
            let candidate = DiffConstraint::new(lhs, Family::from_sets(members));
            if shape.allow_trivial || !candidate.is_trivial() {
                return candidate;
            }
        }
    }

    /// Draws a set of `count` random constraints.
    pub fn constraint_set(&mut self, count: usize, shape: &ConstraintShape) -> Vec<DiffConstraint> {
        (0..count).map(|_| self.constraint(shape)).collect()
    }

    /// Draws a goal that is guaranteed to be **implied** by `premises`, by
    /// walking a short chain of sound rule applications (augmentation of a
    /// premise, then additions) — useful for benchmarking the "yes" side of the
    /// decision problem without paying for an implication check up front.
    pub fn implied_goal(&mut self, premises: &[DiffConstraint]) -> DiffConstraint {
        if premises.is_empty() {
            // Only trivial constraints are implied by the empty set.
            let member = self.random_set(2);
            let lhs = member.union(self.random_possibly_empty_set(2));
            return DiffConstraint::new(lhs, Family::single(member));
        }
        let base = premises[self.rng.gen_range(0..premises.len())].clone();
        // Augment the LHS…
        let lhs = base.lhs.union(self.random_possibly_empty_set(2));
        // …and add up to two extra members.
        let mut rhs = base.rhs.clone();
        for _ in 0..self.rng.gen_range(0..=2) {
            rhs = rhs.with_member(self.random_set(2));
        }
        DiffConstraint::new(lhs, rhs)
    }
}

/// Generates a full random implication instance: `count` premises plus a goal
/// that is implied with probability ~`implied_bias` (by construction) and
/// random otherwise.
pub fn random_instance(
    seed: u64,
    universe: &Universe,
    count: usize,
    shape: &ConstraintShape,
    implied_bias: f64,
) -> (Vec<DiffConstraint>, DiffConstraint) {
    let mut gen = ConstraintGenerator::new(seed, universe);
    let premises = gen.constraint_set(count, shape);
    let goal = if gen.rng.gen_bool(implied_bias.clamp(0.0, 1.0)) {
        gen.implied_goal(&premises)
    } else {
        gen.constraint(shape)
    };
    (premises, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication;

    #[test]
    fn generator_is_reproducible() {
        let u = Universe::of_size(6);
        let shape = ConstraintShape::default();
        let a = ConstraintGenerator::new(7, &u).constraint_set(5, &shape);
        let b = ConstraintGenerator::new(7, &u).constraint_set(5, &shape);
        let c = ConstraintGenerator::new(8, &u).constraint_set(5, &shape);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_are_respected() {
        let u = Universe::of_size(8);
        let shape = ConstraintShape {
            max_lhs: 3,
            max_members: 2,
            max_member_size: 2,
            allow_trivial: false,
        };
        let mut gen = ConstraintGenerator::new(3, &u);
        for _ in 0..50 {
            let c = gen.constraint(&shape);
            assert!(c.lhs.len() <= 3);
            assert!(c.rhs.len() <= 2);
            for m in c.rhs.iter() {
                assert!(m.len() <= 2 && !m.is_empty());
            }
            assert!(!c.is_trivial());
        }
    }

    #[test]
    fn implied_goals_are_implied() {
        let u = Universe::of_size(6);
        let shape = ConstraintShape::default();
        for seed in 0..20u64 {
            let mut gen = ConstraintGenerator::new(seed, &u);
            let premises = gen.constraint_set(4, &shape);
            let goal = gen.implied_goal(&premises);
            assert!(
                implication::implies(&u, &premises, &goal),
                "seed {seed}: goal {} not implied",
                goal.format(&u)
            );
        }
    }

    #[test]
    fn random_instances_cover_both_outcomes() {
        let u = Universe::of_size(6);
        let shape = ConstraintShape::default();
        let mut implied = 0;
        let mut not_implied = 0;
        for seed in 0..40u64 {
            let (premises, goal) = random_instance(seed, &u, 4, &shape, 0.5);
            if implication::implies(&u, &premises, &goal) {
                implied += 1;
            } else {
                not_implied += 1;
            }
        }
        assert!(implied > 0, "expected at least one implied instance");
        assert!(not_implied > 0, "expected at least one refuted instance");
    }
}
