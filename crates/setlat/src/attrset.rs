//! Compact bitset representation of attribute sets (subsets of a finite universe).
//!
//! An [`AttrSet`] is a subset of a [`crate::Universe`] of at most
//! [`crate::MAX_UNIVERSE`] attributes, stored as a `u64` bit mask.
//! Attribute `i` of the universe is a member of the set iff bit `i` is set.
//!
//! All set-algebra operations are `O(1)`; iteration over members is `O(|X|)`.

use std::fmt;

/// A subset of a finite attribute universe, stored as a 64-bit mask.
///
/// `AttrSet` is `Copy` and extremely cheap to pass around; every operation that
/// the paper performs on subsets of `S` (union, intersection, difference,
/// containment, cardinality) is a single machine instruction here.
///
/// An `AttrSet` does not remember which universe it came from; pairing a set
/// with the wrong universe is a logic error that the [`crate::Universe`]
/// formatting helpers will surface as out-of-range attribute indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// The empty set `∅`.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Creates a set from a raw bit mask.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Returns the raw bit mask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The singleton set `{i}` containing only attribute index `i`.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        assert!(i < 64, "attribute index {i} out of range for AttrSet");
        AttrSet(1u64 << i)
    }

    /// Builds a set from an iterator of attribute indices.
    ///
    /// # Panics
    /// Panics if any index is `>= 64`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut bits = 0u64;
        for i in iter {
            assert!(i < 64, "attribute index {i} out of range for AttrSet");
            bits |= 1u64 << i;
        }
        AttrSet(bits)
    }

    /// The full set `{0, 1, …, n-1}` over a universe of `n` attributes.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= 64, "universe size {n} exceeds 64");
        if n == 64 {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << n) - 1)
        }
    }

    /// Returns `true` iff the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The number of attributes in the set (`|X|`).
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` iff attribute index `i` is a member of the set.
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        i < 64 && (self.0 >> i) & 1 == 1
    }

    /// Set union `X ∪ Y`.
    #[inline]
    pub const fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection `X ∩ Y`.
    #[inline]
    pub const fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `X − Y`.
    #[inline]
    pub const fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Symmetric difference `X △ Y`.
    #[inline]
    pub const fn symmetric_difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 ^ other.0)
    }

    /// Complement of the set within a universe of `n` attributes.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn complement_in(self, n: usize) -> AttrSet {
        AttrSet(!self.0 & AttrSet::full(n).0)
    }

    /// Returns `true` iff `self ⊆ other`.
    #[inline]
    pub const fn is_subset(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` iff `self ⊂ other` (proper subset).
    #[inline]
    pub const fn is_proper_subset(self, other: AttrSet) -> bool {
        self.is_subset(other) && self.0 != other.0
    }

    /// Returns `true` iff `self ⊇ other`.
    #[inline]
    pub const fn is_superset(self, other: AttrSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` iff the two sets are disjoint (`X ∩ Y = ∅`).
    #[inline]
    pub const fn is_disjoint(self, other: AttrSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Returns `true` iff the two sets intersect (`X ∩ Y ≠ ∅`).
    #[inline]
    pub const fn intersects(self, other: AttrSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Adds attribute index `i` to the set, returning the new set.
    #[inline]
    pub fn with(self, i: usize) -> AttrSet {
        self.union(AttrSet::singleton(i))
    }

    /// Removes attribute index `i` from the set, returning the new set.
    #[inline]
    pub fn without(self, i: usize) -> AttrSet {
        self.difference(AttrSet::singleton(i))
    }

    /// Inserts attribute index `i` in place.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        *self = self.with(i);
    }

    /// Removes attribute index `i` in place.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        *self = self.without(i);
    }

    /// Iterates over the attribute indices in the set, in increasing order.
    #[inline]
    pub fn iter(self) -> AttrIter {
        AttrIter { bits: self.0 }
    }

    /// The smallest attribute index in the set, or `None` for the empty set.
    #[inline]
    pub fn min_attr(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The largest attribute index in the set, or `None` for the empty set.
    #[inline]
    pub fn max_attr(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// Returns the singleton subsets of this set, in increasing index order.
    ///
    /// This is the paper's `Ū = {{u} | u ∈ U}` operation (Section 4.2).
    pub fn singletons(self) -> Vec<AttrSet> {
        self.iter().map(AttrSet::singleton).collect()
    }

    /// A stable, well-mixed 64-bit fingerprint of the set.
    ///
    /// Unlike [`Hash`], which is tied to a hasher instance, the fingerprint is
    /// a pure function of the bit mask and stable across processes and runs.
    /// Query engines layered above this crate use it to build composite keys
    /// (e.g. an order-independent XOR over a premise set) without hashing the
    /// whole structure again; the mixing (SplitMix64 finalizer) ensures that
    /// structurally close sets — which differ in one or two bits — land far
    /// apart, so XOR-combined fingerprints do not cancel systematically.
    #[inline]
    pub const fn fingerprint(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrSet{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl std::ops::BitOr for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitor(self, rhs: AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitand(self, rhs: AttrSet) -> AttrSet {
        self.intersect(rhs)
    }
}

impl std::ops::Sub for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn sub(self, rhs: AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl std::ops::BitXor for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitxor(self, rhs: AttrSet) -> AttrSet {
        self.symmetric_difference(rhs)
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        AttrSet::from_indices(iter)
    }
}

impl IntoIterator for AttrSet {
    type Item = usize;
    type IntoIter = AttrIter;
    fn into_iter(self) -> AttrIter {
        self.iter()
    }
}

/// Iterator over the attribute indices of an [`AttrSet`], in increasing order.
#[derive(Clone, Debug)]
pub struct AttrIter {
    bits: u64,
}

impl Iterator for AttrIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            let i = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let e = AttrSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert!(e.is_subset(AttrSet::full(5)));
        assert!(e.is_subset(e));
        assert_eq!(e.min_attr(), None);
        assert_eq!(e.max_attr(), None);
    }

    #[test]
    fn singleton_and_membership() {
        let s = AttrSet::singleton(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn from_indices_dedups() {
        let s = AttrSet::from_indices([1, 3, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn full_universe() {
        assert_eq!(AttrSet::full(0), AttrSet::EMPTY);
        assert_eq!(AttrSet::full(3).len(), 3);
        assert_eq!(AttrSet::full(64).len(), 64);
    }

    #[test]
    fn set_algebra() {
        let a = AttrSet::from_indices([0, 1, 2]);
        let b = AttrSet::from_indices([1, 2, 3]);
        assert_eq!(a.union(b), AttrSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), AttrSet::from_indices([1, 2]));
        assert_eq!(a.difference(b), AttrSet::from_indices([0]));
        assert_eq!(a.symmetric_difference(b), AttrSet::from_indices([0, 3]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersect(b));
        assert_eq!(a - b, a.difference(b));
        assert_eq!(a ^ b, a.symmetric_difference(b));
    }

    #[test]
    fn subset_relations() {
        let a = AttrSet::from_indices([0, 1]);
        let b = AttrSet::from_indices([0, 1, 2]);
        assert!(a.is_subset(b));
        assert!(a.is_proper_subset(b));
        assert!(!b.is_subset(a));
        assert!(b.is_superset(a));
        assert!(a.is_subset(a));
        assert!(!a.is_proper_subset(a));
    }

    #[test]
    fn disjointness() {
        let a = AttrSet::from_indices([0, 1]);
        let b = AttrSet::from_indices([2, 3]);
        let c = AttrSet::from_indices([1, 2]);
        assert!(a.is_disjoint(b));
        assert!(!a.is_disjoint(c));
        assert!(a.intersects(c));
        assert!(!a.intersects(b));
    }

    #[test]
    fn complement() {
        let a = AttrSet::from_indices([0, 2]);
        assert_eq!(a.complement_in(4), AttrSet::from_indices([1, 3]));
        assert_eq!(AttrSet::EMPTY.complement_in(3), AttrSet::full(3));
    }

    #[test]
    fn with_without_insert_remove() {
        let mut a = AttrSet::EMPTY;
        a.insert(5);
        a.insert(2);
        assert_eq!(a, AttrSet::from_indices([2, 5]));
        a.remove(5);
        assert_eq!(a, AttrSet::singleton(2));
        assert_eq!(a.with(7), AttrSet::from_indices([2, 7]));
        assert_eq!(a.without(2), AttrSet::EMPTY);
    }

    #[test]
    fn min_max_attr() {
        let a = AttrSet::from_indices([3, 9, 41]);
        assert_eq!(a.min_attr(), Some(3));
        assert_eq!(a.max_attr(), Some(41));
    }

    #[test]
    fn singletons_decomposition() {
        let a = AttrSet::from_indices([1, 4]);
        assert_eq!(
            a.singletons(),
            vec![AttrSet::singleton(1), AttrSet::singleton(4)]
        );
        assert!(AttrSet::EMPTY.singletons().is_empty());
    }

    #[test]
    fn debug_format() {
        let a = AttrSet::from_indices([0, 2]);
        assert_eq!(format!("{a:?}"), "AttrSet{0,2}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_out_of_range_panics() {
        let _ = AttrSet::singleton(64);
    }

    #[test]
    fn fingerprints_are_stable_and_spread() {
        // Stability: pure function of the mask.
        assert_eq!(
            AttrSet::from_indices([1, 3]).fingerprint(),
            AttrSet::from_indices([3, 1]).fingerprint()
        );
        // All 2^10 subsets of a 10-attribute universe fingerprint distinctly.
        let mut fps: Vec<u64> = (0u64..1024)
            .map(|m| AttrSet::from_bits(m).fingerprint())
            .collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), 1024);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            AttrSet::from_indices([1]),
            AttrSet::EMPTY,
            AttrSet::from_indices([0, 1]),
        ];
        v.sort();
        assert_eq!(v[0], AttrSet::EMPTY);
    }
}
