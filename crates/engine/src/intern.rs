//! Constraint interning: map each distinct [`DiffConstraint`] to a small
//! dense id.
//!
//! Sessions intern their asserted premises, giving each a stable
//! [`ConstraintId`] (4 bytes, `Copy`) that the wire protocol reports and
//! [`crate::session::Session::retract_id`] accepts.  Interning is
//! append-only: ids stay valid for the lifetime of the interner, even after
//! the constraint is retracted from the premise set (until the session
//! compacts the table).  Query traffic never touches the interner — the
//! concurrent caches are keyed on digest-versioned constraints
//! ([`crate::cache::VersionedKey`]), not ids, so the read path needs no
//! access to this mutable table.

use diffcon::DiffConstraint;
use std::collections::HashMap;

/// Dense identifier of an interned constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstraintId(u32);

impl ConstraintId {
    /// The id as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only table of distinct constraints.
#[derive(Debug, Default)]
pub struct ConstraintInterner {
    by_constraint: HashMap<DiffConstraint, ConstraintId>,
    items: Vec<DiffConstraint>,
}

impl ConstraintInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `constraint`, interning it on first sight.
    pub fn intern(&mut self, constraint: &DiffConstraint) -> ConstraintId {
        if let Some(&id) = self.by_constraint.get(constraint) {
            return id;
        }
        let id = ConstraintId(
            u32::try_from(self.items.len()).expect("more than u32::MAX interned constraints"),
        );
        self.items.push(constraint.clone());
        self.by_constraint.insert(constraint.clone(), id);
        id
    }

    /// Returns the id of an already-interned constraint, if any.
    pub fn lookup(&self, constraint: &DiffConstraint) -> Option<ConstraintId> {
        self.by_constraint.get(constraint).copied()
    }

    /// The constraint an id denotes.
    ///
    /// # Panics
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: ConstraintId) -> &DiffConstraint {
        &self.items[id.index()]
    }

    /// Number of distinct constraints seen.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let u = Universe::of_size(4);
        let mut interner = ConstraintInterner::new();
        let a = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        let b = DiffConstraint::parse("B -> {C}", &u).unwrap();
        let ida = interner.intern(&a);
        let idb = interner.intern(&b);
        assert_ne!(ida, idb);
        assert_eq!(interner.intern(&a), ida);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(ida), &a);
        assert_eq!(interner.resolve(idb), &b);
        assert_eq!(interner.lookup(&a), Some(ida));
        let c = DiffConstraint::parse("C -> {D}", &u).unwrap();
        assert_eq!(interner.lookup(&c), None);
    }

    #[test]
    fn structurally_equal_constraints_share_an_id() {
        let u = Universe::of_size(4);
        let mut interner = ConstraintInterner::new();
        // Families normalize member order, so these are the same constraint.
        let a = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        let b = DiffConstraint::parse("A -> {CD, B}", &u).unwrap();
        assert_eq!(interner.intern(&a), interner.intern(&b));
        assert_eq!(interner.len(), 1);
    }
}
