//! E5/E6 — Section 6: the FIS bridge on generated basket data, and the
//! concise-representation pipeline end-to-end.

use diffcon::random::{ConstraintGenerator, ConstraintShape};
use diffcon::{fis_bridge, implication, DiffConstraint};
use fis::basket::BasketDb;
use fis::condensed::{CondensedRepresentation, DerivedStatus};
use fis::generator::{self, QuestConfig};
use fis::{apriori, border, eclat, support};
use setlat::{AttrSet, Universe};

/// Proposition 6.3 on random databases and random constraints: disjunctive
/// satisfaction ⇔ support-function satisfaction.
#[test]
fn proposition_6_3_on_random_data() {
    let u = Universe::of_size(6);
    let shape = ConstraintShape {
        max_lhs: 2,
        max_members: 2,
        max_member_size: 2,
        allow_trivial: true,
    };
    for seed in 0..15u64 {
        let db = generator::uniform_random(seed, 6, 40, 0.35);
        let s = support::support_function(&db);
        let mut gen = ConstraintGenerator::new(seed * 7 + 1, &u);
        for _ in 0..8 {
            let c = gen.constraint(&shape);
            let via_db = fis_bridge::to_disjunctive(&c).satisfied_by(&db);
            let via_fn = diffcon::semantics::satisfies(&s, &c);
            assert_eq!(
                via_db,
                via_fn,
                "Prop 6.3 mismatch for {} (seed {seed})",
                c.format(&u)
            );
        }
    }
}

/// Proposition 6.4 on random instances: implication over all functions, over
/// support functions, and of the disjunctive translations coincide.
#[test]
fn proposition_6_4_on_random_instances() {
    let u = Universe::of_size(5);
    let shape = ConstraintShape::default();
    for seed in 0..30u64 {
        let mut gen = ConstraintGenerator::new(seed, &u);
        let premises = gen.constraint_set(3, &shape);
        let goal = if seed % 2 == 0 {
            gen.implied_goal(&premises)
        } else {
            gen.constraint(&shape)
        };
        let general = implication::implies(&u, &premises, &goal);
        assert_eq!(
            general,
            fis_bridge::implies_over_supports(&u, &premises, &goal)
        );
        let disj: Vec<_> = premises.iter().map(fis_bridge::to_disjunctive).collect();
        assert_eq!(
            general,
            fis_bridge::disjunctive_implies(&u, &disj, &fis_bridge::to_disjunctive(&goal))
        );
    }
}

/// Planted constraints are discovered back: a database repaired to satisfy a
/// constraint set satisfies every constraint the set implies (soundness of the
/// inference system "in the data").
#[test]
fn planted_constraints_and_their_consequences_hold_in_the_data() {
    let u = Universe::of_size(6);
    let planted = vec![
        DiffConstraint::parse("A -> {B, CD}", &u).unwrap(),
        DiffConstraint::parse("B -> {E}", &u).unwrap(),
    ];
    let base = generator::uniform_random(5, 6, 80, 0.3);
    let db = generator::with_planted_rules(
        &base,
        &planted
            .iter()
            .map(fis_bridge::to_disjunctive)
            .collect::<Vec<_>>(),
    );
    for c in &planted {
        assert!(fis_bridge::support_function_satisfies(&db, c));
    }
    // Consequences: augmentation, addition, and a transitivity-style composite.
    let consequences = ["AF -> {B, CD}", "A -> {B, CD, E}", "A -> {BE, CD}"];
    for text in consequences {
        let goal = DiffConstraint::parse(text, &u).unwrap();
        assert!(
            implication::implies(&u, &planted, &goal),
            "{text} should be implied by the planted constraints"
        );
        assert!(
            fis_bridge::support_function_satisfies(&db, &goal),
            "{text} should hold in the planted database"
        );
    }
}

/// Apriori, Eclat, brute force and the borders all tell the same story on a
/// Quest-style workload, and the condensed representation reproduces every
/// support exactly.
#[test]
fn mining_pipeline_consistency() {
    let config = QuestConfig {
        num_items: 9,
        num_baskets: 120,
        num_patterns: 5,
        avg_pattern_len: 3,
        patterns_per_basket: 2,
        noise_prob: 0.05,
    };
    let db = generator::quest_like(31, &config);
    let u = Universe::of_size(9);
    for kappa in [12usize, 30, 60] {
        let a = apriori::apriori(&db, kappa);
        let e = eclat::eclat(&db, kappa);
        let brute = apriori::frequent_itemsets_bruteforce(&db, kappa);
        assert_eq!(a.frequent, e);
        assert_eq!(a.frequent, brute);
        assert_eq!(a.negative_border, border::negative_border(&db, kappa));

        let neg = border::negative_border(&db, kappa);
        let pos = border::positive_border(&db, kappa);
        let repr = CondensedRepresentation::build(&db, kappa);
        for x in u.all_subsets() {
            let truth = db.support(x) >= kappa;
            assert_eq!(border::is_frequent_by_negative_border(&neg, x), truth);
            assert_eq!(border::is_frequent_by_positive_border(&pos, x), truth);
            match repr.derive(x) {
                DerivedStatus::Frequent(s) => {
                    assert!(truth);
                    assert_eq!(s, db.support(x));
                }
                DerivedStatus::Infrequent => assert!(!truth),
            }
        }
    }
}

/// The concise-representation savings claimed in Section 6.1.1 materialize on
/// correlated data: FDFree is strictly smaller than the set of frequent
/// itemsets, while remaining a lossless representation.
#[test]
fn condensed_representation_saves_space_on_correlated_data() {
    let u = Universe::of_size(8);
    // Strong structure: B accompanies A, D accompanies C.
    let planted = [
        DiffConstraint::parse("A -> {B}", &u).unwrap(),
        DiffConstraint::parse("C -> {D}", &u).unwrap(),
    ];
    let base = generator::uniform_random(13, 8, 150, 0.4);
    let db: BasketDb = generator::with_planted_rules(
        &base,
        &planted
            .iter()
            .map(fis_bridge::to_disjunctive)
            .collect::<Vec<_>>(),
    );
    let kappa = 15;
    let frequent = border::count_frequent(&db, kappa);
    let repr = CondensedRepresentation::build(&db, kappa);
    assert!(
        repr.fdfree.len() < frequent,
        "FDFree ({}) should be smaller than the frequent collection ({frequent})",
        repr.fdfree.len()
    );
    // Lossless.
    for x in u.all_subsets() {
        match repr.derive(x) {
            DerivedStatus::Frequent(s) => assert_eq!(s, db.support(x)),
            DerivedStatus::Infrequent => assert!(db.support(x) < kappa),
        }
    }
}

/// The inference system prunes provably-disjunctive itemsets (the paper's
/// {A,C,D} observation) and never claims a non-disjunctive itemset.
#[test]
fn inference_based_pruning_is_sound() {
    let u = Universe::of_size(5);
    let known = vec![
        DiffConstraint::parse("A -> {B, D}", &u).unwrap(),
        DiffConstraint::parse("B -> {C, D}", &u).unwrap(),
    ];
    let base = generator::uniform_random(23, 5, 90, 0.45);
    let db = generator::with_planted_rules(
        &base,
        &known
            .iter()
            .map(fis_bridge::to_disjunctive)
            .collect::<Vec<_>>(),
    );
    let inferable = fis_bridge::inferable_disjunctive_itemsets(&u, &known);
    assert!(inferable.contains(&u.parse_set("ACD").unwrap()));
    for w in inferable {
        assert!(
            fis::disjunctive::is_disjunctive(&db, w, 3),
            "inference claimed {} is disjunctive but the data disagrees",
            u.format_set(w)
        );
    }
    // Negative control: with no known constraints nothing is inferable.
    assert!(fis_bridge::inferable_disjunctive_itemsets(&u, &[]).is_empty());
    let _ = AttrSet::EMPTY;
}
