//! `diffcond` — serve differential-constraint implication queries over a
//! line-oriented protocol (one request per line on stdin, one machine-readable
//! response per line on stdout).
//!
//! See `diffcon_engine::protocol` for the full request/response grammar.
//!
//! ```text
//! Usage: diffcond [--answer-cache N] [--lattice-cache N] [--prop-cache N]
//!                 [--bound-cache N] [--lattice-budget N] [--bound-budget N]
//!                 [--help]
//! ```

use diffcon_engine::{Server, SessionConfig};
use std::io::{BufRead, Write};

const USAGE: &str = "\
diffcond — differential-constraint implication server

Reads one request per line from stdin, writes one response per line to stdout.
Start with `universe <n>` (or `universe <name>...`), then `assert`, `implies`,
`batch`, `witness`, `derive`, `known`, `forget`, `bound`, `load`, `mine`,
`adopt`, `dataset`, `premises`, `knowns`, `stats`, `reset`, `help`, `quit`.

Options:
  --answer-cache N    bound on memoized query answers     (default 65536)
  --lattice-cache N   bound on memoized goal lattices     (default 4096)
  --prop-cache N      bound on memoized translations      (default 4096)
  --bound-cache N     bound on memoized bound intervals   (default 4096)
  --intern-limit N    distinct constraints kept before the intern table is
                      compacted                           (default 262144)
  --lattice-budget N  max lattice-procedure cost before a query is routed
                      to the SAT procedure                (default 4194304)
  --bound-budget N    max bound-derivation cost before a bound query is
                      routed to the sound relaxation      (default 67108864)
  --help              print this text";

fn parse_args() -> Result<SessionConfig, String> {
    let mut config = SessionConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                // Ignore write errors (e.g. `diffcond --help | head` closing
                // the pipe early) instead of panicking.
                let _ = writeln!(std::io::stdout(), "{USAGE}");
                std::process::exit(0);
            }
            "--answer-cache" | "--lattice-cache" | "--prop-cache" | "--bound-cache"
            | "--intern-limit" | "--lattice-budget" | "--bound-budget" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{flag} expects a number"))?;
                let n: u128 = value
                    .parse()
                    .map_err(|_| format!("{flag} expects a number, got `{value}`"))?;
                let as_capacity = |n: u128| -> Result<usize, String> {
                    usize::try_from(n)
                        .map_err(|_| format!("{flag} value {n} does not fit this platform"))
                };
                match flag.as_str() {
                    "--answer-cache" => config.answer_cache_capacity = as_capacity(n)?,
                    "--lattice-cache" => config.lattice_cache_capacity = as_capacity(n)?,
                    "--prop-cache" => config.prop_cache_capacity = as_capacity(n)?,
                    "--bound-cache" => config.bound_cache_capacity = as_capacity(n)?,
                    "--intern-limit" => config.interner_compaction_threshold = as_capacity(n)?,
                    "--lattice-budget" => config.planner.lattice_budget = n,
                    _ => config.planner.bound_budget = n,
                }
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("diffcond: {message}");
            std::process::exit(2);
        }
    };
    let mut server = Server::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let reply = server.handle_line(&line);
        if !reply.text.is_empty()
            && writeln!(out, "{}", reply.text)
                .and_then(|_| out.flush())
                .is_err()
        {
            break;
        }
        if reply.quit {
            break;
        }
    }
}
