//! Socket-level serving properties: the `diffcond serve` TCP front-end must
//! be *transparent* — byte-identical reply streams to the in-process
//! [`Pipeline`] on the same scripts (up to the non-semantic telemetry
//! fields, exactly the PR-4 equivalence contract) — and *unwedgeable*:
//! malformed frames, oversized lines, random bytes, split writes, and early
//! disconnects must produce `err` replies or dropped connections, never a
//! panic, and the server must stay accept-ready throughout.

use diffcon_engine::client::{Client, ClientError};
use diffcon_engine::net::{NetConfig, NetServer, ShutdownHandle};
use diffcon_engine::{Pipeline, SessionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use setlat::{AttrSet, Universe};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const UNIVERSE_N: usize = 4;

/// A generous failure deadline: a correct server answers in microseconds;
/// only a deadlocked one runs into this, and the test then fails loudly
/// with a timeout error instead of hanging CI.
const DEADLINE: Duration = Duration::from_secs(30);

/// Tiny caches so eviction churn is constant, as in the PR-4 suites.
fn tiny_config() -> SessionConfig {
    SessionConfig {
        answer_cache_capacity: 4,
        lattice_cache_capacity: 2,
        prop_cache_capacity: 2,
        bound_cache_capacity: 2,
        cache_shards: 2,
        ..SessionConfig::default()
    }
}

/// Binds a server on an ephemeral loopback port and runs its accept loop on
/// a background thread.  The thread ends when the handle shuts it down.
fn spawn_server(config: NetConfig) -> (SocketAddr, ShutdownHandle) {
    let server = NetServer::bind("127.0.0.1:0", config).expect("loopback bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect_timeout(&addr, DEADLINE).expect("connect");
    client.set_read_timeout(Some(DEADLINE)).expect("timeout");
    client
}

/// One quick health probe: a fresh connection must serve a full
/// request/response exchange (the accept-ready assertion of the fuzz
/// suite).
fn assert_accept_ready(addr: SocketAddr) {
    let mut probe = connect(addr);
    assert_eq!(
        probe.raw_request("universe 2").expect("health probe"),
        "ok universe n=2 attrs=A,B"
    );
    probe.quit().expect("health probe quit");
}

/// Strips the telemetry fields (`us=`, `cached=`, `route=`) that
/// legitimately differ between runs; `stats` lines reduce to their head.
/// Identical to the PR-4 pipeline-vs-serial normalization.
fn normalize(text: &str) -> String {
    if text.starts_with("stats") {
        return "stats".to_string();
    }
    text.split_whitespace()
        .filter(|t| !t.starts_with("us=") && !t.starts_with("cached=") && !t.starts_with("route="))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The reply stream the in-process [`Pipeline`] produces on `lines`.
fn in_process_replies(lines: &[String], threads: usize) -> Vec<String> {
    let mut pipeline = Pipeline::new(tiny_config(), threads);
    let mut replies = Vec::new();
    for line in lines {
        let (released, quit) = pipeline.push_line(line);
        replies.extend(released.into_iter().filter(|r| !r.text.is_empty()));
        if quit {
            return replies.into_iter().map(|r| normalize(&r.text)).collect();
        }
    }
    replies.extend(pipeline.finish());
    replies
        .into_iter()
        .filter(|r| !r.text.is_empty())
        .map(|r| normalize(&r.text))
        .collect()
}

/// Drives `lines` over one TCP connection (pipelined) and returns the
/// normalized reply stream.
fn tcp_replies(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut client = connect(addr);
    let replies = client
        .run_script(lines.iter().map(String::as_str))
        .expect("script round trip");
    replies.iter().map(|r| normalize(r)).collect()
}

// ── Random-script generators (the PR-4 serving vocabulary) ──────────────

fn arb_constraint_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (
        0u64..(1u64 << UNIVERSE_N),
        proptest::collection::vec(0u64..(1u64 << UNIVERSE_N), 0..3),
    )
        .prop_map(move |(lhs, members)| {
            let constraint = diffcon::DiffConstraint::new(
                AttrSet::from_bits(lhs),
                members.into_iter().map(AttrSet::from_bits).collect(),
            );
            diffcon_engine::protocol::format_wire(&constraint, &u)
        })
}

fn arb_set_text() -> impl Strategy<Value = String> {
    let u = Universe::of_size(UNIVERSE_N);
    (0u64..(1u64 << UNIVERSE_N)).prop_map(move |mask| {
        let set = AttrSet::from_bits(mask);
        if set.is_empty() {
            "{}".to_string()
        } else {
            u.format_set(set)
        }
    })
}

/// One random request line — queries, churn, session control, and a salting
/// of malformed lines (trailing garbage, unknown verbs), because error
/// replies must be position-faithful over the wire too.
fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        arb_constraint_text().prop_map(|c| format!("implies {c}")),
        proptest::collection::vec(arb_constraint_text(), 1..4)
            .prop_map(|cs| format!("batch {}", cs.join(" ; "))),
        arb_set_text().prop_map(|s| format!("bound {s}")),
        arb_constraint_text().prop_map(|c| format!("witness {c}")),
        arb_constraint_text().prop_map(|c| format!("derive {c}")),
        arb_constraint_text().prop_map(|c| format!("assert {c}")),
        arb_constraint_text().prop_map(|c| format!("retract {c}")),
        (arb_set_text(), 0u32..50).prop_map(|(s, v)| format!("known {s} = {v}")),
        arb_set_text().prop_map(|s| format!("forget {s}")),
        proptest::collection::vec(arb_set_text(), 1..4)
            .prop_map(|bs| format!("load {}", bs.join(" ; "))),
        Just("session new".to_string()),
        (0u64..4).prop_map(|id| format!("session use {id}")),
        Just("session close".to_string()),
        Just("session list".to_string()),
        Just("universe 4".to_string()),
        Just("premises".to_string()),
        Just("knowns".to_string()),
        Just("dataset".to_string()),
        Just("stats".to_string()),
        Just("stats now".to_string()),
        Just("frobnicate".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random multi-request scripts replayed over TCP produce reply
    /// streams identical to the in-process pipeline on the same scripts,
    /// at 1–3 workers per connection.
    #[test]
    fn tcp_reply_stream_equals_in_process_pipeline(
        body in proptest::collection::vec(arb_line(), 1..30),
        threads in 1usize..4,
    ) {
        let mut lines = vec!["universe 4".to_string()];
        lines.extend(body);
        let (addr, handle) = spawn_server(NetConfig {
            session: tiny_config(),
            threads,
            ..NetConfig::default()
        });
        let want = in_process_replies(&lines, threads);
        let got = tcp_replies(addr, &lines);
        handle.shutdown();
        prop_assert_eq!(got, want, "TCP diverged at {} threads", threads);
    }
}

/// Concurrent connections are fully isolated namespaces: each replays its
/// own script and must match its own in-process oracle, interleaved with
/// the others on the same server.
#[test]
fn concurrent_connections_each_match_their_own_oracle() {
    let (addr, handle) = spawn_server(NetConfig {
        session: tiny_config(),
        threads: 2,
        ..NetConfig::default()
    });
    let scripts: Vec<Vec<String>> = (0..4)
        .map(|i| {
            let mut lines = vec!["universe 4".to_string()];
            for round in 0..12 {
                match (i + round) % 4 {
                    0 => lines.push("assert A->{B}".to_string()),
                    1 => lines.push("implies A->{B}".to_string()),
                    2 => lines.push(format!("known AB = {}", i * 10 + round)),
                    _ => lines.push("bound AB".to_string()),
                }
            }
            lines.push("premises".to_string());
            lines.push("knowns".to_string());
            lines
        })
        .collect();
    std::thread::scope(|scope| {
        for script in &scripts {
            scope.spawn(move || {
                let want = in_process_replies(script, 2);
                let got = tcp_replies(addr, script);
                assert_eq!(got, want, "connection diverged from its oracle");
            });
        }
    });
    handle.shutdown();
}

/// Sessions die with their connection: premises asserted on one connection
/// are invisible to a parallel connection and gone after reconnecting.
#[test]
fn namespaces_are_per_connection_and_close_on_disconnect() {
    let (addr, handle) = spawn_server(NetConfig::default());
    let mut a = connect(addr);
    a.request("universe 4").unwrap();
    a.request("assert A -> {B}").unwrap();
    assert_eq!(a.request("premises").unwrap(), "premises n=1 A->{B}");
    // A parallel connection starts from nothing.
    let mut b = connect(addr);
    assert!(matches!(
        b.request("premises"),
        Err(ClientError::Server(m)) if m.starts_with("no session")
    ));
    b.request("universe 4").unwrap();
    assert_eq!(b.request("premises").unwrap(), "premises n=0");
    drop(a);
    // Reconnecting does not resurrect the dropped namespace.
    let mut again = connect(addr);
    again.request("universe 4").unwrap();
    assert_eq!(again.request("premises").unwrap(), "premises n=0");
    handle.shutdown();
}

/// The malformed-frame fuzz: random bytes (UTF-8 or not), randomly split
/// writes with pauses, truncated lines, and early disconnects — the server
/// must never panic and must stay accept-ready after every abuse.
#[test]
fn malformed_frames_never_wedge_the_server() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        max_request_bytes: 256,
        ..NetConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0xBADF00D);
    for round in 0..40 {
        let mut stream = TcpStream::connect(addr).expect("fuzz connect");
        stream.set_read_timeout(Some(DEADLINE)).unwrap();
        // Compose a random payload: a few frames of random bytes, some
        // newline-terminated, some not, some far over the line cap.
        let frames = rng.gen_range(1..5);
        let mut payload = Vec::new();
        for _ in 0..frames {
            let len = match rng.gen_range(0..4u32) {
                0 => rng.gen_range(0..8),
                1 => rng.gen_range(8..64),
                2 => rng.gen_range(200..400),
                _ => rng.gen_range(400..2000),
            };
            for _ in 0..len {
                // Mostly printable, salted with raw bytes (incl. invalid
                // UTF-8 lead bytes) and protocol-ish characters.
                let b = match rng.gen_range(0..6u32) {
                    0 => rng.gen_range(0x80..=0xff),
                    1 => b';',
                    2 => b'{',
                    _ => rng.gen_range(0x20..0x7f),
                };
                payload.push(b);
            }
            if rng.gen_range(0..4u32) != 0 {
                payload.push(b'\n');
            }
        }
        // Write it in random splits, sometimes pausing, sometimes
        // disconnecting mid-frame.
        let abort_at = if rng.gen_range(0..3u32) == 0 {
            rng.gen_range(0..payload.len().max(1))
        } else {
            payload.len()
        };
        let mut written = 0;
        while written < abort_at {
            let chunk = rng.gen_range(1..=(abort_at - written).min(97));
            if stream
                .write_all(&payload[written..written + chunk])
                .is_err()
            {
                break; // server already dropped us; that's allowed
            }
            written += chunk;
            if rng.gen_range(0..8u32) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if rng.gen_range(0..2u32) == 0 {
            // Half the time, read whatever came back before hanging up.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
            let mut sink = [0u8; 4096];
            let _ = stream.read(&mut sink);
        }
        drop(stream);
        // The serving loop must still be alive and correct.
        assert_accept_ready(addr);
        assert!(
            handle.active_connections() <= 40,
            "round {round}: connection slots are leaking"
        );
    }
    handle.shutdown();
}

/// Oversized and undecodable lines get `err` replies on the same
/// connection, which keeps serving correct answers afterwards.
#[test]
fn framing_violations_answer_err_and_keep_the_connection() {
    let (addr, handle) = spawn_server(NetConfig {
        max_request_bytes: 64,
        ..NetConfig::default()
    });
    let mut client = connect(addr);
    client.request("universe 4").unwrap();
    // Oversized: discarded with exact accounting, answered in order.
    let long = format!("implies {}", "A".repeat(200));
    let reply = client.raw_request(&long).unwrap();
    assert_eq!(
        reply,
        format!("err request line exceeds 64 bytes (got {})", long.len())
    );
    // Undecodable bytes: the raw socket write bypasses the typed client.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(DEADLINE)).unwrap();
    raw.write_all(b"universe 4\nimplies \xff\xfe\nstats\n")
        .unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        lines.push(line.trim_end().to_string());
    }
    assert_eq!(lines[0], "ok universe n=4 attrs=A,B,C,D");
    assert!(
        lines[1].starts_with("err request is not valid UTF-8 (byte 0xff at position 9"),
        "got: {}",
        lines[1]
    );
    assert!(lines[2].starts_with("stats"), "got: {}", lines[2]);
    // The first connection also kept serving across all of the above.
    assert!(client
        .request("implies AB -> {B}")
        .unwrap()
        .starts_with("yes"));
    client.quit().unwrap();
    handle.shutdown();
}

/// Past the admission cap a connection gets one `err` line and a close;
/// slots free on disconnect and the listener itself never blocks.
#[test]
fn connection_cap_refuses_without_wedging() {
    let (addr, handle) = spawn_server(NetConfig {
        max_connections: 2,
        ..NetConfig::default()
    });
    let mut a = connect(addr);
    let mut b = connect(addr);
    a.request("universe 2").unwrap();
    b.request("universe 2").unwrap();
    // Third connection: refused with the capacity error, then closed.
    let mut refused_seen = false;
    for _ in 0..50 {
        let mut c = connect(addr);
        match c.raw_request("universe 2") {
            Ok(reply) if reply.starts_with("err server at connection capacity") => {
                refused_seen = true;
                break;
            }
            // The admission gauge is updated by the handler thread; a
            // just-accepted probe can sneak under the cap. Retry.
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    assert!(refused_seen, "cap never refused a connection");
    assert!(handle.refused_connections() > 0);
    // Freeing a slot re-admits new connections.
    drop(a);
    for _ in 0..100 {
        let mut c = connect(addr);
        if let Ok(reply) = c.raw_request("universe 2") {
            if reply.starts_with("ok universe") {
                drop(b);
                handle.shutdown();
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("freed connection slot was never re-admitted");
}

/// A strict request/response client over a multi-threaded pipeline must
/// get every reply without pipelining anything — the idle-flush property.
/// (Without it, the wave-batching contract would withhold the reply and
/// this test would hit its read deadline.)
#[test]
fn strict_request_response_clients_never_wait_for_a_wave() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 3,
        ..NetConfig::default()
    });
    let mut client = connect(addr);
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.request("universe 4").unwrap();
    client.request("assert A -> {B}").unwrap();
    for _ in 0..20 {
        // Each query is deferred into a wave of size 1 and must be flushed
        // the moment the connection has nothing further buffered.
        assert!(client
            .request("implies A -> {B}")
            .unwrap()
            .starts_with("yes"));
        assert!(client
            .request("witness AB -> {C}")
            .unwrap()
            .starts_with("witness"));
        let interval = client.bound("AB").unwrap();
        assert_eq!(interval.lo, 0.0);
    }
    client.quit().unwrap();
    handle.shutdown();
}

/// `quit` ends exactly one connection — gracefully — and the server keeps
/// accepting; an abrupt disconnect mid-pipeline does the same.
#[test]
fn quit_and_disconnect_end_only_their_connection() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let mut stays = connect(addr);
    stays.request("universe 4").unwrap();
    // Graceful quit.
    let goes = connect(addr);
    goes.quit().unwrap();
    // Abrupt disconnect with queries still in flight.
    let mut rude = connect(addr);
    rude.send("universe 4").unwrap();
    for _ in 0..10 {
        rude.send("implies A -> {B}").unwrap();
    }
    drop(rude);
    // The surviving connection and fresh ones still serve.
    assert!(stays
        .request("implies AB -> {B}")
        .unwrap()
        .starts_with("yes"));
    assert_accept_ready(addr);
    stays.quit().unwrap();
    handle.shutdown();
}

/// Every protocol verb — including the discovery verbs and `help`/`reset` —
/// is reachable over the wire and answers exactly what the in-process
/// pipeline answers on the same deterministic all-verbs script.
#[test]
fn every_verb_is_served_over_tcp() {
    let lines: Vec<String> = [
        "help",
        "session list",
        "universe 4",
        "assert A->{B}",
        "assert B->{C}",
        "implies A->{C}",
        "witness C->{A}",
        "derive A->{C}",
        "batch A->{C} ; C->{A}",
        "known A = 40",
        "bound AB",
        "knowns",
        "forget A",
        "load AB ; ABC ; B ; C ; BC",
        "dataset",
        "mine 2 2",
        "adopt 2 2",
        "premises",
        "retract A->{B}",
        "session new",
        "universe 2",
        "session use 0",
        "session close 1",
        "reset",
        "stats",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let want = in_process_replies(&lines, 2);
    let got = tcp_replies(addr, &lines);
    assert_eq!(got, want, "a verb answered differently over TCP");
    // …and `quit`, the one verb a pipelined script can't carry mid-stream.
    let mut client = connect(addr);
    client.request("universe 2").unwrap();
    client.quit().unwrap();
    handle.shutdown();
}

/// Scripts far larger than the socket buffers cannot deadlock the
/// write/read pair: `run_script` drains replies concurrently with the
/// burst write (~1.6 MB each way here, past any default loopback buffer).
#[test]
fn large_pipelined_scripts_do_not_deadlock() {
    let (addr, handle) = spawn_server(NetConfig {
        threads: 2,
        ..NetConfig::default()
    });
    let lines: Vec<String> = std::iter::once("universe 4".to_string())
        .chain((0..60_000).map(|_| "session list".to_string()))
        .collect();
    let mut client = connect(addr);
    let replies = client
        .run_script(lines.iter().map(String::as_str))
        .expect("large script");
    assert_eq!(replies.len(), 60_001);
    assert!(replies[1..].iter().all(|r| r.starts_with("sessions n=1")));
    client.quit().expect("graceful quit");
    handle.shutdown();
}
