//! Hermetic stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support) that
//!   expands each `fn name(arg in strategy, ...)` item into a `#[test]`
//!   running the body over `cases` sampled inputs;
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * range strategies over integers and `f64`, tuple strategies, [`Just`],
//!   [`any`], [`collection::vec`], and the [`prop_oneof!`] union;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped to plain assertions).
//!
//! Differences from upstream: sampling is deterministic per test (the RNG is
//! seeded from the test's name, so failures are reproducible by re-running
//! the test), and there is **no shrinking** — a failing case panics with the
//! sampled values visible in the assertion message instead of a minimized
//! counterexample.  For the small algebraic domains this workspace tests
//! (6-attribute universes, depth-3 formulas), unshrunk counterexamples are
//! already small.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every test has its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Self::Value`.
///
/// Upstream proptest strategies carry shrinking machinery; here a strategy is
/// just a deterministic sampler.
pub trait Strategy {
    /// The type of values the strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f` lifts a
    /// strategy for depth-`d` values into one for depth-`d+1` values.  The
    /// `_desired_size`/`_expected_branch_size` parameters are accepted for
    /// API compatibility; recursion depth alone bounds generation here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth.max(1) {
            let next = f(levels.last().expect("at least the leaf level").clone());
            levels.push(next.boxed());
        }
        Recursive { levels }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Strategy mapping another strategy's values (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives; must be nonempty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !arms.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Depth-bounded recursive strategy (see [`Strategy::prop_recursive`]).
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Sampling a random level varies structure size, like upstream's
        // probabilistic recursion control.
        let i = rng.below(self.levels.len() as u64) as usize;
        self.levels[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical strategy, usable through [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for the full value range of a primitive type.
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything accepted as the size argument of [`vec()`]: an exact length, a
    /// half-open range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len - self.min_len + 1) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests.  Each item
/// `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that samples
/// the strategies `cases` times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let x = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(y <= 4);
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_union_vec_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = prop_oneof![(0u64..10).prop_map(Tree::Leaf), Just(Tree::Leaf(99))];
        let tree = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("trees");
        for _ in 0..200 {
            let t = Strategy::generate(&tree, &mut rng);
            assert!(depth(&t) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, pair in (0usize..5, 1usize..=3)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 5 && pair.1 >= 1 && pair.1 <= 3);
        }

        #[test]
        fn any_samples_full_range(x in any::<u64>()) {
            let _ = x;
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let mut c = TestRng::from_name("other");
        let strat = crate::collection::vec(0u64..1000, 0..8);
        let va: Vec<Vec<u64>> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut a))
            .collect();
        let vb: Vec<Vec<u64>> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut b))
            .collect();
        let vc: Vec<Vec<u64>> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut c))
            .collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
