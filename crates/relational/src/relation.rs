//! Relations: finite sets of tuples over a fixed list of attributes.
//!
//! Attributes are identified by index (aligning with a
//! [`setlat::Universe`] for naming); tuple components are small
//! integers.  The operations needed by Section 7 of the paper are projections
//! `t[X]`, agreement of two tuples on an attribute set, and the *agree set* of
//! a tuple pair — the set of attributes on which they coincide — from which
//! both functional-dependency and boolean-dependency satisfaction are decided.

use setlat::{AttrSet, Universe};
use std::collections::HashSet;
use std::fmt;

/// A tuple: one value per attribute of the schema.
pub type Tuple = Vec<u32>;

/// A relation (set of tuples) over `arity` attributes.
///
/// Construction deduplicates tuples, reflecting set semantics.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `arity` attributes.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation from tuples, deduplicating them.
    ///
    /// # Panics
    /// Panics if a tuple has the wrong arity.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(arity: usize, tuples: I) -> Self {
        let mut seen: HashSet<Tuple> = HashSet::new();
        let mut out: Vec<Tuple> = Vec::new();
        for t in tuples {
            assert_eq!(
                t.len(),
                arity,
                "tuple {t:?} has arity {} but the relation has arity {arity}",
                t.len()
            );
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
        Relation { arity, tuples: out }
    }

    /// Parses a relation from rows of whitespace-separated integers.
    pub fn parse(arity: usize, text: &str) -> Result<Self, String> {
        let mut tuples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let values: Result<Vec<u32>, _> =
                trimmed.split_whitespace().map(str::parse::<u32>).collect();
            let values = values.map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if values.len() != arity {
                return Err(format!(
                    "line {}: expected {arity} values, found {}",
                    lineno + 1,
                    values.len()
                ));
            }
            tuples.push(values);
        }
        Ok(Relation::from_tuples(arity, tuples))
    }

    /// Adds a tuple if not already present.
    ///
    /// # Panics
    /// Panics if the tuple has the wrong arity.
    pub fn insert(&mut self, tuple: Tuple) {
        assert_eq!(tuple.len(), self.arity, "wrong arity");
        if !self.tuples.contains(&tuple) {
            self.tuples.push(tuple);
        }
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` iff the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The projection `t[X]` of one tuple: the values of the attributes in `x`,
    /// in attribute order.
    pub fn project_tuple(tuple: &[u32], x: AttrSet) -> Vec<u32> {
        x.iter().map(|i| tuple[i]).collect()
    }

    /// The projection `π_X(r)` of the relation: the set of distinct `X`-values.
    pub fn project(&self, x: AttrSet) -> Vec<Vec<u32>> {
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            let proj = Relation::project_tuple(t, x);
            if seen.insert(proj.clone()) {
                out.push(proj);
            }
        }
        out
    }

    /// Returns `true` iff tuples `t` and `t'` agree on every attribute in `x`.
    pub fn tuples_agree_on(t: &[u32], t_prime: &[u32], x: AttrSet) -> bool {
        x.iter().all(|i| t[i] == t_prime[i])
    }

    /// The *agree set* of two tuples: the set of attributes on which they coincide.
    pub fn agree_set(t: &[u32], t_prime: &[u32]) -> AttrSet {
        let mut out = AttrSet::EMPTY;
        for i in 0..t.len().min(t_prime.len()) {
            if t[i] == t_prime[i] {
                out.insert(i);
            }
        }
        out
    }

    /// All agree sets of distinct tuple pairs (with multiplicity removed).
    pub fn agree_sets(&self) -> Vec<AttrSet> {
        let mut out: Vec<AttrSet> = Vec::new();
        for (i, t) in self.tuples.iter().enumerate() {
            for t_prime in &self.tuples[i + 1..] {
                out.push(Relation::agree_set(t, t_prime));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Formats the relation as a table using attribute names from the universe.
    pub fn format(&self, universe: &Universe) -> String {
        let mut out = String::new();
        out.push_str(&universe.names().join("\t"));
        out.push('\n');
        for t in &self.tuples {
            let row: Vec<String> = t.iter().map(u32::to_string).collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation(arity={}, {} tuples)",
            self.arity,
            self.tuples.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_tuples(
            3,
            vec![
                vec![1, 10, 100],
                vec![1, 10, 200],
                vec![2, 20, 100],
                vec![2, 30, 100],
            ],
        )
    }

    #[test]
    fn construction_dedups() {
        let r = Relation::from_tuples(2, vec![vec![1, 2], vec![1, 2], vec![3, 4]]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let _ = Relation::from_tuples(2, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn parse_roundtrip() {
        let r = Relation::parse(3, "1 10 100\n1 10 200\n\n2 20 100").unwrap();
        assert_eq!(r.len(), 3);
        assert!(Relation::parse(2, "1 2 3").is_err());
        assert!(Relation::parse(2, "1 x").is_err());
    }

    #[test]
    fn projection() {
        let r = sample();
        let proj = r.project(AttrSet::from_indices([0]));
        assert_eq!(proj.len(), 2);
        let proj2 = r.project(AttrSet::from_indices([0, 1]));
        assert_eq!(proj2.len(), 3);
        let proj_empty = r.project(AttrSet::EMPTY);
        assert_eq!(proj_empty.len(), 1); // the empty tuple, once
    }

    #[test]
    fn agreement_and_agree_sets() {
        let t1 = vec![1, 10, 100];
        let t2 = vec![1, 20, 100];
        assert!(Relation::tuples_agree_on(
            &t1,
            &t2,
            AttrSet::from_indices([0, 2])
        ));
        assert!(!Relation::tuples_agree_on(
            &t1,
            &t2,
            AttrSet::from_indices([1])
        ));
        assert_eq!(Relation::agree_set(&t1, &t2), AttrSet::from_indices([0, 2]));
        // Every tuple agrees with itself everywhere.
        assert_eq!(Relation::agree_set(&t1, &t1), AttrSet::full(3));
    }

    #[test]
    fn agree_sets_of_relation() {
        let r = sample();
        let sets = r.agree_sets();
        assert!(sets.contains(&AttrSet::from_indices([0, 1])));
        assert!(sets.contains(&AttrSet::from_indices([2])));
        // No pair of distinct tuples agrees on everything.
        assert!(!sets.contains(&AttrSet::full(3)));
    }

    #[test]
    fn insert_is_set_like() {
        let mut r = Relation::new(2);
        r.insert(vec![1, 2]);
        r.insert(vec![1, 2]);
        r.insert(vec![2, 3]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn formatting() {
        let u = Universe::of_size(2);
        let r = Relation::from_tuples(2, vec![vec![1, 2]]);
        let s = r.format(&u);
        assert!(s.contains("A\tB"));
        assert!(s.contains("1\t2"));
    }
}
