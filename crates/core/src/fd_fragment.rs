//! The polynomial-time fragment: single-member right-hand sides.
//!
//! The conclusion of the paper observes that when every right-hand side
//! contains exactly one member (`X → {Y}`), the implication problem for
//! differential constraints is equivalent to the implication problem for
//! functional dependencies — hence decidable in polynomial time via attribute
//! closure, in stark contrast to the coNP-complete general case.
//!
//! This module implements the fragment: translation to FDs, the closure-based
//! decision procedure, and helpers to check whether a constraint set lies in
//! the fragment.  The equivalence with the general (exponential) procedure is
//! verified in the tests and measured by the `bench_fd_fragment` benchmark.

use crate::constraint::DiffConstraint;
use relational::fd::{self, FunctionalDependency};
use setlat::{AttrSet, Family, Universe};

/// Returns `true` iff the constraint lies in the fragment: its right-hand side
/// has exactly one member.
pub fn in_fragment(constraint: &DiffConstraint) -> bool {
    constraint.is_single_member()
}

/// Returns `true` iff every constraint of the set lies in the fragment.
pub fn set_in_fragment(constraints: &[DiffConstraint]) -> bool {
    constraints.iter().all(in_fragment)
}

/// Translates a single-member constraint `X → {Y}` into the FD `X → Y`.
///
/// Returns `None` when the constraint is not in the fragment.
pub fn to_fd(constraint: &DiffConstraint) -> Option<FunctionalDependency> {
    if !in_fragment(constraint) {
        return None;
    }
    let member = constraint.rhs.members()[0];
    Some(FunctionalDependency::new(constraint.lhs, member))
}

/// Translates an FD `X → Y` into the single-member constraint `X → {Y}`.
pub fn from_fd(fd: &FunctionalDependency) -> DiffConstraint {
    DiffConstraint::new(fd.lhs, Family::single(fd.rhs))
}

/// Decides implication inside the fragment in polynomial time, via attribute
/// closure: `C ⊨ X → {Y}` iff `Y ⊆ X⁺` under the translated FD set.
///
/// # Panics
/// Panics if a premise or the goal is not in the fragment; callers should check
/// with [`set_in_fragment`] / [`in_fragment`] first (the general procedure in
/// [`crate::implication`] handles arbitrary constraints).
pub fn implies_polynomial(premises: &[DiffConstraint], goal: &DiffConstraint) -> bool {
    let fds: Vec<FunctionalDependency> = premises
        .iter()
        .map(|c| to_fd(c).expect("premise outside the single-member fragment"))
        .collect();
    let goal_fd = to_fd(goal).expect("goal outside the single-member fragment");
    fd::implies(&fds, &goal_fd)
}

/// The attribute closure `X⁺` of a set under single-member constraints
/// (exposed for examples and experiments).
pub fn closure(premises: &[DiffConstraint], x: AttrSet) -> AttrSet {
    let fds: Vec<FunctionalDependency> = premises.iter().filter_map(to_fd).collect();
    fd::attribute_closure(x, &fds)
}

/// Exhaustively enumerates, for a fragment constraint set, every implied
/// single-member constraint with a singleton dependent — the analogue of the
/// FD closure `F⁺` restricted to `X → {A}` — in polynomial time per query.
pub fn implied_singleton_constraints(
    universe: &Universe,
    premises: &[DiffConstraint],
) -> Vec<DiffConstraint> {
    let n = universe.len();
    let mut out = Vec::new();
    for lhs in universe.all_subsets() {
        let cl = closure(premises, lhs);
        for a in cl.difference(lhs).iter() {
            out.push(DiffConstraint::new(
                lhs,
                Family::single(AttrSet::singleton(a)),
            ));
        }
    }
    debug_assert!(out.iter().all(|c| c.footprint().len() <= n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn fragment_membership() {
        let u = u();
        assert!(in_fragment(
            &DiffConstraint::parse("A -> {BC}", &u).unwrap()
        ));
        assert!(!in_fragment(
            &DiffConstraint::parse("A -> {B, C}", &u).unwrap()
        ));
        assert!(!in_fragment(&DiffConstraint::parse("A -> {}", &u).unwrap()));
        assert!(set_in_fragment(&parse(&u, &["A -> {B}", "B -> {CD}"])));
        assert!(!set_in_fragment(&parse(&u, &["A -> {B}", "B -> {C, D}"])));
    }

    #[test]
    fn translation_round_trip() {
        let u = u();
        let c = DiffConstraint::parse("AB -> {CD}", &u).unwrap();
        let fd = to_fd(&c).unwrap();
        assert_eq!(from_fd(&fd), c);
        assert!(to_fd(&DiffConstraint::parse("A -> {B, C}", &u).unwrap()).is_none());
    }

    #[test]
    fn polynomial_procedure_agrees_with_general_procedure() {
        // Exhaustive comparison over a fixed premise set and all singleton-member
        // goals on a 4-attribute universe.
        let u = u();
        let premises = parse(&u, &["A -> {B}", "B -> {C}", "CD -> {A}"]);
        for lhs_mask in 0u64..16 {
            for rhs_mask in 1u64..16 {
                let goal = DiffConstraint::new(
                    AttrSet::from_bits(lhs_mask),
                    Family::single(AttrSet::from_bits(rhs_mask)),
                );
                assert_eq!(
                    implies_polynomial(&premises, &goal),
                    implication::implies(&u, &premises, &goal),
                    "fragment procedures disagree on {}",
                    goal.format(&u)
                );
            }
        }
    }

    #[test]
    fn closure_matches_known_values() {
        let u = u();
        let premises = parse(&u, &["A -> {B}", "B -> {C}", "CD -> {A}"]);
        assert_eq!(
            closure(&premises, u.parse_set("A").unwrap()),
            u.parse_set("ABC").unwrap()
        );
        assert_eq!(
            closure(&premises, u.parse_set("D").unwrap()),
            u.parse_set("D").unwrap()
        );
        assert_eq!(
            closure(&premises, u.parse_set("CD").unwrap()),
            u.parse_set("ABCD").unwrap()
        );
    }

    #[test]
    fn implied_singleton_constraints_are_all_implied() {
        let u = u();
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let implied = implied_singleton_constraints(&u, &premises);
        // A → {C} must be found, C → {A} must not.
        assert!(implied.contains(&DiffConstraint::parse("A -> {C}", &u).unwrap()));
        assert!(!implied.contains(&DiffConstraint::parse("C -> {A}", &u).unwrap()));
        for c in &implied {
            assert!(implication::implies(&u, &premises, c));
        }
    }

    #[test]
    #[should_panic(expected = "fragment")]
    fn polynomial_procedure_rejects_general_constraints() {
        let u = u();
        let premises = parse(&u, &["A -> {B, C}"]);
        let goal = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let _ = implies_polynomial(&premises, &goal);
    }
}
