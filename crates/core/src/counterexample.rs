//! Explicit counterexamples for non-implications.
//!
//! When `C ⊭ X → 𝒴`, the proofs of Theorem 3.5, Proposition 6.4 and
//! Corollary 7.4 each construct a concrete witness separating `C` from the
//! goal — in three different worlds:
//!
//! * a **set function** `f^U` (a point mass at an uncovered set `U`);
//! * a **basket database** consisting of the single basket `U`;
//! * a **two-tuple relation** whose tuples agree exactly on `U`.
//!
//! This module packages the three constructions behind one API so users (and
//! the examples) can *see* why an implication fails in whichever domain they
//! care about.

use crate::constraint::DiffConstraint;
use crate::implication;
use fis::basket::BasketDb;
use relational::distribution::ProbabilisticRelation;
use relational::relation::Relation;
use setlat::{AttrSet, SetFunction, Universe};

/// A bundle of counterexamples witnessing `C ⊭ goal`.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The uncovered set `U ∈ L(goal) − L(C)` the constructions are based on.
    pub witness_set: AttrSet,
    /// The point-mass set function `f^U` of Theorem 3.5.
    pub function: SetFunction,
    /// The single-basket database `(U)` of Proposition 6.4.
    pub baskets: BasketDb,
    /// The two-tuple relation (with uniform distribution) agreeing exactly on
    /// `U`, per Section 7 — present unless some premise has an empty right-hand
    /// side, in which case **no** probabilistic relation satisfies the premises
    /// at all (see [`crate::rel_bridge::vacuous_over_relations`]) and there is
    /// no relational counterexample to exhibit.
    pub relation: Option<ProbabilisticRelation>,
}

/// Constructs a counterexample bundle, or `None` when the implication holds.
pub fn find(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> Option<Counterexample> {
    let witness_set = implication::refutation_witness(universe, premises, goal)?;
    let n = universe.len();
    let function = SetFunction::point_mass(n, witness_set, 1.0);
    let baskets = BasketDb::from_baskets(n, [witness_set]);
    let relation = if crate::rel_bridge::vacuous_over_relations(premises) {
        None
    } else {
        Some(ProbabilisticRelation::uniform(pair_relation(
            n,
            witness_set,
        )))
    };
    Some(Counterexample {
        witness_set,
        function,
        baskets,
        relation,
    })
}

/// The two-tuple relation whose tuples agree exactly on `u` (collapsing to one
/// tuple when `u = S`, which cannot happen for a genuine witness set because
/// `S ∈ L(X, 𝒴)` forces `𝒴` to have no member at all — in that case the pair
/// degenerates but the Simpson density at `S` is still nonzero, which is what
/// violates the constraint).
fn pair_relation(n: usize, u: AttrSet) -> Relation {
    relational::armstrong::agree_pair_relation(n, u, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fis_bridge;
    use crate::rel_bridge;
    use crate::semantics;

    fn u4() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn no_counterexample_when_implied() {
        let u = u4();
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        assert!(find(&u, &premises, &goal).is_none());
    }

    #[test]
    fn counterexample_separates_in_all_three_worlds() {
        let u = u4();
        let cases = vec![
            (parse(&u, &["A -> {B}", "B -> {C}"]), "C -> {A}"),
            (parse(&u, &["A -> {B, CD}"]), "A -> {B}"),
            (vec![], "A -> {B}"),
            (parse(&u, &["A -> {BC, CD}", "C -> {D}"]), "B -> {A}"),
        ];
        for (premises, goal_text) in cases {
            let goal = DiffConstraint::parse(goal_text, &u).unwrap();
            let ce = find(&u, &premises, &goal)
                .unwrap_or_else(|| panic!("expected a counterexample for {goal_text}"));

            // Set-function world.
            assert!(semantics::satisfies_all(&ce.function, &premises));
            assert!(!semantics::satisfies(&ce.function, &goal));

            // FIS world.
            for p in &premises {
                assert!(fis_bridge::support_function_satisfies(&ce.baskets, p));
            }
            assert!(!fis_bridge::support_function_satisfies(&ce.baskets, &goal));

            // Relational world (the premises here all have nonempty families, so
            // the relational witness must exist).
            let relation = ce.relation.as_ref().expect("nonempty-family premises");
            for p in &premises {
                assert!(rel_bridge::simpson_satisfies(relation, p));
            }
            assert!(!rel_bridge::simpson_satisfies(relation, &goal));

            // The witness set is in the goal's lattice but in no premise's lattice.
            assert!(goal.lattice_contains(ce.witness_set));
            for p in &premises {
                assert!(!p.lattice_contains(ce.witness_set));
            }
        }
    }

    #[test]
    fn counterexample_for_empty_goal() {
        // ∅ → ∅ is refuted by any nonzero function; the witness is some set.
        let u = Universe::of_size(2);
        let goal = DiffConstraint::new(AttrSet::EMPTY, setlat::Family::empty());
        let ce = find(&u, &[], &goal).expect("not implied by nothing");
        assert!(!semantics::satisfies(&ce.function, &goal));
    }
}
