//! N1 — network serving: what the `diffcond serve` TCP front-end costs over
//! the in-process pipeline, on the same warm repeated-premise query traffic
//! as `BENCH_server.json` (same generator, same sizes, so the figures are
//! directly comparable).
//!
//! Four axes:
//!
//! * **pipelined socket throughput** — k connections, each replaying m
//!   protocol lines in one burst and draining the reply stream (the wire
//!   analogue of `Pipeline` batch serving), over both framings: newline
//!   text and the negotiated binary mask frames of `protocol::binary`;
//! * **strict request/response latency** — one warm connection issuing one
//!   query at a time and waiting for each reply: p50/p99 of the full
//!   round trip (framing, parse, decide, reply, loopback both ways),
//!   again per framing;
//! * **in-process reference** — the same script through the in-process
//!   [`Pipeline`], so `net_over_inprocess` records the transport tax
//!   (taken against the best framing, which is what a tuned client uses).

use criterion::{criterion_group, criterion_main, Criterion};
use diffcon_bench::workloads;
use diffcon_bench::{JsonReport, Table};
use diffcon_engine::client::Client;
use diffcon_engine::net::{NetConfig, NetServer};
use diffcon_engine::{EngineMetrics, Pipeline, SessionConfig};
use diffcon_obs::{Histogram, HistogramSnapshot};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const UNIVERSE: usize = 12;
const PREMISES: usize = 8;
const POOL: usize = 64;
const STREAM: usize = 512;
/// Stream repetitions per pipelined pass (per connection): m = REPEATS ×
/// STREAM request lines in one burst.
const REPEATS: usize = 8;
const TRIALS: usize = 7;
/// Strict round trips measured for the latency distribution.
const LATENCY_SAMPLES: usize = 2000;

/// The protocol script of the standard serving workload: open the universe,
/// assert the premises, then the query stream as `implies` lines.
fn build_script(repeats: usize) -> Vec<String> {
    let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, STREAM);
    let universe = &base.universe;
    let mut lines = vec![format!("universe {UNIVERSE}")];
    for premise in &base.premises {
        lines.push(format!(
            "assert {}",
            diffcon_engine::protocol::format_wire(premise, universe)
        ));
    }
    for _ in 0..repeats {
        for goal in &stream {
            lines.push(format!(
                "implies {}",
                diffcon_engine::protocol::format_wire(goal, universe)
            ));
        }
    }
    lines
}

/// The same script as mask frames: `universe` as a line frame, the premises
/// as `assert` mask frames, the query stream as `implies` mask frames.
/// Returns the pre-encoded burst and its frame (= expected reply) count.
fn build_binary_burst(repeats: usize) -> (Vec<u8>, usize) {
    use diffcon_engine::protocol::binary;
    let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, STREAM);
    let mut burst = Vec::new();
    let mut frames = 1usize;
    binary::encode_line(&format!("universe {UNIVERSE}"), &mut burst);
    for premise in &base.premises {
        let members: Vec<u64> = premise.rhs.members().iter().map(|m| m.bits()).collect();
        binary::encode_assert(premise.lhs.bits(), &members, &mut burst);
        frames += 1;
    }
    for _ in 0..repeats {
        for goal in &stream {
            let members: Vec<u64> = goal.rhs.members().iter().map(|m| m.bits()).collect();
            binary::encode_implies(goal.lhs.bits(), &members, &mut burst);
            frames += 1;
        }
    }
    (burst, frames)
}

fn spawn_server(threads: usize) -> (SocketAddr, diffcon_engine::ShutdownHandle) {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            session: SessionConfig::default(),
            threads,
            // Framing is negotiated per connection, so one server carries
            // both the text and the binary passes.
            binary: true,
            ..NetConfig::default()
        },
    )
    .expect("loopback bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || server.run().expect("accept loop"));
    (addr, handle)
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    client
}

fn connect_binary(addr: SocketAddr) -> Client {
    let mut client = Client::connect_binary(addr).expect("binary connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    client
}

/// One pipelined pass over `connections` parallel connections; returns the
/// wall-clock seconds and asserts every reply stream is complete and sane.
fn pipelined_pass(addr: SocketAddr, script: &[String], connections: usize) -> f64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = connect(addr);
                    // Warm the connection's caches with one quiet pass of
                    // the prologue + first stream block.
                    let start = Instant::now();
                    let replies = client
                        .run_script(script.iter().map(String::as_str))
                        .expect("script round trip");
                    let elapsed = start.elapsed().as_secs_f64();
                    assert_eq!(replies.len(), script.len());
                    let answered = replies
                        .iter()
                        .filter(|r| r.starts_with("yes") || r.starts_with("no"))
                        .count();
                    assert_eq!(answered, script.len() - 1 - PREMISES, "lost replies");
                    elapsed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench connection panicked"))
            .fold(0.0f64, f64::max)
    })
}

/// One pipelined binary pass: each connection negotiates the binary framing
/// and replays the pre-encoded mask-frame burst through
/// [`Client::run_frames`].
fn pipelined_pass_binary(addr: SocketAddr, burst: &[u8], frames: usize, connections: usize) -> f64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = connect_binary(addr);
                    let start = Instant::now();
                    let replies = client
                        .run_frames(burst.to_vec(), frames)
                        .expect("binary burst round trip");
                    let elapsed = start.elapsed().as_secs_f64();
                    assert_eq!(replies.len(), frames);
                    let answered = replies
                        .iter()
                        .filter(|r| r.starts_with("yes") || r.starts_with("no"))
                        .count();
                    assert_eq!(answered, frames - 1 - PREMISES, "lost replies");
                    elapsed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench connection panicked"))
            .fold(0.0f64, f64::max)
    })
}

/// Best wall-clock seconds over `TRIALS` passes.
fn best_secs(mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        best = best.min(f());
    }
    best
}

/// The same script through the in-process pipeline (no sockets): the
/// reference the transport tax is measured against.
fn in_process_secs(script: &[String], threads: usize) -> f64 {
    best_secs(|| {
        let mut pipeline = Pipeline::new(SessionConfig::default(), threads);
        let mut answered = 0usize;
        let start = Instant::now();
        for line in script {
            let (replies, _) = pipeline.push_line(line);
            answered += replies.len();
        }
        answered += pipeline.finish().len();
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(answered, script.len());
        elapsed
    })
}

/// p50/p99 (µs) of strict request/response round trips on a warm
/// connection.
fn strict_latency(addr: SocketAddr, script: &[String]) -> (f64, f64) {
    let mut client = connect(addr);
    // Set up and warm: the full script once, pipelined.
    let replies = client
        .run_script(script.iter().map(String::as_str))
        .expect("warmup");
    assert_eq!(replies.len(), script.len());
    let queries: Vec<&String> = script.iter().skip(1 + PREMISES).collect();
    let mut samples = Vec::with_capacity(LATENCY_SAMPLES);
    for i in 0..LATENCY_SAMPLES {
        let line = queries[i % queries.len()];
        let start = Instant::now();
        let reply = client.raw_request(line).expect("strict round trip");
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(reply.starts_with("yes") || reply.starts_with("no"));
    }
    percentiles(samples)
}

/// p50/p99 (µs) of strict mask-frame round trips on a warm binary
/// connection: `send_implies_mask` + `recv`, one query in flight at a time.
fn strict_latency_binary(addr: SocketAddr, burst: &[u8], frames: usize) -> (f64, f64) {
    let (base, stream) = workloads::engine_query_stream(42, UNIVERSE, PREMISES, POOL, STREAM);
    let _ = base;
    let queries: Vec<(u64, Vec<u64>)> = stream
        .iter()
        .map(|goal| {
            (
                goal.lhs.bits(),
                goal.rhs.members().iter().map(|m| m.bits()).collect(),
            )
        })
        .collect();
    let mut client = connect_binary(addr);
    // Set up and warm: the full burst once, pipelined.
    let replies = client.run_frames(burst.to_vec(), frames).expect("warmup");
    assert_eq!(replies.len(), frames);
    let mut samples = Vec::with_capacity(LATENCY_SAMPLES);
    for i in 0..LATENCY_SAMPLES {
        let (lhs, rhs) = &queries[i % queries.len()];
        let start = Instant::now();
        client
            .send_implies_mask(*lhs, rhs)
            .expect("mask frame send");
        let reply = client.recv().expect("strict round trip");
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(reply.starts_with("yes") || reply.starts_with("no"));
    }
    percentiles(samples)
}

fn percentiles(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    (pick(0.50), pick(0.99))
}

/// p50/p99 (µs) of a 1-byte blocking echo over loopback: the transport
/// floor the strict round trips are measured against.  Everything above
/// this is the engine (framing, parse, decide, reply); everything below is
/// the kernel and — dominant on small containers — scheduler switches
/// between the two endpoints sharing the cores.
fn loopback_floor() -> (f64, f64) {
    use std::io::{Read, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("floor bind");
    let addr = listener.local_addr().expect("floor addr");
    let echo = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("floor accept");
        stream.set_nodelay(true).expect("floor nodelay");
        let mut byte = [0u8; 1];
        while stream.read_exact(&mut byte).is_ok() {
            if stream.write_all(&byte).is_err() {
                break;
            }
        }
    });
    let mut stream = std::net::TcpStream::connect(addr).expect("floor connect");
    stream.set_nodelay(true).expect("floor nodelay");
    let mut byte = [0u8; 1];
    let mut samples = Vec::with_capacity(LATENCY_SAMPLES);
    for _ in 0..LATENCY_SAMPLES {
        let start = Instant::now();
        stream.write_all(b"x").expect("floor write");
        stream.read_exact(&mut byte).expect("floor read");
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    drop(stream);
    echo.join().expect("floor echo thread");
    percentiles(samples)
}

/// The four pipeline stage histograms of the process-wide registry, labeled
/// as in the `diffcond_stage_latency_us` exposition.  The bench server runs
/// in-process, so these capture exactly the serving work driven below.
fn stage_histograms() -> [(&'static str, &'static Histogram); 4] {
    let metrics = EngineMetrics::global();
    [
        ("frame", &metrics.frame_ns),
        ("queue", &metrics.queue_ns),
        ("plan", &metrics.plan_ns),
        ("reply", &metrics.reply_ns),
    ]
}

fn emit_json_report() {
    let script = build_script(REPEATS);
    let queries_per_pass = (REPEATS * STREAM) as f64;
    let (addr, handle) = spawn_server(2);
    // Baseline the server-side stage histograms so the report windows only
    // the traffic this bench drives (the registry is process-global).
    let stage_base: Vec<(&str, HistogramSnapshot)> = stage_histograms()
        .iter()
        .map(|(stage, histogram)| (*stage, histogram.snapshot()))
        .collect();

    let (burst, frames) = build_binary_burst(REPEATS);
    let mut table = Table::new(
        "N1: warm pipelined socket throughput by framing and connection count",
        ["framing", "connections", "queries", "elapsed_us", "qps"],
    );
    let mut report = JsonReport::new("net_serving");
    report.push_metric("stream_len", STREAM as f64);
    report.push_metric("queries_per_connection", queries_per_pass);

    // Warm the server once per connection count before timing.
    let mut best_qps = 0.0f64;
    let mut best_binary_qps = 0.0f64;
    for &connections in &[1usize, 2, 4] {
        pipelined_pass(addr, &script, connections); // warm
        let secs = best_secs(|| pipelined_pass(addr, &script, connections));
        let qps = queries_per_pass * connections as f64 / secs;
        best_qps = best_qps.max(qps);
        table.push_row([
            "text".to_string(),
            connections.to_string(),
            ((REPEATS * STREAM) * connections).to_string(),
            format!("{:.0}", secs * 1e6),
            format!("{:.0}", qps),
        ]);
        report.push_metric(format!("warm_net_qps_c{connections}"), qps);

        pipelined_pass_binary(addr, &burst, frames, connections); // warm
        let secs = best_secs(|| pipelined_pass_binary(addr, &burst, frames, connections));
        let qps = queries_per_pass * connections as f64 / secs;
        best_binary_qps = best_binary_qps.max(qps);
        table.push_row([
            "binary".to_string(),
            connections.to_string(),
            ((REPEATS * STREAM) * connections).to_string(),
            format!("{:.0}", secs * 1e6),
            format!("{:.0}", qps),
        ]);
        report.push_metric(format!("warm_net_binary_qps_c{connections}"), qps);
    }
    table.eprint();
    report.push_metric("warm_net_best_qps", best_qps);
    report.push_metric("warm_net_binary_best_qps", best_binary_qps);

    let inproc_secs = in_process_secs(&script, 2);
    let inproc_qps = queries_per_pass / inproc_secs;
    report.push_metric("inprocess_qps", inproc_qps);
    // The transport tax a tuned client pays: the best framing over the best
    // in-process pass.
    report.push_metric(
        "net_over_inprocess",
        best_qps.max(best_binary_qps) / inproc_qps,
    );

    let (p50_us, p99_us) = strict_latency(addr, &script);
    report.push_metric("strict_p50_us", p50_us);
    report.push_metric("strict_p99_us", p99_us);
    let (binary_p50_us, binary_p99_us) = strict_latency_binary(addr, &burst, frames);
    report.push_metric("strict_binary_p50_us", binary_p50_us);
    report.push_metric("strict_binary_p99_us", binary_p99_us);
    let (floor_p50_us, floor_p99_us) = loopback_floor();
    report.push_metric("loopback_floor_p50_us", floor_p50_us);
    report.push_metric("loopback_floor_p99_us", floor_p99_us);
    // What the engine itself adds over the bare transport, at the median
    // (tails are scheduler noise shared with the floor).
    report.push_metric(
        "strict_binary_over_floor_p50_us",
        binary_p50_us - floor_p50_us,
    );

    // Server-side stage breakdown of everything driven above, from the same
    // histograms `stats` and the metrics endpoint report: where the strict
    // round trip actually goes once the frame is off the socket.
    let mut stage_table = Table::new(
        "N1: server-side stage latency (histogram-derived, whole bench window)",
        ["stage", "samples", "p50_us", "p99_us"],
    );
    let mut stage_samples: Vec<(&str, u64)> = Vec::new();
    for ((stage, histogram), (_, base)) in stage_histograms().iter().zip(&stage_base) {
        let window = histogram.snapshot().minus(base);
        let (stage_p50, stage_p99) = (window.p50() as f64 / 1e3, window.p99() as f64 / 1e3);
        report.push_metric(format!("stage_{stage}_samples"), window.count() as f64);
        report.push_metric(format!("stage_{stage}_p50_us"), stage_p50);
        report.push_metric(format!("stage_{stage}_p99_us"), stage_p99);
        stage_samples.push((stage, window.count()));
        stage_table.push_row([
            (*stage).to_string(),
            window.count().to_string(),
            format!("{stage_p50:.1}"),
            format!("{stage_p99:.1}"),
        ]);
        assert!(
            window.count() > 0,
            "stage `{stage}` recorded no samples over the bench window"
        );
    }
    stage_table.eprint();
    // The reply stage is timed per reply written, so its sample count must
    // track the per-request frame count (every request in these scripts
    // gets a non-empty reply) — not one sample per flushed wave, the
    // undersampling this pins against.
    let count_of = |name: &str| {
        stage_samples
            .iter()
            .find(|(stage, _)| *stage == name)
            .map(|(_, count)| *count as f64)
            .expect("stage present")
    };
    let (frames, replies) = (count_of("frame"), count_of("reply"));
    assert!(
        replies >= frames * 0.95,
        "reply stage undersampled: {replies} reply samples for {frames} framed requests"
    );

    handle.shutdown();
    report.push_table(table);
    report.push_table(stage_table);
    match report.write_to_repo_root("BENCH_net.json") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
    }
    eprintln!(
        "warm pipelined socket {:.0} qps text / {:.0} qps binary \
         ({:.2}x of in-process {:.0} qps); strict round trip \
         text p50 {:.1} µs p99 {:.1} µs, binary p50 {:.1} µs p99 {:.1} µs \
         (raw loopback floor p50 {:.1} µs p99 {:.1} µs)",
        best_qps,
        best_binary_qps,
        best_qps.max(best_binary_qps) / inproc_qps,
        inproc_qps,
        p50_us,
        p99_us,
        binary_p50_us,
        binary_p99_us,
        floor_p50_us,
        floor_p99_us
    );
    assert!(
        p99_us < 60_000.0 && binary_p99_us < 60_000.0,
        "strict p99 round trip blew past 60 ms on loopback \
         (text {p99_us:.0} µs, binary {binary_p99_us:.0} µs)"
    );
}

fn bench_net_serving(c: &mut Criterion) {
    emit_json_report();

    // Criterion series: one strict round trip on a warm connection.
    let script = build_script(1);
    let (addr, handle) = spawn_server(2);
    let mut client = connect(addr);
    let replies = client
        .run_script(script.iter().map(String::as_str))
        .expect("warmup");
    assert_eq!(replies.len(), script.len());
    let query = script.last().expect("nonempty script").clone();
    let mut group = c.benchmark_group("N1_net_round_trip");
    group.sample_size(20);
    group.bench_function("strict_warm_implies", |b| {
        b.iter(|| client.raw_request(&query).expect("round trip"))
    });
    group.finish();
    handle.shutdown();
}

criterion_group!(benches, bench_net_serving);
criterion_main!(benches);
