//! Umbrella crate for the *Differential Constraints* (PODS 2005) reproduction.
//!
//! This crate re-exports the individual crates of the workspace so that the
//! repository-level integration tests (`tests/`) and runnable examples
//! (`examples/`) can exercise the whole system through a single dependency.
//!
//! See the workspace `README.md` for an overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the experiment-by-experiment record.

#![forbid(unsafe_code)]

pub use diffcon;
pub use diffcon_bounds;
pub use diffcon_discover;
pub use diffcon_engine;
pub use fis;
pub use proplogic;
pub use relational;
pub use setlat;
