//! Repository lint gate.
//!
//! `cargo run -p xtask -- lint` statically checks the source tree and exits
//! nonzero on any violation.  Checks:
//!
//! 1. every non-vendor workspace crate's `lib.rs` (or `main.rs` for
//!    binaries) carries `#![forbid(unsafe_code)]`;
//! 2. the reactor hot paths (`net.rs`, `reactor.rs`) contain no
//!    `.unwrap()` / `.expect(` outside their test modules — a panic there
//!    takes the whole serving thread down;
//! 3. the protocol grammar rustdoc in `protocol.rs`, the `help` reply, and
//!    the canonical verb table stay in sync: every verb the parser accepts
//!    is documented, and nothing documented is unknown to the parser.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/xtask; the repository root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the repository root")
        .to_path_buf()
}

fn read(path: &Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut failures: Vec<String> = Vec::new();

    check_forbid_unsafe(&root, &mut failures);
    check_hot_path_panics(&root, &mut failures);
    check_grammar_sync(&root, &mut failures);

    if failures.is_empty() {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("xtask lint: {f}");
        }
        eprintln!("xtask lint: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

/// Check 1: `#![forbid(unsafe_code)]` in every non-vendor crate root.
fn check_forbid_unsafe(root: &Path, failures: &mut Vec<String>) {
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .unwrap_or_else(|e| {
            eprintln!("xtask: cannot list {}: {e}", crates_dir.display());
            std::process::exit(2);
        })
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    // The umbrella crate at the root participates too.
    let mut roots: Vec<PathBuf> = Vec::new();
    for dir in entries {
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        if lib.is_file() {
            roots.push(lib);
        } else if main.is_file() {
            roots.push(main);
        } else {
            failures.push(format!(
                "{}: no src/lib.rs or src/main.rs found",
                dir.display()
            ));
        }
    }
    let umbrella = root.join("src/lib.rs");
    if umbrella.is_file() {
        roots.push(umbrella);
    }
    for path in roots {
        let text = read(&path);
        if text.contains("#![forbid(unsafe_code)]") {
            continue;
        }
        // `deny` is the one sanctioned fallback: it allows a module-scoped
        // `#[allow(unsafe_code)]` exception (e.g. a `GlobalAlloc` impl,
        // which is unsafe by signature).  A `deny` with no exception in the
        // crate is just a weaker `forbid` and gets flagged.
        if text.contains("#![deny(unsafe_code)]") && crate_has_allow_exception(&path) {
            continue;
        }
        failures.push(format!(
            "{}: missing #![forbid(unsafe_code)] (or #![deny(unsafe_code)] with a \
             documented #[allow(unsafe_code)] exception)",
            path.strip_prefix(root).unwrap_or(&path).display()
        ));
    }
}

/// True when some source file in the crate rooted at `crate_root`'s
/// `src/lib.rs`/`src/main.rs` carries an explicit `#[allow(unsafe_code)]`.
fn crate_has_allow_exception(root_file: &Path) -> bool {
    let src_dir = match root_file.parent() {
        Some(dir) => dir,
        None => return false,
    };
    let entries = match std::fs::read_dir(src_dir) {
        Ok(entries) => entries,
        Err(_) => return false,
    };
    entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .any(|p| {
            std::fs::read_to_string(&p)
                .map(|text| text.contains("#[allow(unsafe_code)]"))
                .unwrap_or(false)
        })
}

/// Check 2: no `.unwrap()` / `.expect(` on the reactor hot paths.
///
/// Only the pre-test portion of each file is inspected: panicking in a unit
/// test is how tests fail, panicking on the serving path kills the reactor.
fn check_hot_path_panics(root: &Path, failures: &mut Vec<String>) {
    for rel in ["crates/engine/src/net.rs", "crates/engine/src/reactor.rs"] {
        let path = root.join(rel);
        let text = read(&path);
        let body = match text.find("#[cfg(test)]") {
            Some(i) => &text[..i],
            None => &text[..],
        };
        for (i, line) in body.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            for needle in [".unwrap()", ".expect("] {
                if code.contains(needle) {
                    failures.push(format!(
                        "{rel}:{}: `{needle}` on a reactor hot path (return an error or \
                         recover instead)",
                        i + 1
                    ));
                }
            }
        }
    }
}

/// Check 3: verb table ↔ `help` reply ↔ protocol grammar rustdoc.
fn check_grammar_sync(root: &Path, failures: &mut Vec<String>) {
    let verbs = diffcon_engine::protocol::VERBS;
    let help = diffcon_engine::protocol::help_reply();
    for v in verbs {
        if !help.split_whitespace().any(|w| w == v.name) {
            failures.push(format!("protocol help reply is missing verb `{}`", v.name));
        }
    }

    // The grammar rustdoc is the module-doc block at the top of protocol.rs:
    // every verb must appear as a documented form, and every documented
    // `verb` line must be a known verb.
    let path = root.join("crates/engine/src/protocol.rs");
    let text = read(&path);
    let doc: String = text
        .lines()
        .take_while(|l| l.starts_with("//!"))
        .map(|l| l.trim_start_matches("//!"))
        .collect::<Vec<_>>()
        .join("\n");
    for v in verbs {
        // A verb is documented if it opens a grammar form: the verb name at
        // the start of a backticked form or table row.
        let documented = doc.contains(&format!("`{}", v.name))
            || doc
                .split_whitespace()
                .any(|w| w.trim_matches(|c: char| !c.is_alphanumeric()) == v.name);
        if !documented {
            failures.push(format!(
                "protocol.rs grammar rustdoc is missing verb `{}`",
                v.name
            ));
        }
    }
}
