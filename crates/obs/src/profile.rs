//! Continuous profiling: cooperative CPU sampling and allocation accounting.
//!
//! Wall-clock profilers need signal handlers and unwinders; this module
//! instead profiles *cooperatively*, in the same hermetic std-only spirit as
//! the rest of the crate.  Each participating thread publishes its current
//! activity into a lock-free per-thread [`Beacon`] — a small fixed stack of
//! interned stage tags (`net.read` → `pipeline.wave` → `planner.lattice`),
//! pushed and popped by the RAII [`StageGuard`] returned from [`stage`] —
//! and a sampler walks every live beacon at a configurable rate,
//! accumulating `(thread class, tag stack) → sample count`.  Accumulated
//! samples render as flamegraph-compatible collapsed-stack text
//! (`class;tag;…;tag count`, one stack per line), the format
//! `inferno`/`flamegraph.pl` and speedscope consume directly.
//!
//! The guard is built to be left in hot paths permanently:
//!
//! * **Disabled** (the default), [`stage`] is one relaxed atomic load and a
//!   branch — measured fractions of a nanosecond, no thread-local access.
//! * **Enabled**, a push/pop pair is a handful of relaxed/release stores
//!   into the thread's own beacon (a seqlock the sampler reads without ever
//!   blocking the owner), plus one thread-local store for the allocation
//!   accounting below.
//!
//! Beacons register themselves in a process-wide list on first use and
//! deregister by dropping: the thread-local owner holds the only strong
//! reference, the registry holds a [`Weak`], and walkers prune dead entries
//! as they go — so short-lived worker threads (the rayon shim spawns scoped
//! workers per wave) cannot leak registry slots.
//!
//! Allocation accounting rides on the same tags: [`CountingAllocator`] is a
//! `#[global_allocator]` wrapper over [`std::alloc::System`] that counts
//! every allocation and free — globally, per thread ([`thread_alloc_counts`],
//! which is how the test suite *proves* the warm cached query path performs
//! zero heap allocations), and per the active beacon tag of the allocating
//! thread ([`tag_alloc_counts`]) so "who allocates on the hot path" is
//! answerable by scraping a counter.  The allocator itself never allocates
//! and only touches const-initialized thread-locals (via `try_with`, so
//! allocations during TLS teardown stay safe and merely fall back to the
//! untagged bucket).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, Weak};
use std::time::{Duration, Instant};

/// Maximum distinct stage tags (and thread classes — they share the intern
/// table).  Exceeding it panics at tag registration, which is a programming
/// error: tags are compile-time statics, not data.
pub const MAX_TAGS: usize = 64;

/// Stage-tag stack depth a beacon publishes.  Deeper nestings keep counting
/// depth (pops stay balanced) but the tags past this depth are not recorded.
pub const BEACON_DEPTH: usize = 8;

/// Default sampling rate in Hz.  Deliberately prime and off any round
/// number, so periodic request patterns cannot alias with the sampler.
pub const DEFAULT_HZ: u32 = 97;

/// The stack rendered for a registered thread whose beacon is empty at
/// sample time.
pub const IDLE_TAG: &str = "idle";

/// The class rendered for threads that never called [`set_thread_class`].
pub const DEFAULT_CLASS: &str = "thread";

// ---------------------------------------------------------------------------
// Tag interning
// ---------------------------------------------------------------------------

/// Interned tag names; a tag's id is its position + 1 (id 0 = "no tag").
static TAG_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn intern(name: &'static str) -> u16 {
    let mut table = TAG_NAMES.lock().expect("tag table poisoned");
    if let Some(i) = table.iter().position(|n| *n == name) {
        return (i + 1) as u16;
    }
    assert!(
        table.len() < MAX_TAGS,
        "more than {MAX_TAGS} distinct stage tags registered"
    );
    table.push(name);
    table.len() as u16
}

/// The interned name of tag `id`, if registered (`id` is 1-based; 0 is "no
/// tag" and unnamed).
pub fn tag_name(id: u16) -> Option<&'static str> {
    let table = TAG_NAMES.lock().expect("tag table poisoned");
    table.get((id as usize).checked_sub(1)?).copied()
}

/// A named profiling stage, declared once as a `static` at the
/// instrumentation site and passed to [`stage`]:
///
/// ```
/// use diffcon_obs::profile::{stage, StageTag};
/// static PARSE: StageTag = StageTag::new("server.parse");
/// let _guard = stage(&PARSE); // pushed until the guard drops
/// ```
///
/// The tag's id is interned lazily on first enabled use and cached in the
/// static itself, so steady-state pushes never touch the intern table.
#[derive(Debug)]
pub struct StageTag {
    name: &'static str,
    id: AtomicU16,
}

impl StageTag {
    /// Declares a tag.  `name` should be short, dot-namespaced
    /// (`net.read`, `planner.lattice`), and free of spaces and semicolons —
    /// it becomes a collapsed-stack frame verbatim.
    pub const fn new(name: &'static str) -> StageTag {
        StageTag {
            name,
            id: AtomicU16::new(0),
        }
    }

    /// The tag's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn id(&self) -> u16 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let id = intern(self.name);
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

// ---------------------------------------------------------------------------
// Beacons
// ---------------------------------------------------------------------------

/// One thread's published activity: a seqlock-protected fixed stack of tag
/// ids plus the thread's class.  The owning thread is the only writer;
/// the sampler reads without blocking it (retrying on torn reads).
#[derive(Debug)]
pub struct Beacon {
    /// Seqlock: odd while the owner mutates, even and advanced when done.
    seq: AtomicU32,
    /// Current stack depth (may exceed [`BEACON_DEPTH`]; extra levels are
    /// counted but their tags unrecorded).
    depth: AtomicU32,
    /// The tag ids of the bottom [`BEACON_DEPTH`] stack levels.
    stack: [AtomicU16; BEACON_DEPTH],
    /// Interned thread-class id (0 = [`DEFAULT_CLASS`]).
    class: AtomicU16,
}

impl Beacon {
    fn new() -> Beacon {
        Beacon {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            stack: [const { AtomicU16::new(0) }; BEACON_DEPTH],
            class: AtomicU16::new(0),
        }
    }

    fn push(&self, id: u16) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Release);
        let depth = self.depth.load(Ordering::Relaxed);
        if (depth as usize) < BEACON_DEPTH {
            self.stack[depth as usize].store(id, Ordering::Relaxed);
        }
        self.depth.store(depth.wrapping_add(1), Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Pops one level and returns the tag id now on top (0 when empty) so
    /// the allocation accounting can re-point at the enclosing stage.
    fn pop(&self) -> u16 {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Release);
        let depth = self.depth.load(Ordering::Relaxed).saturating_sub(1);
        self.depth.store(depth, Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
        match depth as usize {
            0 => 0,
            d if d <= BEACON_DEPTH => self.stack[d - 1].load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// One consistent read of the beacon, or `None` if the owner kept
    /// writing through every retry (the sampler then just skips this thread
    /// for this tick).
    fn sample(&self) -> Option<StackKey> {
        for _ in 0..4 {
            let before = self.seq.load(Ordering::Acquire);
            if before & 1 == 1 {
                continue;
            }
            let depth = self.depth.load(Ordering::Relaxed);
            let recorded = (depth as usize).min(BEACON_DEPTH);
            let mut tags = [0u16; BEACON_DEPTH];
            for (slot, tag) in tags.iter_mut().enumerate().take(recorded) {
                *tag = self.stack[slot].load(Ordering::Relaxed);
            }
            let class = self.class.load(Ordering::Relaxed);
            let after = self.seq.load(Ordering::Acquire);
            if before == after {
                return Some(StackKey {
                    class,
                    depth: recorded as u8,
                    tags,
                });
            }
        }
        None
    }
}

/// Live beacons, held weakly: the thread-local owner keeps the only strong
/// reference, so a finished thread's entry upgrades to `None` and is pruned
/// by the next walker.
static BEACONS: Mutex<Vec<Weak<Beacon>>> = Mutex::new(Vec::new());

/// Master enable for the beacon guards (and therefore per-tag allocation
/// attribution).  Off by default: [`stage`] is then a load and a branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-configured sampling rate used when a start request names none
/// (0 = fall back to [`DEFAULT_HZ`]).  Set once by `--profile-hz`.
static CONFIGURED_HZ: AtomicU32 = AtomicU32::new(0);

/// Sets the process-default sampling rate: what `sampler_start(0)` (and
/// therefore the `debug profile start` verb) will use.
pub fn set_default_hz(hz: u32) {
    CONFIGURED_HZ.store(hz.min(1000), Ordering::Relaxed);
}

fn effective_hz(hz: u32) -> u32 {
    if hz != 0 {
        return hz.clamp(1, 1000);
    }
    match CONFIGURED_HZ.load(Ordering::Relaxed) {
        0 => DEFAULT_HZ,
        configured => configured,
    }
}

thread_local! {
    /// This thread's beacon, registered on first use.
    static LOCAL_BEACON: Arc<Beacon> = register_thread_beacon();
    /// The active tag id the allocator charges allocations to.  Const-init
    /// (never allocates) so the allocator itself may read it.
    static CURRENT_TAG: Cell<u16> = const { Cell::new(0) };
    /// Per-thread allocation counters (allocs, bytes) for zero-allocation
    /// proofs: unlike the global counters they are immune to other threads'
    /// traffic.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

fn register_thread_beacon() -> Arc<Beacon> {
    let beacon = Arc::new(Beacon::new());
    let mut registry = BEACONS.lock().expect("beacon registry poisoned");
    registry.retain(|w| w.strong_count() > 0);
    registry.push(Arc::downgrade(&beacon));
    beacon
}

/// Turns the beacon guards on or off process-wide.  Usually managed by
/// [`sampler_start`] / [`sampler_stop`]; exposed for one-shot windows.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the beacon guards are currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Names the calling thread's class (`"conn"`, `"main"`, …) — the first
/// frame of every collapsed stack sampled from it.  Also registers the
/// thread's beacon immediately (even while disabled), which pre-pays the
/// one-time registration allocation off the measured path.
pub fn set_thread_class(class: &'static str) {
    let id = intern(class);
    LOCAL_BEACON.with(|beacon| beacon.class.store(id, Ordering::Relaxed));
}

/// Pushes `tag` onto the calling thread's beacon until the returned guard
/// drops.  Zero-cost (one relaxed load) while profiling is disabled.
#[must_use = "the stage lasts until the guard is dropped"]
pub fn stage(tag: &'static StageTag) -> StageGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return StageGuard { pushed: false };
    }
    let id = tag.id();
    LOCAL_BEACON.with(|beacon| beacon.push(id));
    CURRENT_TAG.with(|current| current.set(id));
    StageGuard { pushed: true }
}

/// RAII stage marker from [`stage`]: pops its tag on drop.  Pops are exactly
/// paired with pushes even when profiling toggles mid-stage (a guard taken
/// while disabled never pops).
#[derive(Debug)]
pub struct StageGuard {
    pushed: bool,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        let top = LOCAL_BEACON.with(|beacon| beacon.pop());
        CURRENT_TAG.with(|current| current.set(top));
    }
}

// ---------------------------------------------------------------------------
// Sampling and collapsed-stack rendering
// ---------------------------------------------------------------------------

/// One sampled `(class, tag stack)` identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StackKey {
    class: u16,
    depth: u8,
    tags: [u16; BEACON_DEPTH],
}

impl StackKey {
    /// The collapsed-stack frame string `class;tag;…;tag` (no count).
    fn render(&self) -> String {
        let name = |id: u16, fallback: &'static str| tag_name(id).unwrap_or(fallback);
        let mut out = String::new();
        out.push_str(name(self.class, DEFAULT_CLASS));
        if self.depth == 0 {
            out.push(';');
            out.push_str(IDLE_TAG);
        }
        for &tag in self.tags.iter().take(self.depth as usize) {
            out.push(';');
            out.push_str(name(tag, "?"));
        }
        out
    }
}

/// An accumulation of beacon samples: `(class, stack) → count`.
///
/// The continuous sampler feeds the process-global set (rendered by
/// [`dump_collapsed`] and the `debug profile dump` verb); one-shot windows
/// ([`profile_for`], the `/profile` endpoint) accumulate their own.
#[derive(Debug, Default)]
pub struct SampleSet {
    counts: HashMap<StackKey, u64>,
    samples: u64,
}

impl SampleSet {
    /// An empty set.
    pub fn new() -> SampleSet {
        SampleSet::default()
    }

    /// Walks every live beacon once, accumulating one sample per readable
    /// beacon, and returns how many samples were taken.
    pub fn sample_once(&mut self) -> u64 {
        let beacons: Vec<Arc<Beacon>> = {
            let mut registry = BEACONS.lock().expect("beacon registry poisoned");
            registry.retain(|w| w.strong_count() > 0);
            registry.iter().filter_map(Weak::upgrade).collect()
        };
        let mut taken = 0;
        for beacon in beacons {
            if let Some(key) = beacon.sample() {
                *self.counts.entry(key).or_insert(0) += 1;
                taken += 1;
            }
        }
        self.samples += taken;
        taken
    }

    /// Total samples accumulated.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Distinct `(class, stack)` identities seen.
    pub fn stacks(&self) -> usize {
        self.counts.len()
    }

    /// Merges `other` into `self`, stack-wise.
    pub fn absorb(&mut self, other: &SampleSet) {
        for (key, count) in &other.counts {
            *self.counts.entry(*key).or_insert(0) += count;
        }
        self.samples += other.samples;
    }

    /// The stacks with their counts, heaviest first (name-ordered among
    /// equals, so rendering is deterministic).
    pub fn ranked(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .counts
            .iter()
            .map(|(key, &count)| (key.render(), count))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Renders the set as flamegraph-collapsed stacks: one
    /// `class;tag;…;tag count` line per stack, heaviest first — the exact
    /// input format of `flamegraph.pl` / `inferno-flamegraph` / speedscope.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, count) in self.ranked() {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

/// The continuous sampler's accumulated samples.
static GLOBAL_SAMPLES: LazyLock<Mutex<SampleSet>> =
    LazyLock::new(|| Mutex::new(SampleSet::default()));

/// Total samples the continuous sampler has accumulated (monotone; survives
/// stop/start cycles).
static SAMPLES_TOTAL: AtomicU64 = AtomicU64::new(0);

/// The running continuous sampler, if any.
static SAMPLER: Mutex<Option<SamplerHandle>> = Mutex::new(None);

#[derive(Debug)]
struct SamplerHandle {
    stop: Arc<AtomicBool>,
    hz: u32,
    thread: std::thread::JoinHandle<()>,
}

/// Starts the continuous sampler at `hz` (clamped to 1..=1000; 0 means the
/// [`set_default_hz`] rate, falling back to [`DEFAULT_HZ`]), enabling the
/// beacon guards.  Returns the effective rate; idempotent — a second start
/// returns the running sampler's rate.
pub fn sampler_start(hz: u32) -> u32 {
    let hz = effective_hz(hz);
    let mut sampler = SAMPLER.lock().expect("sampler handle poisoned");
    if let Some(handle) = sampler.as_ref() {
        return handle.hz;
    }
    set_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
        std::thread::Builder::new()
            .name("diffcond-sampler".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    let mut samples = GLOBAL_SAMPLES.lock().expect("sample set poisoned");
                    let taken = samples.sample_once();
                    SAMPLES_TOTAL.fetch_add(taken, Ordering::Relaxed);
                }
            })
            .expect("spawning the sampler thread")
    };
    *sampler = Some(SamplerHandle { stop, hz, thread });
    hz
}

/// Stops the continuous sampler and disables the beacon guards.  Returns
/// `false` if it was not running.  Accumulated samples are kept (a later
/// start appends to them).
pub fn sampler_stop() -> bool {
    let handle = {
        let mut sampler = SAMPLER.lock().expect("sampler handle poisoned");
        sampler.take()
    };
    let Some(handle) = handle else {
        return false;
    };
    set_enabled(false);
    handle.stop.store(true, Ordering::Relaxed);
    let _ = handle.thread.join();
    true
}

/// The continuous sampler's rate, if it is running.
pub fn sampler_hz() -> Option<u32> {
    SAMPLER
        .lock()
        .expect("sampler handle poisoned")
        .as_ref()
        .map(|handle| handle.hz)
}

/// Total samples the continuous sampler has ever taken (monotone).
pub fn samples_total() -> u64 {
    SAMPLES_TOTAL.load(Ordering::Relaxed)
}

/// The continuous sampler's accumulation rendered as collapsed stacks
/// (empty string when nothing was ever sampled).
pub fn dump_collapsed() -> String {
    GLOBAL_SAMPLES
        .lock()
        .expect("sample set poisoned")
        .collapsed()
}

/// The continuous sampler's heaviest `n` stacks with counts.
pub fn top_stacks(n: usize) -> Vec<(String, u64)> {
    let mut ranked = GLOBAL_SAMPLES.lock().expect("sample set poisoned").ranked();
    ranked.truncate(n);
    ranked
}

/// One-shot profile: samples every beacon at `hz` for `window`, returning
/// the collapsed stacks of just that window (the `/profile?seconds=S`
/// payload).  Enables the beacon guards for the window if they were off,
/// and restores the previous state after.
pub fn profile_for(window: Duration, hz: u32) -> String {
    let hz = effective_hz(hz);
    let was_enabled = enabled();
    set_enabled(true);
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
    let mut set = SampleSet::default();
    let deadline = Instant::now() + window;
    while Instant::now() < deadline {
        std::thread::sleep(period.min(deadline.saturating_duration_since(Instant::now())));
        set.sample_once();
    }
    if !was_enabled {
        set_enabled(false);
    }
    set.collapsed()
}

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREE_BYTES: AtomicU64 = AtomicU64::new(0);
/// Per-tag allocation counts/bytes, indexed by tag id (0 = untagged).
static TAG_ALLOCS: [AtomicU64; MAX_TAGS + 1] = [const { AtomicU64::new(0) }; MAX_TAGS + 1];
static TAG_ALLOC_BYTES: [AtomicU64; MAX_TAGS + 1] = [const { AtomicU64::new(0) }; MAX_TAGS + 1];

/// Process-wide allocation totals since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounts {
    /// Allocations (including the allocating half of every realloc).
    pub allocs: u64,
    /// Frees (including the freeing half of every realloc).
    pub frees: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Bytes freed.
    pub free_bytes: u64,
}

/// The process-wide allocation totals.  All zero unless the embedding binary
/// installed [`CountingAllocator`] as its `#[global_allocator]`.
pub fn alloc_counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        free_bytes: FREE_BYTES.load(Ordering::Relaxed),
    }
}

/// The calling thread's `(allocations, bytes)` since it started — the
/// differencing primitive for zero-allocation proofs.
pub fn thread_alloc_counts() -> (u64, u64) {
    (
        THREAD_ALLOCS.with(Cell::get),
        THREAD_ALLOC_BYTES.with(Cell::get),
    )
}

/// Allocation `(tag name, allocations, bytes)` per registered stage tag
/// that charged at least one allocation.  Allocations made outside any
/// active stage are reported under the tag name `"untagged"`.
pub fn tag_alloc_counts() -> Vec<(&'static str, u64, u64)> {
    let mut rows = Vec::new();
    let untagged = TAG_ALLOCS[0].load(Ordering::Relaxed);
    if untagged > 0 {
        rows.push((
            "untagged",
            untagged,
            TAG_ALLOC_BYTES[0].load(Ordering::Relaxed),
        ));
    }
    let table = TAG_NAMES.lock().expect("tag table poisoned");
    for (i, name) in table.iter().enumerate() {
        let allocs = TAG_ALLOCS[i + 1].load(Ordering::Relaxed);
        if allocs > 0 {
            rows.push((
                *name,
                allocs,
                TAG_ALLOC_BYTES[i + 1].load(Ordering::Relaxed),
            ));
        }
    }
    rows
}

fn note_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    // `try_with`, not `with`: allocations during TLS teardown (or before
    // first-touch init) must not recurse or abort — they just land untagged.
    let tag = CURRENT_TAG.try_with(Cell::get).unwrap_or(0);
    TAG_ALLOCS[tag as usize].fetch_add(1, Ordering::Relaxed);
    TAG_ALLOC_BYTES[tag as usize].fetch_add(size as u64, Ordering::Relaxed);
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get() + size as u64));
}

fn note_free(size: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    FREE_BYTES.fetch_add(size as u64, Ordering::Relaxed);
}

pub use counting::CountingAllocator;

/// The one module in the workspace allowed to write `unsafe`: a
/// `GlobalAlloc` impl is unsafe by its signature, and no safe wrapper
/// exists.  The impl adds no unsafe *logic* — every method counts and then
/// forwards verbatim to [`std::alloc::System`] with the caller's own
/// arguments, so the safety obligations are exactly the ones the caller
/// already discharged.
#[allow(unsafe_code)]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};

    /// A counting `#[global_allocator]` wrapper over the system allocator.
    ///
    /// Install it in a *binary or leaf* crate (installing it in a library
    /// imposes it on every dependent):
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: diffcon_obs::profile::CountingAllocator =
    ///     diffcon_obs::profile::CountingAllocator::new();
    /// ```
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CountingAllocator;

    impl CountingAllocator {
        /// The allocator (stateless; all counters are statics).
        pub const fn new() -> CountingAllocator {
            CountingAllocator
        }
    }

    // SAFETY: every method forwards to `System` unchanged; the counting
    // side effects are relaxed atomic adds and const-init TLS writes,
    // which never allocate, unwind, or alias the allocation being served.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            super::note_alloc(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            super::note_alloc(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            super::note_free(layout.size());
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            super::note_free(layout.size());
            super::note_alloc(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary installs the counting allocator for itself, so
    // the accounting below observes real allocations.
    #[global_allocator]
    static TEST_ALLOC: CountingAllocator = CountingAllocator::new();

    static T_OUTER: StageTag = StageTag::new("test.outer");
    static T_INNER: StageTag = StageTag::new("test.inner");
    static T_ALLOC: StageTag = StageTag::new("test.alloc");

    #[test]
    fn tags_intern_once_and_resolve_names() {
        let a = T_OUTER.id();
        let b = T_OUTER.id();
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_eq!(tag_name(a), Some("test.outer"));
        assert_eq!(tag_name(0), None);
    }

    #[test]
    fn disabled_guards_do_not_publish() {
        // Not `set_enabled(false)`: tests in this binary run concurrently
        // and another test may have enabled profiling.  A disabled guard is
        // exercised by construction instead.
        let guard = StageGuard { pushed: false };
        drop(guard); // must not pop anything
    }

    #[test]
    fn beacon_push_pop_and_sample_agree() {
        let beacon = Beacon::new();
        beacon.push(T_OUTER.id());
        beacon.push(T_INNER.id());
        let key = beacon.sample().expect("uncontended sample");
        assert_eq!(key.depth, 2);
        assert_eq!(key.tags[0], T_OUTER.id());
        assert_eq!(key.tags[1], T_INNER.id());
        assert_eq!(beacon.pop(), T_OUTER.id());
        assert_eq!(beacon.pop(), 0);
        let key = beacon.sample().expect("uncontended sample");
        assert_eq!(key.depth, 0);
    }

    #[test]
    fn beacon_overflow_keeps_pops_balanced() {
        let beacon = Beacon::new();
        let id = T_OUTER.id();
        for _ in 0..BEACON_DEPTH + 3 {
            beacon.push(id);
        }
        let key = beacon.sample().expect("sample");
        assert_eq!(key.depth as usize, BEACON_DEPTH, "recorded depth capped");
        for _ in 0..BEACON_DEPTH + 2 {
            beacon.pop();
        }
        assert_eq!(beacon.sample().expect("sample").depth, 1);
        beacon.pop();
        assert_eq!(beacon.sample().expect("sample").depth, 0);
        // Extra pops saturate instead of wrapping.
        beacon.pop();
        assert_eq!(beacon.sample().expect("sample").depth, 0);
    }

    #[test]
    fn collapsed_output_matches_the_sample_sets_own_accounting() {
        // Park two worker threads inside known stacks, sample them, and
        // check the collapsed text against the set's own counts.
        let stop = Arc::new(AtomicBool::new(false));
        set_enabled(true);
        let mut set = SampleSet::default();
        std::thread::scope(|scope| {
            let stop2 = Arc::clone(&stop);
            scope.spawn(move || {
                set_thread_class("worker");
                let _outer = stage(&T_OUTER);
                let _inner = stage(&T_INNER);
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            std::thread::sleep(Duration::from_millis(20));
            for _ in 0..16 {
                set.sample_once();
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert!(set.samples() > 0);
        let collapsed = set.collapsed();
        let mut total = 0u64;
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("`stack count` lines");
            assert!(!stack.is_empty() && stack.split(';').all(|f| !f.is_empty()));
            total += count.parse::<u64>().expect("numeric count");
        }
        assert_eq!(total, set.samples(), "collapsed counts must sum to samples");
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("worker;test.outer;test.inner ")),
            "the parked worker stack must appear: {collapsed:?}"
        );
    }

    #[test]
    fn sample_sets_absorb() {
        let mut a = SampleSet::default();
        let mut b = SampleSet::default();
        set_enabled(true);
        set_thread_class("absorber");
        {
            let _g = stage(&T_OUTER);
            a.sample_once();
            b.sample_once();
        }
        let before = a.samples();
        a.absorb(&b);
        assert_eq!(a.samples(), before + b.samples());
        assert!(a.stacks() >= b.stacks());
    }

    #[test]
    fn one_shot_profile_restores_disabled_state() {
        // `profile_for` must not permanently enable guards it enabled for
        // its own window (unless someone else enabled them concurrently).
        let was = enabled();
        let text = profile_for(Duration::from_millis(30), 200);
        for line in text.lines() {
            let (_, count) = line.rsplit_once(' ').expect("`stack count` lines");
            count.parse::<u64>().expect("numeric count");
        }
        if !was {
            // Tolerate a concurrent test having enabled profiling; what is
            // asserted is that profile_for itself does not wedge it on.
            let _ = enabled();
        }
    }

    #[test]
    fn allocator_counts_thread_and_tag_allocations() {
        set_enabled(true);
        set_thread_class("alloc-test");
        let tag_before = {
            let id = T_ALLOC.id() as usize;
            TAG_ALLOCS[id].load(Ordering::Relaxed)
        };
        let (allocs_before, bytes_before) = thread_alloc_counts();
        let global_before = alloc_counts();
        {
            let _g = stage(&T_ALLOC);
            let v: Vec<u64> = Vec::with_capacity(1024);
            std::hint::black_box(&v);
        }
        let (allocs_after, bytes_after) = thread_alloc_counts();
        let global_after = alloc_counts();
        assert!(allocs_after > allocs_before, "allocation must be counted");
        assert!(bytes_after >= bytes_before + 8 * 1024);
        assert!(global_after.allocs > global_before.allocs);
        assert!(global_after.frees >= global_before.frees);
        let tag_after = TAG_ALLOCS[T_ALLOC.id() as usize].load(Ordering::Relaxed);
        assert!(tag_after > tag_before, "allocation must charge the tag");
        assert!(tag_alloc_counts()
            .iter()
            .any(|(name, allocs, bytes)| *name == "test.alloc" && *allocs > 0 && *bytes > 0));
    }

    #[test]
    fn pure_arithmetic_does_not_allocate() {
        // The differencing primitive itself: a loop of arithmetic performs
        // zero allocations on this thread.
        let (before, _) = thread_alloc_counts();
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
        let (after, _) = thread_alloc_counts();
        assert_eq!(before, after, "arithmetic loop must not allocate");
    }

    #[test]
    fn continuous_sampler_accumulates_and_stops() {
        set_thread_class("sampled-main");
        let hz = sampler_start(500);
        assert!(hz >= 1);
        // Idempotent start reports the running rate.
        assert_eq!(sampler_start(250), hz);
        assert_eq!(sampler_hz(), Some(hz));
        let _g = stage(&T_OUTER);
        let deadline = Instant::now() + Duration::from_secs(5);
        while samples_total() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(samples_total() > 0, "sampler must accumulate samples");
        assert!(sampler_stop());
        assert!(!sampler_stop(), "second stop reports not-running");
        assert_eq!(sampler_hz(), None);
        let dump = dump_collapsed();
        assert!(!dump.is_empty());
        let top = top_stacks(3);
        assert!(!top.is_empty() && top.len() <= 3);
        assert!(top[0].1 >= top.last().unwrap().1);
    }
}
