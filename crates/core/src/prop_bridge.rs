//! The propositional-logic bridge (Section 5) and the coNP-hardness reduction.
//!
//! Each differential constraint `X → 𝒴` translates to the implication
//! constraint `X ⇒prop 𝒴`, i.e. the formula `⋀X ⇒ ⋁_{Y∈𝒴} ⋀Y`.
//! Proposition 5.3: `negminset(X ⇒prop 𝒴) = L(X, 𝒴)`.
//! Proposition 5.4: `C ⊨ X → 𝒴  ⇔  Cprop ⊨ X ⇒prop 𝒴`.
//! Proposition 5.5: the implication problem is coNP-complete, by reduction from
//! DNF tautology; [`dnf_tautology_to_implication`] implements that reduction.

use crate::constraint::DiffConstraint;
use proplogic::dnf::Dnf;
use proplogic::implication::ImplicationConstraint;
use setlat::{AttrSet, Family, Universe};

/// Translates a differential constraint to its implication constraint
/// `X ⇒prop 𝒴`.
pub fn to_implication_constraint(constraint: &DiffConstraint) -> ImplicationConstraint {
    ImplicationConstraint::new(constraint.lhs, constraint.rhs.clone())
}

/// Translates an implication constraint back to a differential constraint.
pub fn from_implication_constraint(constraint: &ImplicationConstraint) -> DiffConstraint {
    DiffConstraint::new(constraint.lhs, constraint.rhs.clone())
}

/// Decides `C ⊨ goal` through the propositional translation and the DPLL SAT
/// solver (Proposition 5.4 + refutation).  Agrees with
/// [`crate::implication::implies`] on every instance; its running time scales
/// with the difficulty of the underlying SAT refutation rather than with
/// `2^{|S|−|X|}`, which is what the coNP experiments contrast.
pub fn implies_sat(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    let premises_prop: Vec<ImplicationConstraint> =
        premises.iter().map(to_implication_constraint).collect();
    to_implication_constraint(goal).implied_by_sat(&premises_prop, universe)
}

/// Decides `C ⊨ goal` by exhaustive propositional evaluation (minset
/// containment) — the reference implementation of Proposition 5.4.
pub fn implies_prop_exhaustive(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    let premises_prop: Vec<ImplicationConstraint> =
        premises.iter().map(to_implication_constraint).collect();
    to_implication_constraint(goal).implied_by_exhaustive(&premises_prop, universe)
}

/// The coNP-hardness reduction of Proposition 5.5: given a DNF formula
/// `φ = ⋁_ψ (⋀P_ψ ∧ ⋀_{q∈Q_ψ} ¬q)`, produce the constraint set
/// `C_φ = { P_ψ → {{q} | q ∈ Q_ψ} }` and the goal `∅ → ∅` such that
///
/// `φ is a tautology  ⇔  C_φ ⊨ ∅ → ∅`.
pub fn dnf_tautology_to_implication(dnf: &Dnf) -> (Vec<DiffConstraint>, DiffConstraint) {
    let premises: Vec<DiffConstraint> = dnf
        .terms
        .iter()
        .map(|term| {
            DiffConstraint::new(
                term.positive,
                Family::from_sets(term.negative.iter().map(AttrSet::singleton)),
            )
        })
        .collect();
    let goal = DiffConstraint::new(AttrSet::EMPTY, Family::empty());
    (premises, goal)
}

/// Decides DNF tautology *through* the differential-constraint implication
/// problem (the reduction run forwards) — used to validate Proposition 5.5.
pub fn dnf_is_tautology_via_constraints(dnf: &Dnf, universe: &Universe) -> bool {
    let (premises, goal) = dnf_tautology_to_implication(dnf);
    crate::implication::implies(universe, &premises, &goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication;
    use proplogic::dnf::DnfTerm;
    use proplogic::tautology;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn proposition_5_3_negminset_is_lattice() {
        let u = u();
        for text in [
            "A -> {B, CD}",
            "A -> {BC, BD}",
            " -> {}",
            "AB -> {C}",
            "A -> {A}",
        ] {
            let c = DiffConstraint::parse(text, &u).unwrap();
            let mut neg = to_implication_constraint(&c).negminset(&u);
            neg.sort();
            assert_eq!(neg, c.lattice(&u), "Prop 5.3 failed for {text}");
        }
    }

    #[test]
    fn proposition_5_4_all_procedures_agree() {
        let u = u();
        let premise_sets = vec![
            parse(&u, &["A -> {B}", "B -> {C}"]),
            parse(&u, &["A -> {BC, CD}", "C -> {D}"]),
            parse(&u, &["A -> {B, CD}"]),
            vec![],
        ];
        let goals = parse(
            &u,
            &[
                "A -> {C}",
                "AB -> {D}",
                "A -> {B}",
                "C -> {A}",
                "A -> {B, CD}",
                "AB -> {B}",
                "A -> {}",
            ],
        );
        for premises in &premise_sets {
            for goal in &goals {
                let lattice = implication::implies(&u, premises, goal);
                let sat = implies_sat(&u, premises, goal);
                let exhaustive = implies_prop_exhaustive(&u, premises, goal);
                assert_eq!(
                    lattice,
                    sat,
                    "lattice vs SAT disagree on {}",
                    goal.format(&u)
                );
                assert_eq!(
                    lattice,
                    exhaustive,
                    "lattice vs exhaustive-prop disagree on {}",
                    goal.format(&u)
                );
            }
        }
    }

    #[test]
    fn round_trip_translation() {
        let u = u();
        let c = DiffConstraint::parse("A -> {B, CD}", &u).unwrap();
        let back = from_implication_constraint(&to_implication_constraint(&c));
        assert_eq!(c, back);
    }

    #[test]
    fn proposition_5_5_reduction_on_tautologies() {
        let u = Universe::of_size(3);
        // x ∨ ¬x  (over variable A).
        let taut = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::EMPTY),
            DnfTerm::new(AttrSet::EMPTY, AttrSet::from_indices([0])),
        ]);
        assert!(taut.is_tautology_exhaustive(&u));
        assert!(dnf_is_tautology_via_constraints(&taut, &u));

        // x ∨ y is not a tautology.
        let not_taut = Dnf::new([
            DnfTerm::new(AttrSet::from_indices([0]), AttrSet::EMPTY),
            DnfTerm::new(AttrSet::from_indices([1]), AttrSet::EMPTY),
        ]);
        assert!(!not_taut.is_tautology_exhaustive(&u));
        assert!(!dnf_is_tautology_via_constraints(&not_taut, &u));
    }

    #[test]
    fn proposition_5_5_reduction_on_random_dnfs() {
        // Cross-check the reduction against both the exhaustive DNF-tautology check
        // and the SAT-based one, on deterministic pseudo-random instances.
        let u = Universe::of_size(4);
        let mut state: u64 = 0xDEADBEEF;
        for _ in 0..50 {
            let mut terms = Vec::new();
            for _ in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pos = AttrSet::from_bits((state >> 13) & 0xF);
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let neg = AttrSet::from_bits((state >> 29) & 0xF).difference(pos);
                terms.push(DnfTerm::new(pos, neg));
            }
            let dnf = Dnf::new(terms);
            let truth = dnf.is_tautology_exhaustive(&u);
            assert_eq!(truth, tautology::dnf_is_tautology(&dnf, &u));
            assert_eq!(
                truth,
                dnf_is_tautology_via_constraints(&dnf, &u),
                "reduction disagrees on {dnf:?}"
            );
        }
    }

    #[test]
    fn empty_goal_meaning() {
        // ∅ → ∅ states that the density vanishes everywhere, i.e. f ≡ 0; it is
        // implied only by constraint sets whose lattices cover all of 2^S.
        let u = Universe::of_size(2);
        let goal = DiffConstraint::new(AttrSet::EMPTY, Family::empty());
        assert!(!implication::implies(&u, &[], &goal));
        let covering = parse(&u, &[" -> {A}", " -> {B}", "AB -> {}"]);
        // L(∅,{A}) = {∅, B}; L(∅,{B}) = {∅, A}; L(AB, ∅) = {AB}.  Missing: nothing?
        // 2^S = {∅, A, B, AB} — all covered, so the goal is implied.
        assert!(implication::implies(&u, &covering, &goal));
        assert!(implies_sat(&u, &covering, &goal));
    }
}
