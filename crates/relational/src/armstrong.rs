//! Witness ("Armstrong-style") relations.
//!
//! The completeness arguments of the paper (Theorem 3.5, Proposition 6.4) rest
//! on one-point counterexamples: for a set `U` outside `L(C)`, a function whose
//! density is concentrated at `U` satisfies every constraint of `C` but
//! violates any constraint whose lattice contains `U`.  The relational
//! counterpart is a **two-tuple relation whose agree set is exactly `U`**: its
//! Simpson density is concentrated on `U` (plus the full set `S`), so it
//! violates `X ⇒bool 𝒴` precisely when `U ∈ L(X, 𝒴)`.
//!
//! Stacking such pairs (with disjoint value ranges) for every `U ∉ L(C)` yields
//! an Armstrong-style relation for `C`: it satisfies exactly the boolean
//! dependencies implied by `C`.

use crate::boolean_dep::BooleanDependency;
use crate::relation::Relation;
use setlat::{lattice, AttrSet, Family, Universe};

/// Builds the two-tuple relation over `n` attributes whose tuples agree exactly
/// on the attributes of `u` (and differ everywhere else).
///
/// The value `base` offsets the tuple values so several pair-relations can be
/// stacked without accidental agreements across pairs.
pub fn agree_pair_relation(n: usize, u: AttrSet, base: u32) -> Relation {
    let t1: Vec<u32> = (0..n).map(|_| base).collect();
    let t2: Vec<u32> = (0..n)
        .map(|i| if u.contains(i) { base } else { base + 1 })
        .collect();
    Relation::from_tuples(n, vec![t1, t2])
}

/// Builds an Armstrong-style relation for a set of `(X, 𝒴)` constraint pairs:
/// for every `U ⊆ S` **not** in `L(C) = ⋃ L(X_i, 𝒴_i)`, it contains a pair of
/// tuples agreeing exactly on `U` (with values disjoint from every other pair).
///
/// The resulting relation satisfies `X ⇒bool 𝒴` iff `C` implies `X → 𝒴`
/// (both directions are exercised in the cross-crate integration tests).
///
/// Exponential in `|S|`; intended for the small universes of the experiments.
pub fn armstrong_relation(universe: &Universe, constraints: &[(AttrSet, Family)]) -> Relation {
    let n = universe.len();
    let mut relation = Relation::new(n);
    let mut base: u32 = 0;
    for mask in 0u64..(1u64 << n) {
        let u = AttrSet::from_bits(mask);
        let covered = constraints
            .iter()
            .any(|(x, fam)| lattice::in_lattice(*x, fam, u));
        if !covered {
            let pair = agree_pair_relation(n, u, base);
            for t in pair.tuples() {
                relation.insert(t.clone());
            }
            base += 2;
        }
    }
    // Guarantee nonemptiness (the paper's Section 7 requires a nonempty relation):
    // if every U was covered, fall back to a single constant tuple, which
    // satisfies every boolean dependency.
    if relation.is_empty() {
        relation.insert(vec![0; n]);
    }
    relation
}

/// Convenience: does the Armstrong relation of `constraints` satisfy the
/// boolean dependency `X ⇒bool 𝒴`?  (Equivalent to implication of the
/// corresponding differential constraint; used as an independent oracle in
/// tests.)
pub fn armstrong_satisfies(
    universe: &Universe,
    constraints: &[(AttrSet, Family)],
    goal_lhs: AttrSet,
    goal_rhs: &Family,
) -> bool {
    let relation = armstrong_relation(universe, constraints);
    BooleanDependency::new(goal_lhs, goal_rhs.clone()).satisfied_by(&relation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u4() -> Universe {
        Universe::of_size(4)
    }

    #[test]
    fn agree_pair_has_exact_agree_set() {
        let target = AttrSet::from_indices([0, 2]);
        let r = agree_pair_relation(4, target, 10);
        assert_eq!(r.len(), 2);
        let t = &r.tuples()[0];
        let t_prime = &r.tuples()[1];
        assert_eq!(Relation::agree_set(t, t_prime), target);
    }

    #[test]
    fn agree_pair_full_set_collapses_to_one_tuple() {
        // Agreeing everywhere means the two tuples are identical; the relation
        // deduplicates to a single tuple.
        let r = agree_pair_relation(3, AttrSet::full(3), 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn pair_violates_exactly_lattice_members() {
        let u = u4();
        let x = u.parse_set("A").unwrap();
        let fam = Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()]);
        let dep = BooleanDependency::new(x, fam.clone());
        for mask in 0u64..16 {
            let agree_on = AttrSet::from_bits(mask);
            let r = agree_pair_relation(4, agree_on, 0);
            let violates = !dep.satisfied_by(&r);
            let in_lattice = lattice::in_lattice(x, &fam, agree_on);
            // A pair agreeing on everything is a single tuple and violates nothing;
            // in_lattice(full set) is false anyway because B ⊆ S.
            assert_eq!(
                violates, in_lattice,
                "pair agreeing on {agree_on:?}: violates={violates}, in L={in_lattice}"
            );
        }
    }

    #[test]
    fn armstrong_relation_satisfies_its_constraints() {
        let u = u4();
        let constraints = vec![
            (
                u.parse_set("A").unwrap(),
                Family::single(u.parse_set("B").unwrap()),
            ),
            (
                u.parse_set("B").unwrap(),
                Family::from_sets([u.parse_set("C").unwrap(), u.parse_set("D").unwrap()]),
            ),
        ];
        let r = armstrong_relation(&u, &constraints);
        for (x, fam) in &constraints {
            assert!(
                BooleanDependency::new(*x, fam.clone()).satisfied_by(&r),
                "Armstrong relation violates one of its own constraints"
            );
        }
    }

    #[test]
    fn armstrong_relation_refutes_non_implied_constraints() {
        let u = u4();
        let constraints = vec![(
            u.parse_set("A").unwrap(),
            Family::single(u.parse_set("B").unwrap()),
        )];
        // B → A is not implied; the Armstrong relation must violate it.
        assert!(!armstrong_satisfies(
            &u,
            &constraints,
            u.parse_set("B").unwrap(),
            &Family::single(u.parse_set("A").unwrap())
        ));
        // A → B is implied (it is in C); the Armstrong relation satisfies it.
        assert!(armstrong_satisfies(
            &u,
            &constraints,
            u.parse_set("A").unwrap(),
            &Family::single(u.parse_set("B").unwrap())
        ));
        // A → {BC} is implied by A → {B}? L(A,{BC}) = supersets of A avoiding BC ⊇
        // L(A,{B})?  No: L(A,{B}) ⊆ L(A,{BC}), so A → {BC} is NOT implied.
        assert!(!armstrong_satisfies(
            &u,
            &constraints,
            u.parse_set("A").unwrap(),
            &Family::single(u.parse_set("BC").unwrap())
        ));
        // A → {B, CD} IS implied (addition rule).
        assert!(armstrong_satisfies(
            &u,
            &constraints,
            u.parse_set("A").unwrap(),
            &Family::from_sets([u.parse_set("B").unwrap(), u.parse_set("CD").unwrap()])
        ));
    }

    #[test]
    fn armstrong_relation_is_nonempty_even_when_everything_is_covered() {
        // A constraint with an empty-member family covers every U ⊇ X; with X = ∅
        // that covers all of 2^S… except sets containing a member of 𝒴, so to cover
        // everything use ∅ → ∅ (lattice = all sets).
        let u = Universe::of_size(2);
        let constraints = vec![(AttrSet::EMPTY, Family::empty())];
        let r = armstrong_relation(&u, &constraints);
        assert!(!r.is_empty());
    }
}
