//! Simpson functions of probabilistic relations (Definition 7.1, Prop. 7.2).
//!
//! `simpson_{r,p}(X) = Σ_{x ∈ π_X(r)} p_X(x)²` measures the uniformity of the
//! `X`-components of the tuples of `r` under `p` (Simpson's diversity index).
//! Proposition 7.2 gives its density function in closed form,
//!
//! ```text
//! d_simpson(X) = Σ_{t,t' ∈ r, c(X,t,t')} p(t)·p(t'),
//! c(X,t,t')  ⇔  t[X] = t'[X]  and  t(y) ≠ t'(y) for every y ∉ X,
//! ```
//!
//! which is manifestly nonnegative — so every Simpson function is a frequency
//! function and all the Section 6 results apply to it.

use crate::distribution::ProbabilisticRelation;
use crate::relation::Relation;
use setlat::{mobius, AttrSet, SetFunction};

/// Evaluates the Simpson function at a single attribute set.
pub fn simpson_at(pr: &ProbabilisticRelation, x: AttrSet) -> f64 {
    pr.marginal(x).values().map(|p| p * p).sum()
}

/// Materializes the full Simpson function as a dense [`SetFunction`].
pub fn simpson_function(pr: &ProbabilisticRelation) -> SetFunction {
    SetFunction::from_fn(pr.arity(), |x| simpson_at(pr, x))
}

/// Evaluates the density of the Simpson function at `X` using the closed form
/// of Proposition 7.2 (the double sum over tuple pairs), without any Möbius
/// transform.
pub fn simpson_density_at_closed_form(pr: &ProbabilisticRelation, x: AttrSet) -> f64 {
    let arity = pr.arity();
    let tuples = pr.relation().tuples();
    let mut acc = 0.0;
    for (i, t) in tuples.iter().enumerate() {
        for (j, t_prime) in tuples.iter().enumerate() {
            if condition_c(t, t_prime, x, arity) {
                acc += pr.probability(i) * pr.probability(j);
            }
        }
    }
    acc
}

/// The condition `c(X, t, t')` of Proposition 7.2: the tuples agree on every
/// attribute of `X` and disagree on every attribute outside `X`.
fn condition_c(t: &[u32], t_prime: &[u32], x: AttrSet, arity: usize) -> bool {
    Relation::tuples_agree_on(t, t_prime, x)
        && x.complement_in(arity).iter().all(|y| t[y] != t_prime[y])
}

/// The density function of the Simpson function, via the Möbius transform of
/// the materialized Simpson table.
pub fn simpson_density(pr: &ProbabilisticRelation) -> SetFunction {
    mobius::density_function(&simpson_function(pr))
}

/// Returns `true` iff the Simpson function of `pr` is a frequency function
/// (it always is, per Proposition 7.2; exposed for tests and demonstrations).
pub fn simpson_is_frequency_function(pr: &ProbabilisticRelation) -> bool {
    simpson_density(pr).is_nonnegative(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlat::Universe;

    fn sample() -> ProbabilisticRelation {
        ProbabilisticRelation::uniform(Relation::from_tuples(
            3,
            vec![
                vec![1, 10, 100],
                vec![1, 10, 200],
                vec![2, 20, 100],
                vec![2, 30, 100],
            ],
        ))
    }

    #[test]
    fn simpson_of_empty_set_is_one() {
        // p_∅ has a single value with probability 1, so simpson(∅) = 1.
        let pr = sample();
        assert!((simpson_at(&pr, AttrSet::EMPTY) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_of_key_is_sum_of_squares() {
        // On the full attribute set every tuple is its own group:
        // simpson(S) = Σ p(t)² = 4 · (1/4)² = 1/4.
        let pr = sample();
        assert!((simpson_at(&pr, AttrSet::full(3)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn simpson_values_manual() {
        let pr = sample();
        // Attribute 0 groups tuples {0,1} and {2,3}: 0.5² + 0.5² = 0.5.
        assert!((simpson_at(&pr, AttrSet::from_indices([0])) - 0.5).abs() < 1e-12);
        // Attribute 1 groups {0,1}, {2}, {3}: 0.25 + 0.0625 + 0.0625 = 0.375.
        assert!((simpson_at(&pr, AttrSet::from_indices([1])) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn simpson_is_monotone_decreasing_in_x() {
        // Adding attributes refines the grouping, which can only lower Σ p².
        let pr = sample();
        let u = Universe::of_size(3);
        let f = simpson_function(&pr);
        for x in u.all_subsets() {
            for i in 0..3 {
                if !x.contains(i) {
                    assert!(f.get(x) >= f.get(x.with(i)) - 1e-12);
                }
            }
        }
    }

    #[test]
    fn proposition_7_2_density_closed_form() {
        let pr = sample();
        let u = Universe::of_size(3);
        let density = simpson_density(&pr);
        for x in u.all_subsets() {
            let closed = simpson_density_at_closed_form(&pr, x);
            assert!(
                (density.get(x) - closed).abs() < 1e-9,
                "Prop. 7.2 mismatch at {x:?}: transform {} vs closed form {closed}",
                density.get(x)
            );
        }
    }

    #[test]
    fn simpson_density_is_nonnegative() {
        let pr = sample();
        assert!(simpson_is_frequency_function(&pr));
        // Also with a skewed distribution.
        let skewed = ProbabilisticRelation::new(
            Relation::from_tuples(2, vec![vec![1, 1], vec![1, 2], vec![2, 2]]),
            vec![0.7, 0.2, 0.1],
        );
        assert!(simpson_is_frequency_function(&skewed));
    }

    #[test]
    fn single_tuple_relation() {
        let pr = ProbabilisticRelation::uniform(Relation::from_tuples(2, vec![vec![5, 7]]));
        let u = Universe::of_size(2);
        for x in u.all_subsets() {
            assert!((simpson_at(&pr, x) - 1.0).abs() < 1e-12);
        }
        let d = simpson_density(&pr);
        // All the density mass sits at the full set.
        assert!((d.get(AttrSet::full(2)) - 1.0).abs() < 1e-12);
        assert!((d.get(AttrSet::EMPTY)).abs() < 1e-12);
    }
}
