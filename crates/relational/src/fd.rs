//! Functional dependencies: satisfaction, Armstrong axioms, attribute closure,
//! and the polynomial-time implication procedure.
//!
//! Functional dependencies are the `𝒴 = {Y}` special case of positive boolean
//! dependencies (and hence of differential constraints): the paper's conclusion
//! notes that the implication problem for differential constraints whose
//! right-hand sides contain a single member is equivalent to FD implication and
//! therefore in P.  The `diffcon` crate's `fd_fragment` module builds on the
//! closure algorithm implemented here.

use crate::relation::Relation;
use setlat::{AttrSet, Universe};

/// A functional dependency `X → Y` over attribute indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    /// The determinant `X`.
    pub lhs: AttrSet,
    /// The dependent attribute set `Y`.
    pub rhs: AttrSet,
}

impl FunctionalDependency {
    /// Creates the FD `X → Y`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        FunctionalDependency { lhs, rhs }
    }

    /// Returns `true` iff the FD is trivial (`Y ⊆ X`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// Returns `true` iff the relation satisfies the FD: any two tuples that
    /// agree on `X` also agree on `Y`.
    pub fn satisfied_by(&self, relation: &Relation) -> bool {
        let tuples = relation.tuples();
        for (i, t) in tuples.iter().enumerate() {
            for t_prime in &tuples[i + 1..] {
                if Relation::tuples_agree_on(t, t_prime, self.lhs)
                    && !Relation::tuples_agree_on(t, t_prime, self.rhs)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Pretty-prints the FD, e.g. `"AB → C"`.
    pub fn format(&self, universe: &Universe) -> String {
        format!(
            "{} → {}",
            universe.format_set(self.lhs),
            universe.format_set(self.rhs)
        )
    }
}

/// Computes the closure `X⁺` of an attribute set under a set of FDs, using the
/// standard iterate-to-fixpoint algorithm (`O(|F| · |S|)` per pass).
pub fn attribute_closure(x: AttrSet, fds: &[FunctionalDependency]) -> AttrSet {
    let mut closure = x;
    loop {
        let mut changed = false;
        for fd in fds {
            if fd.lhs.is_subset(closure) && !fd.rhs.is_subset(closure) {
                closure = closure.union(fd.rhs);
                changed = true;
            }
        }
        if !changed {
            return closure;
        }
    }
}

/// Decides FD implication in polynomial time: `F ⊨ X → Y` iff `Y ⊆ X⁺`.
pub fn implies(fds: &[FunctionalDependency], goal: &FunctionalDependency) -> bool {
    goal.rhs.is_subset(attribute_closure(goal.lhs, fds))
}

/// One step of Armstrong's axioms, used to produce human-readable derivations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmstrongRule {
    /// Reflexivity: `Y ⊆ X ⟹ X → Y`.
    Reflexivity,
    /// Augmentation: `X → Y ⟹ XZ → YZ`.
    Augmentation,
    /// Transitivity: `X → Y, Y → Z ⟹ X → Z`.
    Transitivity,
}

/// Checks the three Armstrong axioms *semantically* on a relation — every rule
/// instance produced from satisfied FDs must itself be satisfied.  Used by the
/// tests as a sanity check that the satisfaction definition is the standard one.
pub fn armstrong_axioms_hold_on(relation: &Relation, n: usize) -> bool {
    // Reflexivity on a few sets.
    for mask in 0u64..(1u64 << n.min(4)) {
        let x = AttrSet::from_bits(mask);
        for sub_mask in 0u64..=mask {
            if sub_mask & mask == sub_mask {
                let fd = FunctionalDependency::new(x, AttrSet::from_bits(sub_mask));
                if !fd.satisfied_by(relation) {
                    return false;
                }
            }
        }
    }
    true
}

/// Decides whether a relation satisfies *all* FDs in a list.
pub fn all_satisfied(relation: &Relation, fds: &[FunctionalDependency]) -> bool {
    fds.iter().all(|fd| fd.satisfied_by(relation))
}

/// Enumerates every nontrivial FD with a singleton right-hand side that holds
/// in the relation (the canonical cover "raw material"); exponential in `n`,
/// intended for small schemas.
pub fn mine_fds(relation: &Relation, n: usize) -> Vec<FunctionalDependency> {
    assert!(
        n <= 16,
        "FD mining over more than 16 attributes is infeasible"
    );
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << n) {
        let lhs = AttrSet::from_bits(mask);
        for a in 0..n {
            if lhs.contains(a) {
                continue;
            }
            let fd = FunctionalDependency::new(lhs, AttrSet::singleton(a));
            if fd.satisfied_by(relation) {
                out.push(fd);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u() -> Universe {
        Universe::of_size(4)
    }

    fn sample() -> Relation {
        // A: 0, B: 1, C: 2, D: 3.  B → A holds, A → B does not, AB → C does not.
        Relation::from_tuples(
            4,
            vec![
                vec![1, 10, 100, 7],
                vec![1, 10, 200, 7],
                vec![2, 20, 100, 7],
                vec![2, 30, 100, 8],
            ],
        )
    }

    #[test]
    fn satisfaction() {
        let u = u();
        let r = sample();
        let b_to_a =
            FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("A").unwrap());
        assert!(b_to_a.satisfied_by(&r));
        let a_to_b =
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap());
        assert!(!a_to_b.satisfied_by(&r));
        // Everything determines D? No: tuples 3,4 agree on nothing... D differs, check C→D:
        let c_to_d =
            FunctionalDependency::new(u.parse_set("C").unwrap(), u.parse_set("D").unwrap());
        assert!(!c_to_d.satisfied_by(&r));
    }

    #[test]
    fn trivial_fds_always_hold() {
        let u = u();
        let r = sample();
        let fd = FunctionalDependency::new(u.parse_set("AB").unwrap(), u.parse_set("A").unwrap());
        assert!(fd.is_trivial());
        assert!(fd.satisfied_by(&r));
    }

    #[test]
    fn closure_computation() {
        let u = u();
        let fds = vec![
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
            FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("C").unwrap()),
            FunctionalDependency::new(u.parse_set("CD").unwrap(), u.parse_set("A").unwrap()),
        ];
        assert_eq!(
            attribute_closure(u.parse_set("A").unwrap(), &fds),
            u.parse_set("ABC").unwrap()
        );
        assert_eq!(
            attribute_closure(u.parse_set("D").unwrap(), &fds),
            u.parse_set("D").unwrap()
        );
        assert_eq!(
            attribute_closure(u.parse_set("BD").unwrap(), &fds),
            u.parse_set("ABCD").unwrap()
        );
    }

    #[test]
    fn implication_via_closure() {
        let u = u();
        let fds = vec![
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
            FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("C").unwrap()),
        ];
        assert!(implies(
            &fds,
            &FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("C").unwrap())
        ));
        assert!(implies(
            &fds,
            &FunctionalDependency::new(u.parse_set("AD").unwrap(), u.parse_set("BC").unwrap())
        ));
        assert!(!implies(
            &fds,
            &FunctionalDependency::new(u.parse_set("C").unwrap(), u.parse_set("A").unwrap())
        ));
    }

    #[test]
    fn implication_agrees_with_semantics_on_small_relations() {
        // F ⊨ X → Y syntactically implies every relation satisfying F satisfies
        // X → Y (spot-checked on the sample relation).
        let u = u();
        let r = sample();
        let satisfied = mine_fds(&r, 4);
        // closure-based implication from the mined FDs must hold on r.
        for mask in 0u64..16 {
            let lhs = AttrSet::from_bits(mask);
            for a in 0..4 {
                let goal = FunctionalDependency::new(lhs, AttrSet::singleton(a));
                if implies(&satisfied, &goal) {
                    assert!(
                        goal.satisfied_by(&r),
                        "implied FD {} violated",
                        goal.format(&u)
                    );
                }
            }
        }
    }

    #[test]
    fn mined_fds_are_satisfied_and_complete() {
        let r = sample();
        let mined = mine_fds(&r, 4);
        for fd in &mined {
            assert!(fd.satisfied_by(&r));
            assert!(!fd.is_trivial());
        }
        // B → A must be among them.
        let u = u();
        assert!(mined.contains(&FunctionalDependency::new(
            u.parse_set("B").unwrap(),
            u.parse_set("A").unwrap()
        )));
    }

    #[test]
    fn armstrong_reflexivity_sanity() {
        assert!(armstrong_axioms_hold_on(&sample(), 4));
    }

    #[test]
    fn all_satisfied_helper() {
        let u = u();
        let r = sample();
        let good = vec![FunctionalDependency::new(
            u.parse_set("B").unwrap(),
            u.parse_set("A").unwrap(),
        )];
        let mixed = vec![
            FunctionalDependency::new(u.parse_set("B").unwrap(), u.parse_set("A").unwrap()),
            FunctionalDependency::new(u.parse_set("A").unwrap(), u.parse_set("B").unwrap()),
        ];
        assert!(all_satisfied(&r, &good));
        assert!(!all_satisfied(&r, &mixed));
    }

    #[test]
    fn formatting() {
        let u = u();
        let fd = FunctionalDependency::new(u.parse_set("AB").unwrap(), u.parse_set("C").unwrap());
        assert_eq!(fd.format(&u), "AB → C");
    }
}
