//! E6 — Section 6.1.1: building the FDFree/Bd⁻ condensed representation,
//! deriving supports from it, and counting the additional itemsets made
//! redundant by differential-constraint inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diffcon::fis_bridge;
use diffcon::DiffConstraint;
use diffcon_bench::workloads;
use fis::condensed::CondensedRepresentation;
use setlat::{AttrSet, Universe};

fn bench_condensed_repr(c: &mut Criterion) {
    let db = workloads::fis_workload(13, 9, 200);
    workloads::table_condensed_sizes(&db, &[10, 20, 40]).eprint();

    // Inference-based pruning (the paper's {A,C,D} example, scaled up): count
    // itemsets provably disjunctive from two retained constraints.
    let u = Universe::of_size(6);
    let known = vec![
        DiffConstraint::parse("A -> {B, D}", &u).unwrap(),
        DiffConstraint::parse("B -> {C, D}", &u).unwrap(),
    ];
    let inferable = fis_bridge::inferable_disjunctive_itemsets(&u, &known);
    eprintln!(
        "\n== E6: itemsets provably disjunctive by inference (|S| = 6, 2 retained constraints): {} of {} ==",
        inferable.len(),
        1u64 << 6
    );

    let mut group = c.benchmark_group("E6_condensed_repr");
    group.sample_size(10);
    for &items in &[6usize, 8, 9] {
        let db = workloads::fis_workload(13, items, 150);
        let kappa = 15;
        group.bench_with_input(BenchmarkId::new("build", items), &db, |b, db| {
            b.iter(|| CondensedRepresentation::build(db, kappa).size())
        });
        let repr = CondensedRepresentation::build(&db, kappa);
        group.bench_with_input(BenchmarkId::new("derive_all", items), &repr, |b, repr| {
            b.iter(|| {
                (0u64..(1u64 << items))
                    .filter(|&mask| {
                        matches!(
                            repr.derive(AttrSet::from_bits(mask)),
                            fis::condensed::DerivedStatus::Frequent(_)
                        )
                    })
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_condensed_repr);
criterion_main!(benches);
