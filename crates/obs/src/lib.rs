//! # diffcon-obs — hermetic observability primitives for the serving stack
//!
//! The engine workspace builds without crate-registry access, so this crate
//! supplies — std-only, in the same vendored-shim spirit as `vendor/rand`
//! and `vendor/rayon` — the observability toolkit the serving crates
//! instrument themselves with:
//!
//! * [`Counter`] and [`Gauge`]: relaxed atomic scalars.
//! * [`Histogram`]: a lock-free log-bucketed value histogram (16 sub-buckets
//!   per octave, ≤ 6.25 % relative bucket error) with exact count/sum/max,
//!   bucket-wise merge ([`Histogram::absorb`]), and immutable
//!   [`HistogramSnapshot`]s answering p50/p90/p99/p999 quantiles.
//! * [`Trace`]: a lightweight per-request stage timer (named marks against
//!   one `Instant` clock) for `explain`-style latency decomposition.
//! * [`FlightRecorder`]: an always-on lock-free ring buffer of fixed-width
//!   records (one per completed request) — overwrite-oldest, written
//!   concurrently from any number of threads, dumpable without stopping
//!   traffic, and mergeable across recorders ([`FlightRecorder::absorb`]).
//! * [`Exposition`]: a Prometheus-text-format (version 0.0.4) builder that
//!   emits one `# TYPE` line per family and renders histograms as summary
//!   series (`{quantile="…"}` plus `_sum`/`_count`), with a matching
//!   [`parse_exposition`] validator used by the property tests and smoke
//!   checks.
//! * [`TextServer`]: a one-shot HTTP `GET` responder over
//!   `std::net::TcpListener` (each request re-renders the text body), plus
//!   [`fetch`], the matching one-shot client for tests and smoke scripts.
//!   [`TextServer::run_routes`] adds path dispatch (`/metrics`, `/healthz`,
//!   `/profile?seconds=S`, …) without growing into an HTTP framework.
//! * [`profile`]: continuous profiling — per-thread activity beacons with a
//!   cooperative sampler rendering flamegraph-collapsed stacks, and a
//!   counting `#[global_allocator]` wrapper attributing allocations to the
//!   active beacon tag.
//!
//! Every recording operation is a handful of relaxed atomic RMWs — no locks,
//! no allocation — so the engine can leave instrumentation enabled on its
//! hot paths.
//!
//! The crate denies `unsafe_code` everywhere except the one module whose
//! job requires it by signature: [`profile`]'s `GlobalAlloc` impl, which
//! forwards verbatim to `std::alloc::System`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone event counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the value to at least `value`.
    pub fn raise(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: `2^SUB_BITS` buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: `SUB` exact linear buckets for values below `SUB`,
/// then `SUB` buckets for each of the 60 octaves `[2^4, 2^64)`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index of `value` (log-linear, monotone in `value`).
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let mantissa = ((value >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (exp - SUB_BITS + 1) as usize * SUB + mantissa
    }
}

/// A representative value for bucket `index`: the bucket midpoint (exact for
/// the linear buckets), so quantile estimates sit inside the bucket rather
/// than at its edge.
fn bucket_value(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let exp = (index / SUB) as u32 + SUB_BITS - 1;
        let mantissa = (index % SUB) as u64;
        let lower = (1u64 << exp) + (mantissa << (exp - SUB_BITS));
        lower + (1u64 << (exp - SUB_BITS)) / 2
    }
}

/// A lock-free log-bucketed histogram of `u64` observations.
///
/// Buckets are log-linear — 16 equal sub-buckets per power of two — so
/// quantile estimates carry at most a 1/16 relative bucket error across the
/// full `u64` range while recording stays one relaxed `fetch_add` per bucket
/// plus exact count/sum/max maintenance.  Histograms merge bucket-wise
/// ([`Histogram::absorb`]), which is what makes per-shard or per-thread
/// histograms aggregatable without locks.
///
/// The unit is the caller's: the engine records nanoseconds for latencies
/// and raw counts for sizes, and chooses the display scale at exposition
/// time.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Merges every observation of `other` into `self`, bucket-wise.
    pub fn absorb(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time immutable copy for quantile queries.  Concurrent
    /// recording keeps the snapshot internally consistent to within the
    /// in-flight operations (counts may trail buckets by a few events).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of the observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the representative value
    /// of the bucket holding the ceil(q·count)-th smallest observation.
    /// Returns 0 for an empty snapshot; `q = 1.0` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(index).min(self.max);
            }
        }
        self.max
    }

    /// The median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The observations recorded after `baseline` was taken: bucket-wise
    /// saturating subtraction.  This is how a bench phase reads *its own*
    /// latency distribution out of a process-lifetime histogram: snapshot
    /// before, snapshot after, subtract.  (The max is the lifetime max — a
    /// windowed max is not recoverable from merged buckets — so `minus`
    /// re-derives it from the surviving buckets' upper range.)
    pub fn minus(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(baseline.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let max = buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map_or(0, |(index, _)| bucket_value(index).min(self.max));
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            max,
        }
    }
}

/// A per-request trace context: named stage marks against one monotone
/// clock, for `explain`-style latency decomposition.
///
/// ```
/// # use diffcon_obs::Trace;
/// let mut trace = Trace::start();
/// // … parse the request …
/// trace.stage("parse");
/// // … evaluate it …
/// trace.stage("decide");
/// assert_eq!(trace.stages().len(), 2);
/// assert!(trace.total() >= trace.stages().iter().map(|(_, d)| *d).sum());
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    start: Instant,
    last: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl Trace {
    /// Starts the clock.
    pub fn start() -> Trace {
        let now = Instant::now();
        Trace {
            start: now,
            last: now,
            stages: Vec::new(),
        }
    }

    /// Closes the current stage under `name`, recording the time elapsed
    /// since the previous mark (or since the start), and returns it.
    pub fn stage(&mut self, name: &'static str) -> Duration {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last);
        self.last = now;
        self.stages.push((name, elapsed));
        elapsed
    }

    /// The recorded stages, in order.
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// Total time since the trace started.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Words in one [`FlightRecorder`] record.  The layout of the words is the
/// caller's contract (the engine packs its per-request stage record into
/// them); the recorder only guarantees that a dumped record is exactly one
/// writer's `FLIGHT_WORDS` words, never a mixture.
pub const FLIGHT_WORDS: usize = 12;

/// One fixed-width flight-recorder record.
pub type FlightWords = [u64; FLIGHT_WORDS];

/// One ring slot: a sequence tag plus the record words.
///
/// The tag encodes the slot's state *and* which global write it holds:
/// `0` = never written, `2·i + 1` = write `i` in progress, `2·i + 2` =
/// write `i` complete.  Because a slot is only ever reused by writes whose
/// indices differ by a multiple of the capacity, equal tags before and
/// after a read prove the words belong to one complete write (no ABA).
#[derive(Debug)]
struct FlightSlot {
    seq: AtomicU64,
    words: [AtomicU64; FLIGHT_WORDS],
}

impl FlightSlot {
    fn empty() -> FlightSlot {
        FlightSlot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// An always-on, fixed-capacity, overwrite-oldest ring buffer of
/// [`FlightWords`] records, written lock-free from any number of threads
/// and dumpable at any moment without stopping writers.
///
/// Writes claim a globally ordered index with one `fetch_add`, then publish
/// through a per-slot seqlock (tag odd while the words are being stored,
/// even once complete).  Readers accept a slot only when the tag is even
/// and unchanged across the word reads, so a dump taken under live traffic
/// never observes a torn record — at worst it skips the one slot currently
/// being overwritten.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[FlightSlot]>,
    cursor: AtomicU64,
}

impl Default for FlightRecorder {
    /// A recorder sized for serving-process use: the 1024 most recent
    /// requests, a few seconds of history under load.
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(1024)
    }
}

impl FlightRecorder {
    /// A recorder holding the `capacity` most recent records (clamped to at
    /// least 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| FlightSlot::empty()).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// The number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (monotone; the ring retains the most
    /// recent [`FlightRecorder::capacity`] of them).
    pub fn written(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends one record, overwriting the oldest once the ring is full.
    pub fn record(&self, words: &FlightWords) {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        let claim = 2 * index + 1;
        let mut seen = slot.seq.load(Ordering::Acquire);
        loop {
            if seen > claim {
                // A write with a larger index already owns this slot (we
                // lagged a full ring behind); our record is the older one,
                // so dropping it preserves overwrite-oldest semantics.
                return;
            }
            if seen % 2 == 1 {
                // An older write is mid-flight in this slot; wait for its
                // publish rather than interleaving word stores with it.
                std::hint::spin_loop();
                seen = slot.seq.load(Ordering::Acquire);
                continue;
            }
            match slot
                .seq
                .compare_exchange_weak(seen, claim, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
        for (cell, &word) in slot.words.iter().zip(words) {
            cell.store(word, Ordering::Release);
        }
        slot.seq.store(claim + 1, Ordering::Release);
    }

    /// The most recent `n` complete records, newest first, each paired with
    /// its global write index.  Taken under live traffic: slots mid-write
    /// are retried briefly and then skipped, so the dump is tear-free by
    /// construction (a record is returned only when its sequence tag is
    /// even and identical before and after the word reads).
    pub fn dump(&self, n: usize) -> Vec<(u64, FlightWords)> {
        let mut out: Vec<(u64, FlightWords)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _attempt in 0..8 {
                let before = slot.seq.load(Ordering::Acquire);
                if before == 0 {
                    break; // never written
                }
                if before % 2 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress; retry
                }
                let mut words = [0u64; FLIGHT_WORDS];
                for (word, cell) in words.iter_mut().zip(slot.words.iter()) {
                    *word = cell.load(Ordering::Acquire);
                }
                if slot.seq.load(Ordering::Acquire) == before {
                    out.push((before / 2 - 1, words));
                    break;
                }
            }
        }
        out.sort_unstable_by_key(|&(index, _)| std::cmp::Reverse(index));
        out.truncate(n);
        out
    }

    /// Replays every record retained by `other` into `self`, oldest first,
    /// so per-thread or per-worker recorders can be merged into one ring
    /// (interleaved by merge order, each record intact).
    pub fn absorb(&self, other: &FlightRecorder) {
        let mut records = other.dump(other.capacity());
        records.reverse();
        for (_, words) in records {
            self.record(&words);
        }
    }
}

/// A Prometheus-text-format (0.0.4) exposition builder.
///
/// Families self-register on first use — one `# TYPE` line each, in emission
/// order — and histograms render as Prometheus *summary* families: one
/// `{quantile="…"}` series per quantile plus `_sum` and `_count`.  The
/// builder panics (debug assertions) on malformed metric names, which keeps
/// the grammar errors at the emitting call site instead of in the scraper.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    typed: Vec<String>,
}

/// Quantiles every summary family reports.
const SUMMARY_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        if !self.typed.iter().any(|t| t == name) {
            self.typed.push(name.to_string());
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn series(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = write!(self.out, "{name}");
        if !labels.is_empty() {
            let _ = write!(self.out, "{{");
            for (slot, (key, val)) in labels.iter().enumerate() {
                debug_assert!(valid_metric_name(key), "invalid label name {key:?}");
                let sep = if slot == 0 { "" } else { "," };
                let _ = write!(self.out, "{sep}{key}=\"{}\"", escape_label(val));
            }
            let _ = write!(self.out, "}}");
        }
        let _ = writeln!(self.out, " {}", format_value(value));
    }

    /// Emits a counter series.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.type_line(name, "counter");
        self.series(name, labels, value as f64);
    }

    /// Emits a gauge series.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.type_line(name, "gauge");
        self.series(name, labels, value as f64);
    }

    /// Emits a histogram snapshot as a summary family: one series per
    /// summary quantile (0.5/0.9/0.99/0.999) plus `name_sum` and
    /// `name_count`.
    /// Recorded values are divided by `scale` for display (e.g. nanosecond
    /// recordings with `scale = 1e3` expose microseconds).
    pub fn summary(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
        scale: f64,
    ) {
        self.type_line(name, "summary");
        let mut labeled: Vec<(&str, &str)> = labels.to_vec();
        for (q, text) in SUMMARY_QUANTILES {
            labeled.push(("quantile", text));
            self.series(name, &labeled, snapshot.quantile(q) as f64 / scale);
            labeled.pop();
        }
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");
        self.series(&sum_name, labels, snapshot.sum() as f64 / scale);
        self.series(&count_name, labels, snapshot.count() as f64);
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// `true` when `name` is a valid Prometheus metric or label name.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escapes a label value per the text format (`\\`, `\"`, `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a value the text format accepts (finite decimal, no exponent
/// surprises for integral values).
fn format_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// One sample series parsed out of an exposition body.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric name (`name` in `name{labels} value`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Series {
    /// A canonical identity for duplicate detection: the name plus the
    /// label pairs in source order.
    pub fn key(&self) -> String {
        let mut key = self.name.clone();
        for (name, value) in &self.labels {
            key.push('\u{1}');
            key.push_str(name);
            key.push('=');
            key.push_str(value);
        }
        key
    }
}

/// Parses and validates a Prometheus-text exposition body: every non-comment
/// line must match the `name{label="value",…} value` grammar, names must be
/// valid, and values must be finite numbers.  Returns the sample series in
/// source order.
///
/// # Errors
/// A description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Series>, String> {
    let mut series = Vec::new();
    for (slot, line) in text.lines().enumerate() {
        let lineno = slot + 1;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if let Some("TYPE") = words.next() {
                let name = words
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid TYPE name {name:?}"));
                }
                match words.next() {
                    Some("counter" | "gauge" | "summary" | "histogram" | "untyped") => {}
                    other => return Err(format!("line {lineno}: invalid TYPE kind {other:?}")),
                }
            }
            continue;
        }
        series.push(parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(series)
}

/// Parses one `name{label="value",…} value` sample line.
fn parse_sample(line: &str) -> Result<Series, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or("sample line without a value")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        // Walk pair by pair rather than splitting at the first `}`: a
        // quoted label value may itself contain `}` (or `,` or `=`), so the
        // label set only ends at a `}` seen *between* pairs.
        let mut cursor = body;
        loop {
            if let Some(after) = cursor.strip_prefix('}') {
                rest = after;
                break;
            }
            if cursor.is_empty() {
                return Err("unterminated label set".to_string());
            }
            let eq = cursor.find('=').ok_or("label without '='")?;
            let label = &cursor[..eq];
            if !valid_metric_name(label) {
                return Err(format!("invalid label name {label:?}"));
            }
            let quoted = cursor[eq + 1..]
                .strip_prefix('"')
                .ok_or("label value not quoted")?;
            let endq = find_unescaped_quote(quoted).ok_or("unterminated label value")?;
            labels.push((label.to_string(), unescape_label(&quoted[..endq])));
            cursor = &quoted[endq + 1..];
            cursor = cursor.strip_prefix(',').unwrap_or(cursor);
        }
    }
    let value_text = rest.trim();
    if value_text.is_empty() || value_text.contains(char::is_whitespace) {
        return Err(format!("malformed value field {value_text:?}"));
    }
    let value: f64 = value_text
        .parse()
        .map_err(|_| format!("unparseable value {value_text:?}"))?;
    if !value.is_finite() {
        return Err(format!("non-finite value {value_text:?}"));
    }
    Ok(Series {
        name: name.to_string(),
        labels,
        value,
    })
}

/// The byte offset of the first `"` in `text` not preceded by a backslash.
fn find_unescaped_quote(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut slot = 0;
    while slot < bytes.len() {
        match bytes[slot] {
            b'\\' => slot += 2,
            b'"' => return Some(slot),
            _ => slot += 1,
        }
    }
    None
}

/// Undoes [`escape_label`].
fn unescape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Shared [`TextServer`] stop flag.
#[derive(Debug, Default)]
struct ServerState {
    shutdown: AtomicBool,
}

/// Stops a running [`TextServer`] accept loop from another thread.
#[derive(Debug, Clone)]
pub struct TextServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl TextServerHandle {
    /// Flags shutdown and pokes the accept loop awake.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A minimal one-shot HTTP text endpoint: every `GET` re-renders the body
/// and answers `200 text/plain; version=0.0.4` with `Connection: close`.
/// This is the `--metrics-addr` scrape surface — single-threaded by design
/// (a scrape is one small read and one small write; serving it inline keeps
/// the server dependency-free and unexciting).
#[derive(Debug)]
pub struct TextServer {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl TextServer {
    /// Binds the listening socket (port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TextServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TextServer {
            listener,
            addr,
            state: Arc::new(ServerState::default()),
        })
    }

    /// The bound address (the actual port, when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`TextServer::run`].
    pub fn handle(&self) -> TextServerHandle {
        TextServerHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// Serves requests until the handle flags shutdown.  `render` is called
    /// once per request; connection-level errors (slow or vanished clients)
    /// drop that connection and keep serving.  Every `GET` path answers the
    /// same body — the single-endpoint form of [`TextServer::run_routes`].
    pub fn run(self, render: impl Fn() -> String) -> io::Result<()> {
        self.run_routes(|_path| HttpResponse::ok(render()))
    }

    /// Serves requests until the handle flags shutdown, dispatching on the
    /// request path.  `route` receives the full request target (path plus
    /// any `?query`) of each `GET` and returns the response; non-`GET`
    /// methods are answered `405` without consulting it.
    pub fn run_routes(self, route: impl Fn(&str) -> HttpResponse) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = answer_one(stream, &route);
        }
        Ok(())
    }
}

/// One HTTP response from a [`TextServer::run_routes`] route handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

/// The content type every metrics-style plain-text body is served as.
pub const TEXT_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

impl HttpResponse {
    /// A `200 OK` plain-text response.
    pub fn ok(body: String) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: TEXT_CONTENT_TYPE,
            body,
        }
    }

    /// A `404 Not Found` response naming the missing path.
    pub fn not_found(path: &str) -> HttpResponse {
        HttpResponse {
            status: 404,
            content_type: TEXT_CONTENT_TYPE,
            body: format!("no such endpoint: {path}\n"),
        }
    }

    /// A `400 Bad Request` response with a reason.
    pub fn bad_request(reason: String) -> HttpResponse {
        HttpResponse {
            status: 400,
            content_type: TEXT_CONTENT_TYPE,
            body: reason,
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Response",
        }
    }
}

/// Reads one HTTP request head and answers it via the route handler.
fn answer_one(mut stream: TcpStream, route: &impl Fn(&str) -> HttpResponse) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    // Read until the blank line ending the request head; cap the head at 8
    // KiB so a garbage client cannot buffer unboundedly.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
        if head.len() > 8 * 1024 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let response = if let Some(target) = request.strip_prefix("GET ") {
        // `GET <target> HTTP/1.x` — the target runs to the next space (or
        // line end for degenerate clients).
        let path = target
            .split_whitespace()
            .next()
            .filter(|p| !p.is_empty())
            .unwrap_or("/");
        route(path)
    } else {
        HttpResponse {
            status: 405,
            content_type: TEXT_CONTENT_TYPE,
            body: String::new(),
        }
    };
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.status_text(),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// One-shot HTTP `GET /metrics` against `addr`, returning the response
/// body.  The matching client for [`TextServer`] — what the smoke tests and
/// examples scrape with when `curl` is not around.
///
/// # Errors
/// Propagates connection and read failures; a non-200 status surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn fetch(addr: impl ToSocketAddrs) -> io::Result<String> {
    fetch_path(addr, "/metrics")
}

/// One-shot HTTP `GET <path>` against `addr`, returning the response body.
/// The routed-companion of [`fetch`]; `path` may carry a query string
/// (`/profile?seconds=1`).
///
/// # Errors
/// Propagates connection and read failures; a non-200 status surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn fetch_path(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .or_else(|| response.split_once("\n\n"))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP header terminator"))?;
    if !head.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("non-200 response: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_within_error() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for offset in [0u64, 1, 3] {
                values.push((1u64 << exp).saturating_add(offset << exp.saturating_sub(3)));
            }
        }
        values.sort_unstable();
        values.dedup();
        let mut last = 0usize;
        for &v in &values {
            let index = bucket_index(v);
            assert!(index >= last, "index regressed at {v}");
            assert!(index < BUCKETS);
            last = index;
            let rep = bucket_value(index);
            if v >= SUB as u64 {
                let err = rep.abs_diff(v) as f64 / v as f64;
                assert!(err <= 1.0 / SUB as f64, "bucket error {err} at {v}");
            } else {
                assert_eq!(rep, v, "linear buckets are exact");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        let p50 = s.p50() as f64;
        assert!((p50 - 500.0).abs() / 500.0 <= 0.07, "p50 {p50}");
        let p99 = s.p99() as f64;
        assert!((p99 - 990.0).abs() / 990.0 <= 0.07, "p99 {p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.p999() <= 1000);
    }

    #[test]
    fn absorb_merges_and_minus_subtracts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v + 1000);
        }
        let before = a.snapshot();
        a.absorb(&b);
        let after = a.snapshot();
        assert_eq!(after.count(), 200);
        assert_eq!(after.max(), 1099);
        let delta = after.minus(&before);
        assert_eq!(delta.count(), 100);
        assert_eq!(delta.sum(), b.snapshot().sum());
        assert!(delta.p50() >= 1000);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn minus_of_identical_snapshots_is_an_empty_window() {
        let h = Histogram::new();
        for v in [3u64, 5, 900, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let window = snap.minus(&snap);
        assert_eq!(window.count(), 0);
        assert_eq!(window.sum(), 0);
        assert_eq!(window.max(), 0, "empty window re-derives max as 0");
        assert_eq!(window.p50(), 0);
        assert_eq!(window.quantile(1.0), 0);
        assert_eq!(window.mean(), 0.0);
    }

    #[test]
    fn minus_saturates_when_the_baseline_is_ahead() {
        // A baseline taken from a *different* (fuller) histogram models the
        // counter-wrap / stale-baseline case: subtraction must saturate
        // bucket-wise and in count/sum rather than wrapping to huge values.
        let small = Histogram::new();
        let big = Histogram::new();
        for v in 0..10u64 {
            small.record(v);
        }
        for v in 0..100u64 {
            big.record(v);
        }
        let window = small.snapshot().minus(&big.snapshot());
        assert_eq!(window.count(), 0, "count saturates, never wraps");
        assert_eq!(window.sum(), 0, "sum saturates, never wraps");
        assert_eq!(window.max(), 0);
        // Mixed direction: buckets the small histogram *does* exceed
        // survive, the rest clamp at zero.
        let lopsided = Histogram::new();
        for _ in 0..5 {
            lopsided.record(1_000_000);
        }
        let window = lopsided.snapshot().minus(&big.snapshot());
        assert_eq!(window.count(), 0, "scalar count still saturates");
        assert!(window.quantile(1.0) <= lopsided.snapshot().max());
    }

    #[test]
    fn minus_windows_stay_correct_across_snapshot_ring_reuse() {
        // The engine's recent-stats ring keeps a bounded deque of
        // snapshots and differences the newest against the oldest; model
        // that here: a rolling window over a live histogram must always
        // contain exactly the observations recorded inside the window.
        let h = Histogram::new();
        let mut ring: Vec<HistogramSnapshot> = vec![h.snapshot()];
        const RING: usize = 4;
        for round in 1..=20u64 {
            for v in 0..round {
                h.record(1_000 + v);
            }
            ring.push(h.snapshot());
            if ring.len() > RING {
                ring.remove(0);
            }
            let window = ring.last().unwrap().minus(&ring[0]);
            let rounds_in_window = (ring.len() - 1) as u64;
            let expected: u64 = (0..rounds_in_window).map(|k| round - k).sum();
            assert_eq!(window.count(), expected, "round {round}");
            assert!(window.max() >= 1_000 || window.count() == 0);
            assert!(window.p50() >= 1_000 || window.count() == 0);
        }
    }

    #[test]
    fn trace_records_ordered_stages() {
        let mut t = Trace::start();
        t.stage("one");
        std::thread::sleep(Duration::from_millis(1));
        let second = t.stage("two");
        assert!(second >= Duration::from_millis(1));
        let names: Vec<_> = t.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["one", "two"]);
        assert!(t.total() >= second);
    }

    /// A record derived from its index, so tearing is detectable.
    fn stamped(index: u64) -> FlightWords {
        let mut words = [0u64; FLIGHT_WORDS];
        for (slot, word) in words.iter_mut().enumerate() {
            *word = index.wrapping_mul(slot as u64 + 1).wrapping_add(7);
        }
        words
    }

    #[test]
    fn flight_recorder_retains_the_most_recent_records() {
        let ring = FlightRecorder::with_capacity(4);
        assert_eq!(ring.dump(8), Vec::new());
        for i in 0..10u64 {
            ring.record(&stamped(i));
        }
        assert_eq!(ring.written(), 10);
        let dumped = ring.dump(8);
        let indices: Vec<u64> = dumped.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, [9, 8, 7, 6], "newest first, capacity-bounded");
        for (index, words) in &dumped {
            assert_eq!(*words, stamped(*index));
        }
        assert_eq!(ring.dump(2).len(), 2, "dump truncates to n");
    }

    #[test]
    fn flight_recorder_never_tears_under_concurrent_traffic() {
        let ring = FlightRecorder::with_capacity(32);
        let writers = 4u64;
        let per_writer = 2_000u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        ring.record(&stamped(w * per_writer + i));
                    }
                });
            }
            // A reader dumps continuously while the writers hammer the ring:
            // every record it accepts must satisfy the stamp invariant.
            let ring = &ring;
            scope.spawn(move || {
                for _ in 0..200 {
                    for (_, words) in ring.dump(32) {
                        let seed = words[0].wrapping_sub(7);
                        assert_eq!(words, stamped(seed), "torn record: {words:?}");
                    }
                }
            });
        });
        assert_eq!(ring.written(), writers * per_writer);
        // Quiescent: the ring holds 32 distinct complete records.
        let settled = ring.dump(32);
        assert_eq!(settled.len(), 32);
        let mut indices: Vec<u64> = settled.iter().map(|(i, _)| *i).collect();
        indices.dedup();
        assert_eq!(indices.len(), 32, "indices are distinct and sorted");
    }

    #[test]
    fn flight_recorder_absorb_merges_rings() {
        let a = FlightRecorder::with_capacity(8);
        let b = FlightRecorder::with_capacity(4);
        for i in 0..3u64 {
            a.record(&stamped(i));
        }
        for i in 10..13u64 {
            b.record(&stamped(i));
        }
        a.absorb(&b);
        let merged = a.dump(8);
        assert_eq!(merged.len(), 6);
        // Newest entries are b's records, replayed oldest-first.
        let payloads: Vec<u64> = merged.iter().map(|(_, w)| w[0].wrapping_sub(7)).collect();
        assert_eq!(payloads, [12, 11, 10, 2, 1, 0]);
    }

    #[test]
    fn exposition_roundtrips_through_the_parser() {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.record(v);
        }
        let mut exp = Exposition::new();
        exp.counter("demo_requests_total", &[], 7);
        exp.counter(
            "demo_cache_ops_total",
            &[("cache", "answer"), ("outcome", "hit")],
            3,
        );
        exp.counter(
            "demo_cache_ops_total",
            &[("cache", "answer"), ("outcome", "miss")],
            4,
        );
        exp.gauge("demo_queue_depth", &[], 2);
        exp.summary("demo_latency_us", &[("stage", "plan")], &h.snapshot(), 1e3);
        let text = exp.finish();
        assert_eq!(
            text.matches("# TYPE demo_cache_ops_total counter").count(),
            1,
            "one TYPE line per family"
        );
        let series = parse_exposition(&text).expect("own output must parse");
        let mut keys: Vec<String> = series.iter().map(Series::key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), total, "no duplicate series");
        let count = series
            .iter()
            .find(|s| s.name == "demo_latency_us_count")
            .unwrap();
        assert_eq!(count.value, 4.0);
        let hit = series
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "hit"))
            .unwrap();
        assert_eq!(hit.value, 3.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("ok 1").is_ok());
        assert!(parse_exposition("1bad 1").is_err());
        assert!(parse_exposition("name{l=\"v\" 1").is_err());
        assert!(parse_exposition("name nan").is_err());
        assert!(parse_exposition("name").is_err());
        assert!(parse_exposition("# TYPE name wat").is_err());
        assert!(parse_exposition("# random comment\nname 2.5").is_ok());
    }

    #[test]
    fn label_escaping_roundtrips() {
        let mut exp = Exposition::new();
        exp.counter("demo_total", &[("q", "a\"b\\c\nd")], 1);
        let text = exp.finish();
        let series = parse_exposition(&text).unwrap();
        assert_eq!(series[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn parser_handles_escaped_label_values() {
        // Hand-written (not builder-emitted) lines exercising every escape
        // the text format defines, plus the separators that must *not*
        // terminate a value while escaped or quoted.
        let cases: &[(&str, &str)] = &[
            (r#"m{l="plain"} 1"#, "plain"),
            (r#"m{l="a\"b"} 1"#, "a\"b"),
            (r#"m{l="a\\b"} 1"#, "a\\b"),
            (r#"m{l="a\nb"} 1"#, "a\nb"),
            (r#"m{l="tail\\"} 1"#, "tail\\"),
            (r#"m{l="a,b=c"} 1"#, "a,b=c"),
            (r#"m{l="a}b"} 1"#, "a}b"),
            (r#"m{l="\\\"\n"} 1"#, "\\\"\n"),
        ];
        for (line, want) in cases {
            let series = parse_exposition(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(series[0].labels[0].1, *want, "line {line:?}");
        }
        // Multiple labels where the first value contains an escaped quote
        // followed by a comma: the parser must not split inside it.
        let series = parse_exposition(r#"m{a="x\",y",b="z"} 2"#).unwrap();
        assert_eq!(series[0].labels.len(), 2);
        assert_eq!(series[0].labels[0].1, "x\",y");
        assert_eq!(series[0].labels[1].1, "z");
        // An unterminated escaped value must be rejected, not mis-split.
        assert!(parse_exposition(r#"m{l="open\"} 1"#).is_err());
    }

    #[test]
    fn text_server_serves_and_shuts_down() {
        let server = TextServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run(|| "demo_total 1\n".to_string()));
        let body = fetch(addr).expect("scrape");
        assert_eq!(body, "demo_total 1\n");
        // A second scrape re-renders.
        assert_eq!(fetch(addr).unwrap(), "demo_total 1\n");
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn routed_server_dispatches_on_path() {
        let server = TextServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || {
            server.run_routes(|path| match path {
                "/metrics" => HttpResponse::ok("routed_total 1\n".to_string()),
                "/healthz" => HttpResponse::ok("ok\n".to_string()),
                p if p.starts_with("/echo?") => HttpResponse::ok(format!("{p}\n")),
                p => HttpResponse::not_found(p),
            })
        });
        assert_eq!(fetch(addr).unwrap(), "routed_total 1\n");
        assert_eq!(fetch_path(addr, "/healthz").unwrap(), "ok\n");
        // The query string reaches the handler intact.
        assert_eq!(
            fetch_path(addr, "/echo?seconds=2").unwrap(),
            "/echo?seconds=2\n"
        );
        let err = fetch_path(addr, "/nope").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("404"), "{err}");
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }

    #[test]
    fn non_get_requests_are_refused() {
        let server = TextServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run(String::new));
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
        handle.shutdown();
        thread.join().unwrap().unwrap();
    }
}
