//! The implication problem for differential constraints.
//!
//! `C ⊨ X → 𝒴` holds when every function in `F(S)` satisfying all of `C`
//! satisfies `X → 𝒴`.  Theorem 3.5 characterizes this syntactically:
//!
//! ```text
//! C ⊨ X → 𝒴   ⇔   L(X, 𝒴) ⊆ L(C) = ⋃_{X'→𝒴' ∈ C} L(X', 𝒴').
//! ```
//!
//! Three decision procedures are provided and cross-validated:
//!
//! * [`implies`] / [`implies_lattice`] — the direct Theorem 3.5 check: iterate
//!   over the supersets of `X`, keep the ones in `L(X, 𝒴)`, and verify each is
//!   covered by some premise's lattice.  `O(2^{|S|−|X|} · |C| · |𝒴|)` bitset
//!   work, no materialization of `L(C)`;
//! * [`implies_semantic`] — the proof of Theorem 3.5 in executable form: for
//!   every candidate set `U` build the counterexample function `f^U` and test
//!   it against the premises and the goal;
//! * the SAT-backed procedure lives in [`crate::prop_bridge`] (Proposition 5.4).
//!
//! The implication problem is coNP-complete (Proposition 5.5), so all of these
//! are worst-case exponential; the lattice procedure is the one whose constants
//! the benchmarks measure.

use crate::constraint::DiffConstraint;
use crate::semantics;
use setlat::{powerset, AttrSet, SetFunction, Universe};

/// Decides `C ⊨ goal` using the lattice characterization of Theorem 3.5.
///
/// This is the default decision procedure; [`implies_lattice`] is an alias kept
/// for symmetry with the other engines.
pub fn implies(universe: &Universe, premises: &[DiffConstraint], goal: &DiffConstraint) -> bool {
    implies_lattice(universe, premises, goal)
}

/// Decides `C ⊨ goal` by checking `L(X, 𝒴) ⊆ ⋃ L(X', 𝒴')` without materializing
/// either side: every superset of `X` that lies in the goal's lattice must lie
/// in some premise's lattice.
pub fn implies_lattice(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    let n = universe.len();
    powerset::supersets_within(goal.lhs, n)
        .filter(|&u| goal.lattice_contains(u))
        .all(|u| premises.iter().any(|p| p.lattice_contains(u)))
}

/// Returns a *witness of non-implication* if one exists: a set `U ∈ L(goal)`
/// not covered by any premise lattice.  `None` means the implication holds.
pub fn refutation_witness(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> Option<AttrSet> {
    let n = universe.len();
    powerset::supersets_within(goal.lhs, n)
        .filter(|&u| goal.lattice_contains(u))
        .find(|&u| !premises.iter().any(|p| p.lattice_contains(u)))
}

/// Decides `C ⊨ goal` semantically, following the proof of Theorem 3.5: the
/// implication fails iff some counterexample function `f^U` (a point mass at a
/// set `U ⊇ X`) satisfies every premise yet violates the goal.
///
/// Slower than [`implies_lattice`] (it runs a Möbius transform per candidate),
/// but completely independent of the lattice bookkeeping, which makes it a good
/// cross-check in tests and experiments.
pub fn implies_semantic(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> bool {
    let n = universe.len();
    for u_set in powerset::supersets_within(goal.lhs, n) {
        let f = SetFunction::point_mass(n, u_set, 1.0);
        if semantics::satisfies_all(&f, premises) && !semantics::satisfies(&f, goal) {
            return false;
        }
    }
    true
}

/// Decides whether two constraint sets are equivalent (each implies every
/// member of the other).
pub fn equivalent_sets(
    universe: &Universe,
    first: &[DiffConstraint],
    second: &[DiffConstraint],
) -> bool {
    second.iter().all(|c| implies(universe, first, c))
        && first.iter().all(|c| implies(universe, second, c))
}

/// Removes redundant constraints: a member is dropped when it is implied by the
/// remaining ones.  The result is a (not necessarily unique) irredundant cover
/// equivalent to the input.
pub fn irredundant_cover(
    universe: &Universe,
    constraints: &[DiffConstraint],
) -> Vec<DiffConstraint> {
    let mut kept: Vec<DiffConstraint> = constraints.to_vec();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i].clone();
        let rest: Vec<DiffConstraint> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        if implies(universe, &rest, &candidate) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    kept
}

/// The number of sets in `L(goal) − L(C)` — how "far" the implication is from
/// holding (0 iff it holds).  Used by experiments that need a quantitative
/// notion of violation.
pub fn uncovered_count(
    universe: &Universe,
    premises: &[DiffConstraint],
    goal: &DiffConstraint,
) -> usize {
    let n = universe.len();
    powerset::supersets_within(goal.lhs, n)
        .filter(|&u| goal.lattice_contains(u))
        .filter(|&u| !premises.iter().any(|p| p.lattice_contains(u)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u3() -> Universe {
        Universe::of_size(3)
    }

    fn u4() -> Universe {
        Universe::of_size(4)
    }

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn example_3_4_transitivity() {
        let u = u3();
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        assert!(implies(&u, &premises, &goal));
        assert!(implies_semantic(&u, &premises, &goal));
        assert_eq!(refutation_witness(&u, &premises, &goal), None);

        let bad = DiffConstraint::parse("C -> {A}", &u).unwrap();
        assert!(!implies(&u, &premises, &bad));
        assert!(!implies_semantic(&u, &premises, &bad));
        assert!(refutation_witness(&u, &premises, &bad).is_some());
    }

    #[test]
    fn example_4_3_derivation_goal_is_implied() {
        let u = u4();
        let premises = parse(&u, &["A -> {BC, CD}", "C -> {D}"]);
        let goal = DiffConstraint::parse("AB -> {D}", &u).unwrap();
        assert!(implies(&u, &premises, &goal));
        assert!(implies_semantic(&u, &premises, &goal));
    }

    #[test]
    fn trivial_goals_are_always_implied() {
        let u = u4();
        let goal = DiffConstraint::parse("AB -> {B}", &u).unwrap();
        assert!(implies(&u, &[], &goal));
        assert!(implies_semantic(&u, &[], &goal));
    }

    #[test]
    fn soundness_of_figure_1_rules_via_implication() {
        // Each Figure 1 rule instance must be implied by its hypotheses.
        let u = u4();
        // Augmentation: A → {B, CD} ⊨ AC → {B, CD}.
        let premise = parse(&u, &["A -> {B, CD}"]);
        assert!(implies(
            &u,
            &premise,
            &DiffConstraint::parse("AC -> {B, CD}", &u).unwrap()
        ));
        // Addition: A → {B} ⊨ A → {B, CD}.
        let premise = parse(&u, &["A -> {B}"]);
        assert!(implies(
            &u,
            &premise,
            &DiffConstraint::parse("A -> {B, CD}", &u).unwrap()
        ));
        // Elimination: {A → {B, C}, AC → {B}} ⊨ A → {B}.
        let premises = parse(&u, &["A -> {B, C}", "AC -> {B}"]);
        assert!(implies(
            &u,
            &premises,
            &DiffConstraint::parse("A -> {B}", &u).unwrap()
        ));
    }

    #[test]
    fn addition_converse_fails() {
        // A → {B, CD} does not imply A → {B}.
        let u = u4();
        let premises = parse(&u, &["A -> {B, CD}"]);
        let goal = DiffConstraint::parse("A -> {B}", &u).unwrap();
        assert!(!implies(&u, &premises, &goal));
        let witness = refutation_witness(&u, &premises, &goal).unwrap();
        // The witness must be in L(goal) but not in L(premise).
        assert!(goal.lattice_contains(witness));
        assert!(!premises[0].lattice_contains(witness));
    }

    #[test]
    fn lattice_and_semantic_procedures_agree_on_random_instances() {
        let u = u4();
        let mut state = 0x12345678u64;
        let mut rand_set = |bound: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            AttrSet::from_bits((state >> 40) % bound)
        };
        for _ in 0..40 {
            let premises: Vec<DiffConstraint> = (0..3)
                .map(|_| {
                    DiffConstraint::new(
                        rand_set(16),
                        setlat::Family::from_sets(
                            (0..2).map(|_| rand_set(15) | AttrSet::singleton(3)),
                        ),
                    )
                })
                .collect();
            let goal = DiffConstraint::new(rand_set(16), setlat::Family::from_sets([rand_set(16)]));
            assert_eq!(
                implies_lattice(&u, &premises, &goal),
                implies_semantic(&u, &premises, &goal),
                "procedures disagree on premises {premises:?}, goal {goal:?}"
            );
        }
    }

    #[test]
    fn equivalence_and_irredundant_cover() {
        let u = u3();
        let set_a = parse(&u, &["A -> {B}", "B -> {C}", "A -> {C}"]);
        let set_b = parse(&u, &["A -> {B}", "B -> {C}"]);
        assert!(equivalent_sets(&u, &set_a, &set_b));
        let cover = irredundant_cover(&u, &set_a);
        assert!(cover.len() <= 2);
        assert!(equivalent_sets(&u, &cover, &set_a));
        // A non-equivalent pair.
        let set_c = parse(&u, &["A -> {B}"]);
        assert!(!equivalent_sets(&u, &set_a, &set_c));
    }

    #[test]
    fn uncovered_count_quantifies_violation() {
        let u = u3();
        let premises = parse(&u, &["A -> {B}"]);
        let implied = DiffConstraint::parse("AC -> {B}", &u).unwrap();
        assert_eq!(uncovered_count(&u, &premises, &implied), 0);
        let not_implied = DiffConstraint::parse("B -> {A}", &u).unwrap();
        assert!(uncovered_count(&u, &premises, &not_implied) > 0);
    }

    #[test]
    fn empty_premises() {
        let u = u3();
        // Only trivial constraints are implied by the empty set.
        assert!(implies(
            &u,
            &[],
            &DiffConstraint::parse("AB -> {A}", &u).unwrap()
        ));
        assert!(!implies(
            &u,
            &[],
            &DiffConstraint::parse("A -> {B}", &u).unwrap()
        ));
    }
}
