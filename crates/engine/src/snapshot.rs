//! Immutable session snapshots: the lock-free read path of the engine.
//!
//! A [`Snapshot`] is a frozen, point-in-time view of one session's premise
//! state — the premise set with its propositional translations and
//! FD-fragment index, the known point values, both versioning digests, the
//! dataset handle, and the bound-query side conditions — packaged behind an
//! `Arc` together with handles to the session's *shared* serving
//! infrastructure (the sharded caches and the atomic planner accounting).
//!
//! The deciders of the paper are pure functions of the premise set, so once
//! that state is frozen every query is answerable through `&self`:
//! [`Snapshot::implies`], [`Snapshot::implies_batch`], and
//! [`Snapshot::bound`] never take a mutable reference, never block a writer,
//! and may be called from any number of threads concurrently.  A
//! [`crate::session::Session`] publishes a fresh `Arc<Snapshot>` (bumping
//! its [`Snapshot::epoch`]) on every mutation; in-flight readers keep
//! answering against the snapshot they hold — exactly the serial semantics
//! of the program order in which they captured it — while new readers pick
//! up the new state.
//!
//! Caching across snapshots is sound because every cache key is versioned
//! through [`crate::cache::version_salt`]: two snapshots with the same
//! digests share warm entries (retract-then-reassert instantly revalidates),
//! while any state difference makes the keys disjoint.

use crate::batch::{self, Job, JobResult};
use crate::cache::{version_salt, CacheStats, ShardedCache, VersionedKey};
use crate::metrics::SessionCosts;
use crate::planner::{Planner, PlannerStats};
use diffcon::inference::{self, Derivation};
use diffcon::procedure::ProcedureKind;
use diffcon::{implication, DiffConstraint};
use diffcon_bounds::derive::{derive_propagated, derive_relaxed};
use diffcon_bounds::problem::{BoundsConfig, BoundsProblem, DeriveError, DeriveRoute};
use diffcon_bounds::{Interval, SideConditions};

/// Profiling tag for bound-ladder derivations (cache misses only; hits
/// return before any derivation work).
static STAGE_BOUND: diffcon_obs::profile::StageTag =
    diffcon_obs::profile::StageTag::new("planner.bound");
use diffcon_discover::{miner, Dataset, Discovery, MinerConfig};
use diffcon_obs::Trace;
use proplogic::implication::ImplicationConstraint;
use relational::fd::FunctionalDependency;
use setlat::{AttrSet, Universe};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How one query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Whether the premises imply the goal.
    pub implied: bool,
    /// The procedure that produced the answer; `None` when the goal was
    /// trivial and answered inline.
    pub procedure: Option<ProcedureKind>,
    /// Whether the answer came from the answer cache.
    pub cached: bool,
    /// Wall-clock time spent deciding (≈ 0 for trivial goals and cache hits).
    pub elapsed: Duration,
}

impl QueryOutcome {
    /// Short name of the answering path for reports and the wire protocol.
    /// The planner emits `trivial`, `fd`, `lattice`, or `sat` (`semantic` is
    /// reachable only by driving [`crate::batch`] jobs directly; the planner
    /// never selects it because it is dominated by the lattice procedure).
    pub fn route_name(&self) -> &'static str {
        match self.procedure {
            None => "trivial",
            Some(kind) => kind.name(),
        }
    }
}

/// How one bound query was answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundOutcome {
    /// The sound interval containing `f(query)`.
    pub interval: Interval,
    /// The derivation route that produced (or originally produced, for
    /// cached answers) the interval.
    pub route: DeriveRoute,
    /// Whether the answer came from the bound cache.
    pub cached: bool,
    /// Wall-clock derivation time (≈ 0 for cache hits).
    pub elapsed: Duration,
}

impl BoundOutcome {
    /// Short name of the answering path for reports and the wire protocol:
    /// `cached`, `propagation`, or `relaxed`.
    pub fn route_name(&self) -> &'static str {
        if self.cached {
            "cached"
        } else {
            self.route.name()
        }
    }
}

/// A fully-instrumented single-query decision: what [`Snapshot::implies`]
/// would answer, plus the snapshot identity and a wall-clock decomposition
/// of where the time went (the `explain` verb's payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainOutcome {
    /// The decision, exactly as [`Snapshot::implies`] reports it (and with
    /// the same accounting side effects: an explained query hits or feeds
    /// the caches and counts in the planner like any other query).
    pub outcome: QueryOutcome,
    /// The epoch of the snapshot that answered.
    pub epoch: u64,
    /// Time probing the answer cache (zero for trivial goals).
    pub probe: Duration,
    /// Time planning the miss: route choice plus derived-data cache
    /// attachment (zero for trivial goals and cache hits).
    pub plan: Duration,
    /// Time inside the decision procedure (zero for trivial goals and cache
    /// hits).
    pub decide: Duration,
    /// Total wall-clock time answering, including the stages above and the
    /// cache write-back.
    pub total: Duration,
}

/// The payload of the `analyze` verb: a premise-core static analysis of the
/// frozen state (see [`diffcon_analyze::premise`]), plus the snapshot
/// identity and the analysis wall-clock.
#[derive(Debug, Clone)]
pub struct AnalyzeOutcome {
    /// The analysis: redundant premises with witnesses, a minimal
    /// conflicting known set if the knowns are infeasible, and the dead
    /// density variables.
    pub analysis: diffcon_analyze::Analysis,
    /// The epoch of the snapshot that was analyzed.
    pub epoch: u64,
    /// Wall-clock time spent analyzing.
    pub elapsed: Duration,
}

/// The sharded concurrent caches shared by every snapshot of one session:
/// full query answers and derived bound intervals (digest-versioned), plus
/// goal lattice decompositions and propositional translations (goal-keyed,
/// state-independent).
/// Keys are fingerprint-addressed ([`VersionedKey`]), so every value
/// carries the payload it was computed for; reads verify it against the
/// query before trusting the entry (fingerprint collisions recompute, never
/// alias).
#[derive(Debug)]
pub(crate) struct EngineCaches {
    pub(crate) answer: ShardedCache<VersionedKey, (DiffConstraint, bool, ProcedureKind)>,
    pub(crate) lattice: ShardedCache<VersionedKey, (DiffConstraint, Arc<[AttrSet]>)>,
    pub(crate) prop: ShardedCache<VersionedKey, (DiffConstraint, Arc<ImplicationConstraint>)>,
    pub(crate) bound: ShardedCache<VersionedKey, (AttrSet, Interval, DeriveRoute)>,
}

impl EngineCaches {
    pub(crate) fn clear(&self) {
        self.answer.clear();
        self.lattice.clear();
        self.prop.clear();
        self.bound.clear();
    }
}

/// Aggregate statistics visible from a snapshot: the shared planner and
/// shard counters plus the snapshot's own frozen state sizes.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStats {
    /// Per-procedure planner accounting (shared across snapshots).
    pub planner: PlannerStats,
    /// Aggregated answer-cache shard counters.
    pub answer_cache: CacheStats,
    /// Aggregated lattice-cache shard counters.
    pub lattice_cache: CacheStats,
    /// Aggregated translation-cache shard counters.
    pub prop_cache: CacheStats,
    /// Aggregated bound-cache shard counters.
    pub bound_cache: CacheStats,
    /// Shards in the answer cache.  A cache whose capacity is below the
    /// configured shard count is clamped to one shard per entry (see
    /// [`crate::cache::ShardedCache::new`]), so smaller caches may hold
    /// fewer shards than reported here.
    pub cache_shards: usize,
    /// Premises frozen in this snapshot.
    pub premises: usize,
    /// Known point values frozen in this snapshot.
    pub knowns: usize,
    /// The publication epoch of this snapshot.
    pub epoch: u64,
}

/// An immutable, shareable view of one session's state, answering
/// implication and bound queries through `&self`.
///
/// Obtained from [`crate::session::Session::snapshot`]; cheap to clone via
/// `Arc`.  All query methods are safe to call from many threads at once.
#[derive(Debug)]
pub struct Snapshot {
    universe: Arc<Universe>,
    premises: Arc<[DiffConstraint]>,
    premise_props: Arc<[ImplicationConstraint]>,
    fd_index: Option<Arc<[FunctionalDependency]>>,
    premise_digest: u64,
    knowns: Arc<[(AttrSet, f64)]>,
    knowns_digest: u64,
    bound_side: SideConditions,
    bounds_config: BoundsConfig,
    dataset: Option<Arc<Dataset>>,
    epoch: u64,
    caches: Arc<EngineCaches>,
    planner: Arc<Planner>,
    costs: Arc<SessionCosts>,
}

/// Everything a session hands over when publishing a snapshot.
#[allow(clippy::too_many_arguments)]
pub(crate) struct SnapshotParts {
    pub(crate) universe: Arc<Universe>,
    pub(crate) premises: Arc<[DiffConstraint]>,
    pub(crate) premise_props: Arc<[ImplicationConstraint]>,
    pub(crate) fd_index: Option<Arc<[FunctionalDependency]>>,
    pub(crate) premise_digest: u64,
    pub(crate) knowns: Arc<[(AttrSet, f64)]>,
    pub(crate) knowns_digest: u64,
    pub(crate) bound_side: SideConditions,
    pub(crate) bounds_config: BoundsConfig,
    pub(crate) dataset: Option<Arc<Dataset>>,
    pub(crate) epoch: u64,
    pub(crate) caches: Arc<EngineCaches>,
    pub(crate) planner: Arc<Planner>,
    pub(crate) costs: Arc<SessionCosts>,
}

impl Snapshot {
    pub(crate) fn from_parts(parts: SnapshotParts) -> Self {
        Snapshot {
            universe: parts.universe,
            premises: parts.premises,
            premise_props: parts.premise_props,
            fd_index: parts.fd_index,
            premise_digest: parts.premise_digest,
            knowns: parts.knowns,
            knowns_digest: parts.knowns_digest,
            bound_side: parts.bound_side,
            bounds_config: parts.bounds_config,
            dataset: parts.dataset,
            epoch: parts.epoch,
            caches: parts.caches,
            planner: parts.planner,
            costs: parts.costs,
        }
    }

    /// The snapshot's universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The frozen premise set, in assertion order.
    pub fn premises(&self) -> &[DiffConstraint] {
        &self.premises
    }

    /// The order-independent digest of the frozen premise set.
    pub fn premise_digest(&self) -> u64 {
        self.premise_digest
    }

    /// The frozen known point values `f(X) = v`, sorted by set.
    pub fn knowns(&self) -> &[(AttrSet, f64)] {
        &self.knowns
    }

    /// The order-independent digest of the frozen known-value map.
    pub fn knowns_digest(&self) -> u64 {
        self.knowns_digest
    }

    /// The dataset handle frozen in this snapshot, if one was loaded.
    pub fn dataset(&self) -> Option<&Dataset> {
        self.dataset.as_deref()
    }

    /// The publication epoch: strictly increasing across one session's
    /// mutations, so readers can tell snapshots apart (and order them).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The owning session's cost-attribution series (shared across every
    /// snapshot the session publishes, so deferred queries evaluated
    /// against an older epoch still charge the same ledger).
    pub fn costs(&self) -> &Arc<SessionCosts> {
        &self.costs
    }

    /// Index-aligned propositional translations of the premises.
    pub(crate) fn premise_props(&self) -> &[ImplicationConstraint] {
        &self.premise_props
    }

    /// Index-aligned FD translations when every premise is single-member.
    pub(crate) fn premise_fds(&self) -> Option<&[FunctionalDependency]> {
        self.fd_index.as_deref()
    }

    // Shared handles to this snapshot's frozen components, so a session
    // republishing after a mutation can reuse every component the mutation
    // did not touch (an `Arc` clone instead of a deep copy).

    pub(crate) fn premises_shared(&self) -> Arc<[DiffConstraint]> {
        Arc::clone(&self.premises)
    }

    pub(crate) fn premise_props_shared(&self) -> Arc<[ImplicationConstraint]> {
        Arc::clone(&self.premise_props)
    }

    pub(crate) fn fd_index_shared(&self) -> Option<Arc<[FunctionalDependency]>> {
        self.fd_index.clone()
    }

    pub(crate) fn knowns_shared(&self) -> Arc<[(AttrSet, f64)]> {
        Arc::clone(&self.knowns)
    }

    pub(crate) fn dataset_shared(&self) -> Option<Arc<Dataset>> {
        self.dataset.clone()
    }

    /// The state salt versioning implication answers (premises only:
    /// implication is independent of the knowns).
    fn answer_salt(&self) -> u64 {
        version_salt(self.premise_digest, 0)
    }

    /// The state salt versioning bound intervals (premises and knowns).
    fn bound_salt(&self) -> u64 {
        version_salt(self.premise_digest, self.knowns_digest)
    }

    fn answer_key(&self, goal: &DiffConstraint) -> VersionedKey {
        VersionedKey::new(self.answer_salt(), goal.fingerprint())
    }

    /// Derived-data key: goal lattices and propositional translations depend
    /// only on the goal, so their salt is constant.
    fn derived_key(goal: &DiffConstraint) -> VersionedKey {
        VersionedKey::new(0, goal.fingerprint())
    }

    fn bound_key(&self, query: AttrSet) -> VersionedKey {
        VersionedKey::new(self.bound_salt(), query.fingerprint())
    }

    /// Answer-cache probe: fingerprint-addressed lookup, verified against
    /// the goal before the entry is trusted.
    fn probe_answer(
        &self,
        key: &VersionedKey,
        goal: &DiffConstraint,
    ) -> Option<(bool, ProcedureKind)> {
        self.caches.answer.get_if(key, |(stored, implied, kind)| {
            (stored == goal).then_some((*implied, *kind))
        })
    }

    /// Decides `premises ⊨ goal`, consulting and feeding the shared caches.
    pub fn implies(&self, goal: &DiffConstraint) -> QueryOutcome {
        if goal.is_trivial() {
            self.planner.record_trivial();
            return QueryOutcome {
                implied: true,
                procedure: None,
                cached: false,
                elapsed: Duration::ZERO,
            };
        }
        let key = self.answer_key(goal);
        if let Some((implied, kind)) = self.probe_answer(&key, goal) {
            self.planner.record_cache_hit(kind);
            return QueryOutcome {
                implied,
                procedure: Some(kind),
                cached: true,
                elapsed: Duration::ZERO,
            };
        }
        let job = self.plan_job(goal.clone());
        let result = batch::decide_one(self, &job);
        self.absorb_result(key, &job.goal, &result);
        QueryOutcome {
            implied: result.implied,
            procedure: Some(result.procedure),
            cached: false,
            elapsed: result.elapsed,
        }
    }

    /// Decides `premises ⊨ goal` like [`Snapshot::implies`], additionally
    /// reporting the snapshot epoch and a per-stage latency decomposition
    /// (cache probe → planning → decision).  This *is* the ordinary query
    /// path with trace marks — same caches, same planner accounting — so an
    /// explained query observes exactly what serving it would cost.
    pub fn explain(&self, goal: &DiffConstraint) -> ExplainOutcome {
        let mut trace = Trace::start();
        if goal.is_trivial() {
            self.planner.record_trivial();
            return ExplainOutcome {
                outcome: QueryOutcome {
                    implied: true,
                    procedure: None,
                    cached: false,
                    elapsed: Duration::ZERO,
                },
                epoch: self.epoch,
                probe: Duration::ZERO,
                plan: Duration::ZERO,
                decide: Duration::ZERO,
                total: trace.total(),
            };
        }
        let key = self.answer_key(goal);
        let probed = self.probe_answer(&key, goal);
        let probe = trace.stage("probe");
        if let Some((implied, kind)) = probed {
            self.planner.record_cache_hit(kind);
            return ExplainOutcome {
                outcome: QueryOutcome {
                    implied,
                    procedure: Some(kind),
                    cached: true,
                    elapsed: Duration::ZERO,
                },
                epoch: self.epoch,
                probe,
                plan: Duration::ZERO,
                decide: Duration::ZERO,
                total: trace.total(),
            };
        }
        let job = self.plan_job(goal.clone());
        let plan = trace.stage("plan");
        let result = batch::decide_one(self, &job);
        let decide = trace.stage("decide");
        self.absorb_result(key, &job.goal, &result);
        ExplainOutcome {
            outcome: QueryOutcome {
                implied: result.implied,
                procedure: Some(result.procedure),
                cached: false,
                elapsed: result.elapsed,
            },
            epoch: self.epoch,
            probe,
            plan,
            decide,
            total: trace.total(),
        }
    }

    /// Decides a whole batch of goals against the frozen premise set.
    ///
    /// In-batch duplicate goals are decided once (the repeats follow the
    /// first occurrence), cache misses fan out across the rayon pool, and
    /// the returned outcomes are index-aligned with `goals` and identical in
    /// answers to calling [`Snapshot::implies`] goal-by-goal.
    pub fn implies_batch(&self, goals: &[DiffConstraint]) -> Vec<QueryOutcome> {
        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; goals.len()];
        let mut jobs: Vec<Job> = Vec::new();
        let mut job_targets: Vec<usize> = Vec::new();
        let mut pending: HashMap<&DiffConstraint, usize> = HashMap::new();
        let mut followers: Vec<(usize, usize)> = Vec::new();
        // Prologue: trivia, answer-cache probes, in-batch dedup, planning.
        for (i, goal) in goals.iter().enumerate() {
            if goal.is_trivial() {
                self.planner.record_trivial();
                outcomes[i] = Some(QueryOutcome {
                    implied: true,
                    procedure: None,
                    cached: false,
                    elapsed: Duration::ZERO,
                });
                continue;
            }
            if let Some(&job_index) = pending.get(goal) {
                followers.push((i, job_index));
                continue;
            }
            let key = self.answer_key(goal);
            if let Some((implied, kind)) = self.probe_answer(&key, goal) {
                self.planner.record_cache_hit(kind);
                outcomes[i] = Some(QueryOutcome {
                    implied,
                    procedure: Some(kind),
                    cached: true,
                    elapsed: Duration::ZERO,
                });
                continue;
            }
            pending.insert(goal, jobs.len());
            jobs.push(self.plan_job(goal.clone()));
            job_targets.push(i);
        }
        // Parallel fan-out over the misses.
        let results: Vec<JobResult> = batch::decide_many(self, &jobs);
        // Epilogue: write-back and accounting.
        for (&i, result) in job_targets.iter().zip(&results) {
            let key = self.answer_key(&goals[i]);
            self.absorb_result(key, &goals[i], result);
            outcomes[i] = Some(QueryOutcome {
                implied: result.implied,
                procedure: Some(result.procedure),
                cached: false,
                elapsed: result.elapsed,
            });
        }
        for (i, job_index) in followers {
            let result = &results[job_index];
            self.planner.record_cache_hit(result.procedure);
            outcomes[i] = Some(QueryOutcome {
                implied: result.implied,
                procedure: Some(result.procedure),
                cached: true,
                elapsed: Duration::ZERO,
            });
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every goal receives an outcome"))
            .collect()
    }

    /// Plans one goal: chooses the procedure and attaches cached derived data.
    fn plan_job(&self, goal: DiffConstraint) -> Job {
        let kind = self.planner.choose(
            &self.universe,
            &self.premises,
            &goal,
            self.fd_index.is_some(),
        );
        let cached_lattice = if kind == ProcedureKind::Lattice {
            self.caches
                .lattice
                .get_if(&Snapshot::derived_key(&goal), |(stored, lattice)| {
                    (stored == &goal).then(|| Arc::clone(lattice))
                })
        } else {
            None
        };
        let cached_prop = if kind == ProcedureKind::Sat {
            self.caches
                .prop
                .get_if(&Snapshot::derived_key(&goal), |(stored, prop)| {
                    (stored == &goal).then(|| Arc::clone(prop))
                })
        } else {
            None
        };
        Job {
            goal,
            procedure: kind,
            cached_lattice,
            cached_prop,
        }
    }

    /// Writes a decision back into the shared caches and the planner's
    /// accounting.
    fn absorb_result(&self, key: VersionedKey, goal: &DiffConstraint, result: &JobResult) {
        if let Some(lattice) = &result.computed_lattice {
            self.caches.lattice.insert(
                Snapshot::derived_key(goal),
                (goal.clone(), Arc::clone(lattice)),
            );
        }
        if let Some(prop) = &result.computed_prop {
            self.caches.prop.insert(
                Snapshot::derived_key(goal),
                (goal.clone(), Arc::clone(prop)),
            );
        }
        self.caches
            .answer
            .insert(key, (goal.clone(), result.implied, result.procedure));
        self.planner
            .record_decided(result.procedure, result.elapsed);
    }

    /// Derives the tightest provable interval for `f(query)` under the
    /// frozen premises, knowns, and side conditions, consulting and feeding
    /// the shared bound cache.
    ///
    /// # Errors
    /// [`DeriveError::Infeasible`] when the knowns contradict the premises
    /// under the side conditions; infeasible outcomes are not cached.
    ///
    /// # Panics
    /// Panics if `query` lies outside the universe.
    pub fn bound(&self, query: AttrSet) -> Result<BoundOutcome, DeriveError> {
        assert!(
            query.is_subset(self.universe.full_set()),
            "query set lies outside the universe"
        );
        let key = self.bound_key(query);
        if let Some((interval, route)) = self
            .caches
            .bound
            .get_if(&key, |&(stored, interval, route)| {
                (stored == query).then_some((interval, route))
            })
        {
            self.planner.record_bound_cache_hit();
            return Ok(BoundOutcome {
                interval,
                route,
                cached: true,
                elapsed: Duration::ZERO,
            });
        }
        let route = self.planner.choose_bound(
            &self.universe,
            self.premises.len(),
            self.knowns.len(),
            query,
            &self.bounds_config,
        );
        let problem = BoundsProblem {
            universe: &self.universe,
            constraints: &self.premises,
            knowns: &self.knowns,
            side: self.bound_side,
        };
        let start = Instant::now();
        let _bound_stage = diffcon_obs::profile::stage(&STAGE_BOUND);
        let result = match route {
            DeriveRoute::Propagation => derive_propagated(&problem, query, &self.bounds_config),
            DeriveRoute::Relaxed => derive_relaxed(&problem, query),
        };
        let elapsed = start.elapsed();
        self.planner.record_bound_decided(route, elapsed);
        let derived = result?;
        self.caches
            .bound
            .insert(key, (query, derived.interval, derived.route));
        Ok(BoundOutcome {
            interval: derived.interval,
            route: derived.route,
            cached: false,
            elapsed,
        })
    }

    /// A refutation witness for a non-implied goal: a set in `L(goal)` not
    /// covered by any premise lattice.  `None` means the goal is implied.
    pub fn refutation_witness(&self, goal: &DiffConstraint) -> Option<AttrSet> {
        implication::refutation_witness(&self.universe, &self.premises, goal)
    }

    /// Produces a machine-checkable Figure 1 derivation of an implied goal
    /// (`None` when the goal is not implied).
    pub fn derive(&self, goal: &DiffConstraint) -> Option<Derivation> {
        inference::derive(&self.universe, &self.premises, goal)
    }

    /// Mines the minimal satisfied disjunctive constraints of the frozen
    /// dataset within the budgets.  `None` when the snapshot holds no
    /// dataset.
    pub fn mine_dataset(&self, config: &MinerConfig) -> Option<Discovery> {
        self.dataset.as_deref().map(|ds| miner::mine(ds, config))
    }

    /// Runs the premise-core static analysis against this frozen state:
    /// redundant premises (each with an implying witness subfamily),
    /// pre-query infeasibility of the knowns (with a minimal conflicting
    /// known set), and dead density variables.  Pure read — answered from
    /// the snapshot like `explain`, so it can run on any worker against any
    /// epoch — and metered under `diffcond_analyze_*`.
    pub fn analyze(&self) -> AnalyzeOutcome {
        let start = Instant::now();
        let problem = BoundsProblem {
            universe: &self.universe,
            constraints: &self.premises,
            knowns: &self.knowns,
            side: self.bound_side,
        };
        let analysis = diffcon_analyze::analyze(&problem, &self.bounds_config);
        let elapsed = start.elapsed();
        let metrics = crate::metrics::EngineMetrics::global();
        metrics.analyze_runs.inc();
        metrics
            .analyze_redundant
            .add(analysis.redundant.len() as u64);
        if analysis.conflict.is_some() {
            metrics.analyze_infeasible.inc();
        }
        metrics.analyze_ns.record_duration(elapsed);
        AnalyzeOutcome {
            analysis,
            epoch: self.epoch,
            elapsed,
        }
    }

    /// Point-in-time statistics: the shared planner and cache counters plus
    /// this snapshot's frozen state sizes.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            planner: self.planner.stats(),
            answer_cache: self.caches.answer.stats(),
            lattice_cache: self.caches.lattice.stats(),
            prop_cache: self.caches.prop.stats(),
            bound_cache: self.caches.bound.stats(),
            cache_shards: self.caches.answer.shard_count(),
            premises: self.premises.len(),
            knowns: self.knowns.len(),
            epoch: self.epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    fn parse(u: &Universe, texts: &[&str]) -> Vec<DiffConstraint> {
        texts
            .iter()
            .map(|t| DiffConstraint::parse(t, u).unwrap())
            .collect()
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
        assert_send_sync::<Arc<Snapshot>>();
    }

    #[test]
    fn snapshots_are_isolated_from_later_mutations() {
        let u = Universe::of_size(4);
        let premises = parse(&u, &["A -> {B}", "B -> {C}"]);
        let mut session = Session::new(u.clone());
        for p in &premises {
            session.assert_constraint(p);
        }
        let frozen = session.snapshot();
        let goal = DiffConstraint::parse("A -> {C}", &u).unwrap();
        assert!(frozen.implies(&goal).implied);
        // Retract the transitivity link: the *session* flips, the frozen
        // snapshot keeps answering from its own premise set.
        session.retract_constraint(&premises[1]);
        assert!(!session.implies(&goal).implied);
        assert!(frozen.implies(&goal).implied, "snapshot must stay frozen");
        assert_eq!(frozen.premises().len(), 2);
        assert_eq!(session.premises().len(), 1);
        assert!(session.snapshot().epoch() > frozen.epoch());
    }

    #[test]
    fn epochs_increase_across_every_mutation_kind() {
        let u = Universe::of_size(4);
        let mut s = Session::new(u.clone());
        let mut last = s.snapshot().epoch();
        let mut bumped = |session: &Session, what: &str| {
            let epoch = session.snapshot().epoch();
            assert!(epoch > last, "{what} must bump the epoch");
            last = epoch;
        };
        let c = DiffConstraint::parse("A -> {B}", &u).unwrap();
        s.assert_constraint(&c);
        bumped(&s, "assert");
        s.set_known(u.parse_set("A").unwrap(), 4.0);
        bumped(&s, "known");
        s.forget_known(u.parse_set("A").unwrap());
        bumped(&s, "forget");
        s.retract_constraint(&c);
        bumped(&s, "retract");
        s.load_records(["AB", "B"]).unwrap();
        bumped(&s, "load");
        s.adopt_discovered(&MinerConfig::default()).unwrap();
        bumped(&s, "adopt");
    }

    #[test]
    fn digest_restoration_shares_warm_entries_across_snapshots() {
        let u = Universe::of_size(4);
        let premise = DiffConstraint::parse("A -> {B}", &u).unwrap();
        let goal = DiffConstraint::parse("AC -> {B}", &u).unwrap();
        let mut session = Session::new(u);
        session.assert_constraint(&premise);
        let first = session.snapshot();
        assert!(!first.implies(&goal).cached);
        // A different state must not reuse the entry…
        session.retract_constraint(&premise);
        assert!(!session.snapshot().implies(&goal).cached);
        // …but restoring the digest revalidates it, on a *new* snapshot.
        session.assert_constraint(&premise);
        let third = session.snapshot();
        assert!(third.implies(&goal).cached);
        assert_ne!(first.epoch(), third.epoch());
    }

    #[test]
    fn concurrent_readers_agree_with_the_oracle() {
        let u = Universe::of_size(6);
        let premises = parse(&u, &["A -> {B}", "BC -> {D, EF}", "D -> {E}"]);
        let mut session = Session::new(u.clone());
        for p in &premises {
            session.assert_constraint(p);
        }
        let snapshot = session.snapshot();
        let mut gen = diffcon::random::ConstraintGenerator::new(17, &u);
        let shape = diffcon::random::ConstraintShape::default();
        let goals = gen.constraint_set(48, &shape);
        let expected: Vec<bool> = goals
            .iter()
            .map(|g| implication::implies(&u, &premises, g))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let snapshot = Arc::clone(&snapshot);
                let goals = &goals;
                let expected = &expected;
                scope.spawn(move || {
                    for (goal, &want) in goals.iter().zip(expected) {
                        assert_eq!(snapshot.implies(goal).implied, want);
                    }
                });
            }
        });
        let stats = snapshot.stats();
        assert_eq!(stats.premises, 3);
        assert!(stats.planner.total_queries() >= 192);
    }

    #[test]
    fn snapshot_stats_expose_shards_and_state_sizes() {
        let u = Universe::of_size(4);
        let mut session = Session::new(u.clone());
        session.assert_constraint(&DiffConstraint::parse("A -> {B}", &u).unwrap());
        session.set_known(u.parse_set("A").unwrap(), 1.0);
        let snapshot = session.snapshot();
        let stats = snapshot.stats();
        assert!(stats.cache_shards >= 1);
        assert_eq!(stats.premises, 1);
        assert_eq!(stats.knowns, 1);
        assert_eq!(stats.epoch, snapshot.epoch());
    }
}
